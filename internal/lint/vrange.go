package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file is the value-range layer over the SSA form (ssa.go): a
// structural value numbering that makes `n := len(s); i < n` and
// `i < len(s)` the same fact, symbolic intervals whose bounds are
// "value-number plus offset", two-phase widening on loop back edges,
// and dominating-branch refinement. Its one real client question is the
// bounds-provable check's: "is this index expression provably inside
// the indexed slice's length on every path that reaches it?" — the
// same question the compiler's bounds-check-elimination pass answers,
// asked at review time so the answer can gate.
//
// The numbering is deliberately optimistic about memory: a field chain
// `g.classes` keeps one number for the whole function even though a
// store could change it. Kernels do not rebind their receivers
// mid-loop, and the optimism is what lets `make([]T, g.classes)` prove
// `bases[c]` for `c < g.classes`. This is a review tool, not a
// verifier; the compiler's isInBounds diagnostics cross-check it in
// internal/perfgate.

// Bound is one end of an interval: either infinite, or the runtime
// value numbered VN plus Off (VN < 0 means the pure constant Off).
type Bound struct {
	Inf bool
	VN  int
	Off int64
}

// IsConst reports a pure-constant bound and its value.
func (b Bound) IsConst() (int64, bool) {
	if b.Inf || b.VN >= 0 {
		return 0, false
	}
	return b.Off, true
}

func constBound(c int64) Bound  { return Bound{VN: -1, Off: c} }
func symBound(vn int) Bound     { return Bound{VN: vn} }
func (b Bound) add(c int64) Bound {
	if b.Inf {
		return b
	}
	b.Off += c
	return b
}

// sameVN reports whether two bounds track the same runtime value.
func (b Bound) sameVN(o Bound) bool {
	return !b.Inf && !o.Inf && b.VN == o.VN
}

func (b Bound) String() string {
	switch {
	case b.Inf:
		return "inf"
	case b.VN < 0:
		return fmt.Sprintf("%d", b.Off)
	case b.Off == 0:
		return fmt.Sprintf("v%d", b.VN)
	default:
		return fmt.Sprintf("v%d%+d", b.VN, b.Off)
	}
}

// Interval is a symbolic range [Lo, Hi]; Inf bounds are unbounded.
type Interval struct {
	Lo, Hi Bound
}

func (iv Interval) String() string { return "[" + iv.Lo.String() + "," + iv.Hi.String() + "]" }

var topInterval = Interval{Lo: Bound{Inf: true}, Hi: Bound{Inf: true}}

func constInterval(c int64) Interval { return Interval{Lo: constBound(c), Hi: constBound(c)} }

// exactly is the interval of a value known only by its number: the
// (single) runtime value vn, exactly.
func exactly(vn int) Interval { return Interval{Lo: symBound(vn), Hi: symBound(vn)} }

func (iv Interval) shift(c int64) Interval {
	return Interval{Lo: iv.Lo.add(c), Hi: iv.Hi.add(c)}
}

// join is the lattice union: bounds that disagree and cannot be
// ordered widen to infinity.
func joinIntervals(a, b Interval) Interval {
	return Interval{Lo: lowerOf(a.Lo, b.Lo), Hi: upperOf(a.Hi, b.Hi)}
}

func lowerOf(a, b Bound) Bound {
	if a.Inf || b.Inf {
		return Bound{Inf: true}
	}
	if a.VN == b.VN {
		if b.Off < a.Off {
			return b
		}
		return a
	}
	ca, aok := a.IsConst()
	cb, bok := b.IsConst()
	if aok && bok {
		if cb < ca {
			return b
		}
		return a
	}
	return Bound{Inf: true}
}

func upperOf(a, b Bound) Bound {
	if a.Inf || b.Inf {
		return Bound{Inf: true}
	}
	if a.VN == b.VN {
		if b.Off > a.Off {
			return b
		}
		return a
	}
	ca, aok := a.IsConst()
	cb, bok := b.IsConst()
	if aok && bok {
		if cb > ca {
			return b
		}
		return a
	}
	return Bound{Inf: true}
}

// ---------------------------------------------------------------------
// Value numbering.

type binDef struct {
	op   token.Token
	l, r int
}

type vnum struct {
	ssa  *SSA
	pass *Pass

	next   int
	keys   map[string]int
	valVN  map[*Value]int
	exprVN map[ast.Expr]int

	constVal map[int]int64 // VN -> constant value
	bins     map[int]binDef

	// lenOfVN maps a slice value's VN to the VN of its length, learned
	// from make calls, composite literals, and reslicings. constLenVN
	// holds the same fact when the length is a compile-time constant.
	lenOfVN map[int]int
}

func newVNum(s *SSA, p *Pass) *vnum {
	return &vnum{
		ssa:      s,
		pass:     p,
		keys:     make(map[string]int),
		valVN:    make(map[*Value]int),
		exprVN:   make(map[ast.Expr]int),
		constVal: make(map[int]int64),
		bins:     make(map[int]binDef),
		lenOfVN:  make(map[int]int),
	}
}

func (n *vnum) intern(key string) int {
	if vn, ok := n.keys[key]; ok {
		return vn
	}
	vn := n.next
	n.next++
	n.keys[key] = vn
	return vn
}

func (n *vnum) constVN(c int64) int {
	vn := n.intern(fmt.Sprintf("c:%d", c))
	n.constVal[vn] = c
	return vn
}

func (n *vnum) isConst(vn int) (int64, bool) {
	c, ok := n.constVal[vn]
	return c, ok
}

// freshFor gives a value its own number, keyed by the stable value ID.
func (n *vnum) freshFor(v *Value) int {
	if v.Kind == ValUnknown && v.Var != nil {
		// Every use of an untracked variable shares one number: the
		// optimistic assumption that it is not mutated between the uses
		// this analysis relates (documented heuristic).
		return n.intern(fmt.Sprintf("unk:%d", v.Var.Pos()))
	}
	return n.intern(fmt.Sprintf("v:%d", v.ID))
}

func (n *vnum) binVN(op token.Token, l, r int) int {
	lc, lok := n.isConst(l)
	rc, rok := n.isConst(r)
	if lok && rok {
		switch op {
		case token.ADD:
			return n.constVN(lc + rc)
		case token.SUB:
			return n.constVN(lc - rc)
		case token.MUL:
			return n.constVN(lc * rc)
		case token.QUO:
			if rc != 0 {
				return n.constVN(lc / rc)
			}
		case token.REM:
			if rc != 0 {
				return n.constVN(lc % rc)
			}
		}
	}
	// Normalizations: x±0 is x; commutative operands in canonical order.
	if (op == token.ADD || op == token.SUB) && rok && rc == 0 {
		return l
	}
	if op == token.ADD && lok && lc == 0 {
		return r
	}
	if op == token.SUB && l == r {
		return n.constVN(0)
	}
	if op == token.SUB {
		// sub(add(x, w), x) = w and sub(add(x, w), w) = x — the
		// simplification that makes len(probs[i*k : i*k+k]) equal k.
		if bd, ok := n.bins[l]; ok && bd.op == token.ADD {
			if bd.l == r {
				return bd.r
			}
			if bd.r == r {
				return bd.l
			}
		}
	}
	if (op == token.ADD || op == token.MUL) && r < l {
		l, r = r, l
	}
	vn := n.intern(fmt.Sprintf("b:%s:%d:%d", op, l, r))
	if _, seen := n.bins[vn]; !seen {
		n.bins[vn] = binDef{op: op, l: l, r: r}
	}
	return vn
}

// bound wraps a value number as a Bound, collapsing numbers that are
// known constants into pure-constant bounds.
func (n *vnum) bound(vn int) Bound {
	if c, ok := n.isConst(vn); ok {
		return constBound(c)
	}
	return symBound(vn)
}

// lenOf returns the number of len(x) given x's number, routing through
// any learned length fact so `len(out)` after `out = out[:n]` equals
// `vn(n)`.
func (n *vnum) lenOf(sliceVN int) int {
	if l, ok := n.lenOfVN[sliceVN]; ok {
		return l
	}
	return n.intern(fmt.Sprintf("len:%d", sliceVN))
}

// linearize decomposes vn through +/- constant binops into (base,
// offset), so len(weights)+1 and len(weights) compare as the same
// symbol one apart.
func (n *vnum) linearize(vn int) (int, int64) {
	var off int64
	for i := 0; i < 8; i++ {
		bd, ok := n.bins[vn]
		if !ok {
			break
		}
		if c, cok := n.isConst(bd.r); cok && (bd.op == token.ADD || bd.op == token.SUB) {
			if bd.op == token.ADD {
				vn, off = bd.l, off+c
			} else {
				vn, off = bd.l, off-c
			}
			continue
		}
		if c, cok := n.isConst(bd.l); cok && bd.op == token.ADD {
			vn, off = bd.r, off+c
			continue
		}
		break
	}
	return vn, off
}

func (n *vnum) vnValue(v *Value) int {
	if v == nil {
		return n.intern("nilvalue")
	}
	if vn, ok := n.valVN[v]; ok {
		return vn
	}
	// Break def-chain cycles (a phi reached through its own expression)
	// with the fresh number first; phis and opaque kinds keep it.
	vn := n.freshFor(v)
	n.valVN[v] = vn
	switch v.Kind {
	case ValDef:
		vn = n.vnExpr(v.Expr)
		n.valVN[v] = vn
		n.recordLenFacts(vn, v.Expr)
	case ValOpAssign:
		op := assignOp(v.Op)
		if op != token.ILLEGAL {
			vn = n.binVN(op, n.vnValue(v.Prev), n.vnExpr(v.Expr))
			n.valVN[v] = vn
		}
	case ValIncDec:
		op := token.ADD
		if v.Op == token.DEC {
			op = token.SUB
		}
		vn = n.binVN(op, n.vnValue(v.Prev), n.constVN(1))
		n.valVN[v] = vn
	case ValZero:
		if v.Var != nil && isIntegerType(v.Var.Type()) {
			vn = n.constVN(0)
			n.valVN[v] = vn
		}
	}
	return vn
}

// assignOp maps an op-assign token to its binary operator.
func assignOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	}
	return token.ILLEGAL
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func (n *vnum) siteVN(e ast.Expr) int {
	return n.intern(fmt.Sprintf("site:%d", e.Pos()))
}

func (n *vnum) vnExpr(e ast.Expr) int {
	if e == nil {
		return n.intern("nilexpr")
	}
	e = ast.Unparen(e)
	if vn, ok := n.exprVN[e]; ok {
		return vn
	}
	vn := n.computeExprVN(e)
	n.exprVN[e] = vn
	return vn
}

func (n *vnum) computeExprVN(e ast.Expr) int {
	// Compile-time integer constants first: they subsume identifiers
	// bound to constants and folded expressions.
	if cv := n.pass.ConstValue(e); cv != nil && cv.Kind() == constant.Int {
		if c, exact := constant.Int64Val(cv); exact {
			return n.constVN(c)
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if use := n.ssa.UseOf(e); use != nil {
			return n.vnValue(use)
		}
		// Package-level variable or other object: one number per object.
		if obj := objectOf(n.pass, e); obj != nil {
			return n.intern(fmt.Sprintf("obj:%d", obj.Pos()))
		}
		return n.siteVN(e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR:
			return n.binVN(e.Op, n.vnExpr(e.X), n.vnExpr(e.Y))
		}
		return n.siteVN(e)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD:
			return n.vnExpr(e.X)
		case token.SUB:
			return n.binVN(token.SUB, n.constVN(0), n.vnExpr(e.X))
		}
		return n.siteVN(e)
	case *ast.CallExpr:
		if isBuiltinCall(n.pass, e, "len") && len(e.Args) == 1 {
			arg := e.Args[0]
			if at := arrayTypeOf(n.pass, arg); at != nil {
				return n.constVN(at.Len())
			}
			return n.lenOf(n.vnExpr(arg))
		}
		// Integer conversions pass the value through (mod overflow —
		// acceptable for index reasoning, where widths only shrink facts).
		if n.pass.Info != nil {
			if tv, ok := n.pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				if isIntegerType(tv.Type) && isIntegerType(n.pass.TypeOf(e.Args[0])) {
					return n.vnExpr(e.Args[0])
				}
			}
		}
		return n.siteVN(e)
	case *ast.SelectorExpr:
		// pkg.Var resolves to the object; x.f is numbered structurally on
		// the base's number (optimistic under stores, see file comment).
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := objectOf(n.pass, id).(*types.PkgName); isPkg {
				if obj := objectOf(n.pass, e.Sel); obj != nil {
					return n.intern(fmt.Sprintf("obj:%d", obj.Pos()))
				}
				return n.siteVN(e)
			}
		}
		return n.intern(fmt.Sprintf("sel:%d:%s", n.vnExpr(e.X), e.Sel.Name))
	}
	// Loads and aggregates (index, star, slice, assert, literals) get a
	// per-site number: memory is not structurally numbered.
	return n.siteVN(e)
}

// recordLenFacts learns the length of a slice-producing definition.
func (n *vnum) recordLenFacts(sliceVN int, e ast.Expr) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if isBuiltinCall(n.pass, e, "make") && len(e.Args) >= 2 {
			n.lenOfVN[sliceVN] = n.vnExpr(e.Args[1])
		}
	case *ast.CompositeLit:
		if t := n.pass.TypeOf(e); t != nil {
			if _, isSlice := t.Underlying().(*types.Slice); isSlice && !hasKeyedElems(e) {
				n.lenOfVN[sliceVN] = n.constVN(int64(len(e.Elts)))
			}
		}
	case *ast.SliceExpr:
		if e.Slice3 && e.Max == nil {
			return
		}
		t := n.pass.TypeOf(e)
		if t == nil {
			return
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return
		}
		var high int
		if e.High != nil {
			high = n.vnExpr(e.High)
		} else if at := arrayTypeOf(n.pass, e.X); at != nil {
			high = n.constVN(at.Len())
		} else {
			high = n.lenOf(n.vnExpr(e.X))
		}
		low := n.constVN(0)
		if e.Low != nil {
			low = n.vnExpr(e.Low)
		}
		n.lenOfVN[sliceVN] = n.binVN(token.SUB, high, low)
	}
}

func hasKeyedElems(lit *ast.CompositeLit) bool {
	for _, el := range lit.Elts {
		if _, ok := el.(*ast.KeyValueExpr); ok {
			return true
		}
	}
	return false
}

func objectOf(p *Pass, id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if p.Info != nil {
		if obj, found := p.Info.Uses[id]; found {
			return obj == types.Universe.Lookup(name)
		}
	}
	return true
}

// arrayTypeOf returns e's underlying array type, looking through one
// pointer (indexing auto-dereferences *[N]T).
func arrayTypeOf(p *Pass, e ast.Expr) *types.Array {
	t := p.TypeOf(e)
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	at, _ := u.(*types.Array)
	return at
}

// ---------------------------------------------------------------------
// Interval evaluation with widening.

// maxEvalDepth bounds recursive evaluation through def chains and
// nested phis; exceeding it degrades to top, never to a wrong fact.
const maxEvalDepth = 64

// lenHint is one dominating proof obligation already discharged at
// runtime: an executed s[i] proves i < len(s); an executed s[:h]
// proves h <= len(s).
type lenHint struct {
	baseVN int
	exprVN int
	// sliced distinguishes s[:h] (exprVN may equal len) from s[i]
	// (exprVN is strictly below len).
	sliced bool
}

// Ranges is the value-range analysis over one function's SSA form.
type Ranges struct {
	ssa *SSA
	nm  *vnum

	memo      map[int]Interval
	tentative map[int]Interval
	phiDepth  int
	depth     int

	hints map[*Block][]lenHint
}

// NewRanges builds the range analysis for s. Length facts are learned
// eagerly from every definition so queries in any order see them.
func NewRanges(s *SSA, p *Pass) *Ranges {
	r := &Ranges{
		ssa:       s,
		nm:        newVNum(s, p),
		memo:      make(map[int]Interval),
		tentative: make(map[int]Interval),
		hints:     make(map[*Block][]lenHint),
	}
	for _, v := range s.Values {
		r.nm.vnValue(v)
	}
	r.collectHints()
	return r
}

// EvalExpr returns the unrefined interval of e (exported for tests via
// the package; analyzers use IndexBounds).
func (r *Ranges) EvalExpr(e ast.Expr) Interval {
	r.depth = 0
	return r.evalExpr(e)
}

func (r *Ranges) lookup(vn int) (Interval, bool) {
	if iv, ok := r.tentative[vn]; ok {
		return iv, true
	}
	iv, ok := r.memo[vn]
	return iv, ok
}

// store memoizes durably only outside phi resolution; everything
// computed while a phi is tentative may be contaminated by the
// un-widened guess and is kept in the discardable tentative map.
func (r *Ranges) store(vn int, iv Interval) Interval {
	if r.phiDepth > 0 {
		r.tentative[vn] = iv
	} else {
		r.memo[vn] = iv
	}
	return iv
}

func (r *Ranges) evalValue(v *Value) Interval {
	if v == nil {
		return topInterval
	}
	vn := r.nm.vnValue(v)
	if c, ok := r.nm.isConst(vn); ok {
		return constInterval(c)
	}
	if iv, ok := r.lookup(vn); ok {
		return iv
	}
	if r.depth >= maxEvalDepth {
		return topInterval
	}
	r.depth++
	defer func() { r.depth-- }()

	var iv Interval
	switch v.Kind {
	case ValDef:
		iv = r.evalExpr(v.Expr)
	case ValOpAssign:
		iv = r.arith(assignOp(v.Op), r.evalValue(v.Prev), r.evalExpr(v.Expr), vn)
	case ValIncDec:
		op := token.ADD
		if v.Op == token.DEC {
			op = token.SUB
		}
		iv = r.arith(op, r.evalValue(v.Prev), constInterval(1), vn)
	case ValRangeKey:
		iv = r.rangeKeyInterval(v, vn)
	case ValPhi:
		return r.evalPhi(v, vn)
	case ValZero:
		if v.Var != nil && isIntegerType(v.Var.Type()) {
			iv = constInterval(0)
		} else {
			iv = exactly(vn)
		}
	default:
		// Params, range values, opaque and unknown definitions: known
		// only as themselves.
		iv = exactly(vn)
	}
	return r.store(vn, iv)
}

// rangeKeyInterval bounds a range key: [0, len(X)-1] over slices,
// arrays and strings, [0, X-1] for range-over-int.
func (r *Ranges) rangeKeyInterval(v *Value, vn int) Interval {
	t := r.ssa.pass.TypeOf(v.Expr)
	if t == nil {
		return exactly(vn)
	}
	switch u := t.Underlying().(type) {
	case *types.Array:
		return Interval{Lo: constBound(0), Hi: constBound(u.Len() - 1)}
	case *types.Pointer:
		if at, ok := u.Elem().Underlying().(*types.Array); ok {
			return Interval{Lo: constBound(0), Hi: constBound(at.Len() - 1)}
		}
	case *types.Slice:
		return Interval{Lo: constBound(0), Hi: r.nm.bound(r.nm.lenOf(r.nm.vnExpr(v.Expr))).add(-1)}
	case *types.Basic:
		if u.Info()&types.IsString != 0 {
			return Interval{Lo: constBound(0), Hi: r.nm.bound(r.nm.lenOf(r.nm.vnExpr(v.Expr))).add(-1)}
		}
		if u.Info()&types.IsInteger != 0 { // range over int (go1.22)
			return Interval{Lo: constBound(0), Hi: r.nm.bound(r.nm.vnExpr(v.Expr)).add(-1)}
		}
	}
	return exactly(vn)
}

// evalPhi joins a phi's operands with widening over back edges: phase
// one joins the forward operands into a tentative result, phase two
// evaluates the back-edge operands against it and widens any bound
// they exceed to infinity.
func (r *Ranges) evalPhi(v *Value, vn int) Interval {
	hasBack := false
	for _, back := range v.ArgBack {
		if back {
			hasBack = true
		}
	}
	forward := Interval{}
	first := true
	joinArg := func(iv Interval) {
		if first {
			forward, first = iv, false
		} else {
			forward = joinIntervals(forward, iv)
		}
	}
	if !hasBack {
		for _, a := range v.Args {
			if a == nil {
				return r.store(vn, topInterval)
			}
			joinArg(r.evalValue(a))
		}
		if first {
			forward = topInterval
		}
		return r.store(vn, forward)
	}

	r.phiDepth++
	for i, a := range v.Args {
		if v.ArgBack[i] {
			continue
		}
		if a == nil {
			joinArg(topInterval)
			continue
		}
		joinArg(r.evalValue(a))
	}
	if first {
		forward = topInterval
	}
	r.tentative[vn] = forward

	result := forward
	for i, a := range v.Args {
		if !v.ArgBack[i] {
			continue
		}
		var backIv Interval
		if a == nil {
			backIv = topInterval
		} else {
			backIv = r.evalValue(a)
		}
		// Widen: a back-edge bound that moves past the tentative bound
		// goes straight to infinity (no fixpoint iteration needed).
		if upperOf(result.Hi, backIv.Hi) != result.Hi {
			result.Hi = Bound{Inf: true}
		}
		if lowerOf(result.Lo, backIv.Lo) != result.Lo {
			result.Lo = Bound{Inf: true}
		}
	}
	r.tentative[vn] = result
	r.phiDepth--
	if r.phiDepth == 0 {
		// Contaminated intermediates are discarded; the finalized phi
		// interval itself is durable.
		r.tentative = make(map[int]Interval)
		r.memo[vn] = result
	}
	return result
}

func (r *Ranges) evalExpr(e ast.Expr) Interval {
	if e == nil {
		return topInterval
	}
	e = ast.Unparen(e)
	vn := r.nm.vnExpr(e)
	if c, ok := r.nm.isConst(vn); ok {
		return constInterval(c)
	}
	if iv, ok := r.lookup(vn); ok {
		return iv
	}
	if r.depth >= maxEvalDepth {
		return topInterval
	}
	r.depth++
	defer func() { r.depth-- }()

	var iv Interval
	switch e := e.(type) {
	case *ast.Ident:
		if use := r.ssa.UseOf(e); use != nil {
			return r.evalValue(use)
		}
		iv = exactly(vn)
	case *ast.BinaryExpr:
		iv = r.arith(e.Op, r.evalExpr(e.X), r.evalExpr(e.Y), vn)
	case *ast.UnaryExpr:
		if e.Op == token.ADD {
			iv = r.evalExpr(e.X)
		} else {
			iv = exactly(vn)
		}
	case *ast.CallExpr:
		// len(x) and integer conversions already share the operand's
		// number; exactly(vn) is the right answer for both, and lenOf
		// facts make it a constant when the length is known.
		iv = exactly(vn)
	default:
		iv = exactly(vn)
	}
	return r.store(vn, iv)
}

// arith evaluates a binary operator over intervals, symbolically where
// one side is constant and structurally (exactly the operation's own
// number) otherwise.
func (r *Ranges) arith(op token.Token, l, ri Interval, vn int) Interval {
	switch op {
	case token.ADD:
		if c, ok := constOf(ri); ok {
			return l.shift(c)
		}
		if c, ok := constOf(l); ok {
			return ri.shift(c)
		}
	case token.SUB:
		if c, ok := constOf(ri); ok {
			return l.shift(-c)
		}
	case token.REM:
		// x % m for x >= 0 lands in [0, m-1] (m == 0 panics before the
		// index would).
		if lc, ok := l.Lo.IsConst(); ok && lc >= 0 && !ri.Hi.Inf {
			return Interval{Lo: constBound(0), Hi: ri.Hi.add(-1)}
		}
	case token.AND:
		// x & mask for a constant mask >= 0 lands in [0, mask].
		if mc, ok := constOf(ri); ok && mc >= 0 {
			return Interval{Lo: constBound(0), Hi: constBound(mc)}
		}
		if mc, ok := constOf(l); ok && mc >= 0 {
			return Interval{Lo: constBound(0), Hi: constBound(mc)}
		}
	case token.SHR:
		if lc, ok := l.Lo.IsConst(); ok && lc >= 0 {
			return Interval{Lo: constBound(0), Hi: l.Hi}
		}
	}
	if op == token.REM || op == token.QUO || op == token.MUL {
		if lc, lok := constOf(l); lok {
			if rc, rok := constOf(ri); rok {
				switch op {
				case token.MUL:
					return constInterval(lc * rc)
				case token.QUO:
					if rc != 0 {
						return constInterval(lc / rc)
					}
				case token.REM:
					if rc != 0 {
						return constInterval(lc % rc)
					}
				}
			}
		}
	}
	return exactly(vn)
}

func constOf(iv Interval) (int64, bool) {
	lc, lok := iv.Lo.IsConst()
	hc, hok := iv.Hi.IsConst()
	if lok && hok && lc == hc {
		return lc, true
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Dominating-branch refinement and provability.

// refineFacts collects the lower- and upper-bound facts dominating
// conditions establish for the value numbered vn at block b: `vn < y`
// on a true edge contributes the upper bound y-1, and so on. nonNeg
// declares vn known non-negative by construction (lengths), which lets
// a `vn != 0` fact tighten to `vn >= 1` — the emptiness-guard idiom.
func (r *Ranges) refineFacts(vn int, b *Block, nonNeg bool) (los, his []Bound) {
	if b == nil {
		return nil, nil
	}
	seen := 0
	for d := b; d != nil && seen < 64; d = r.ssa.Idom(d) {
		seen++
		if d == b || d.Cond == nil {
			continue
		}
		if d.TrueSucc != nil && r.ssa.Dominates(d.TrueSucc, b) && d.TrueSucc != d.FalseSucc {
			l, h := r.condFacts(d.Cond, vn, false, nonNeg)
			los, his = append(los, l...), append(his, h...)
		} else if d.FalseSucc != nil && r.ssa.Dominates(d.FalseSucc, b) && d.TrueSucc != d.FalseSucc {
			l, h := r.condFacts(d.Cond, vn, true, nonNeg)
			los, his = append(los, l...), append(his, h...)
		}
	}
	return los, his
}

// condFacts extracts bounds for vn from one branch condition, negated
// when the false edge is the one taken.
func (r *Ranges) condFacts(cond ast.Expr, vn int, negated, nonNeg bool) (los, his []Bound) {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return r.condFacts(c.X, vn, !negated, nonNeg)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if !negated { // both conjuncts hold on the true edge
				l1, h1 := r.condFacts(c.X, vn, false, nonNeg)
				l2, h2 := r.condFacts(c.Y, vn, false, nonNeg)
				return append(l1, l2...), append(h1, h2...)
			}
		case token.LOR:
			if negated { // both disjuncts fail on the false edge
				l1, h1 := r.condFacts(c.X, vn, true, nonNeg)
				l2, h2 := r.condFacts(c.Y, vn, true, nonNeg)
				return append(l1, l2...), append(h1, h2...)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if negated {
				op = negateCmp(op)
			}
			if r.nm.vnExpr(c.X) == vn {
				return r.cmpFacts(op, c.Y, nonNeg)
			}
			if r.nm.vnExpr(c.Y) == vn {
				return r.cmpFacts(flipCmp(op), c.X, nonNeg)
			}
		}
	}
	return nil, nil
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return token.ILLEGAL
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// cmpFacts turns `vn <op> other` into bounds on vn: both the symbolic
// bound (other's own number) and, when other evaluates to something
// tighter, its interval's end.
func (r *Ranges) cmpFacts(op token.Token, other ast.Expr, nonNeg bool) (los, his []Bound) {
	sym := r.nm.bound(r.nm.vnExpr(other))
	iv := r.evalExpr(other)
	switch op {
	case token.LSS:
		his = append(his, sym.add(-1))
		if !iv.Hi.Inf {
			his = append(his, iv.Hi.add(-1))
		}
	case token.LEQ:
		his = append(his, sym)
		if !iv.Hi.Inf {
			his = append(his, iv.Hi)
		}
	case token.GTR:
		los = append(los, sym.add(1))
		if !iv.Lo.Inf {
			los = append(los, iv.Lo.add(1))
		}
	case token.GEQ:
		los = append(los, sym)
		if !iv.Lo.Inf {
			los = append(los, iv.Lo)
		}
	case token.EQL:
		los = append(los, sym)
		his = append(his, sym)
		if !iv.Lo.Inf {
			los = append(los, iv.Lo)
		}
		if !iv.Hi.Inf {
			his = append(his, iv.Hi)
		}
	case token.NEQ:
		// `vn != 0` on a non-negative quantity is `vn >= 1`: the
		// `if len(s) == 0 { return }` emptiness guard.
		if c, ok := sym.IsConst(); ok && c == 0 && nonNeg {
			los = append(los, constBound(1))
		}
	}
	return los, his
}

// IndexBounds returns every lower and upper bound the analysis can
// establish for the index expression idx evaluated in block b: the
// dataflow interval plus dominating-branch refinements, pushed through
// +/- constant so `i+1` inherits the facts on `i`.
func (r *Ranges) IndexBounds(idx ast.Expr, b *Block) (los, his []Bound) {
	r.depth = 0
	return r.boundsOf(idx, b, 0, 0)
}

func (r *Ranges) boundsOf(e ast.Expr, b *Block, off int64, depth int) (los, his []Bound) {
	if depth > 8 {
		return nil, nil
	}
	e = ast.Unparen(e)
	if be, ok := e.(*ast.BinaryExpr); ok {
		if c := r.intConst(be.Y); c != nil {
			switch be.Op {
			case token.ADD:
				return r.boundsOf(be.X, b, off+*c, depth+1)
			case token.SUB:
				return r.boundsOf(be.X, b, off-*c, depth+1)
			}
		}
		if c := r.intConst(be.X); c != nil && be.Op == token.ADD {
			return r.boundsOf(be.Y, b, off+*c, depth+1)
		}
		if be.Op == token.REM {
			// x % m is in [0, m-1] whenever x is provably non-negative —
			// including via a dominating branch, which plain interval
			// evaluation of the whole expression cannot see.
			xlos, _ := r.boundsOf(be.X, b, 0, depth+1)
			for _, lo := range xlos {
				if c, ok := lo.IsConst(); ok && c >= 0 {
					los = append(los, constBound(0).add(off))
					his = append(his, r.nm.bound(r.nm.vnExpr(be.Y)).add(off-1))
					break
				}
			}
			// Fall through for whatever the generic path adds.
		}
	}
	vn := r.nm.vnExpr(e)
	iv := r.evalExpr(e)
	if !iv.Lo.Inf {
		los = append(los, iv.Lo.add(off))
	}
	if !iv.Hi.Inf {
		his = append(his, iv.Hi.add(off))
	}
	l, h := r.refineFacts(vn, b, false)
	for _, bd := range l {
		los = append(los, bd.add(off))
	}
	for _, bd := range h {
		his = append(his, bd.add(off))
	}
	return los, his
}

func (r *Ranges) intConst(e ast.Expr) *int64 {
	if cv := r.ssa.pass.ConstValue(e); cv != nil && cv.Kind() == constant.Int {
		if c, exact := constant.Int64Val(cv); exact {
			return &c
		}
	}
	return nil
}

// collectHints harvests, per block, the runtime proofs its executed
// expressions establish: an index s[i] proves i < len(s), a slicing
// s[a:h] proves h <= len(s). Short-circuit right operands may not
// execute and are skipped.
func (r *Ranges) collectHints() {
	for _, b := range r.ssa.rpo {
		for _, n := range b.Nodes {
			r.hintsIn(b, n)
		}
	}
}

func (r *Ranges) hintsIn(b *Block, n ast.Node) {
	var visit func(m ast.Node)
	visit = func(m ast.Node) {
		ast.Inspect(m, func(k ast.Node) bool {
			switch k := k.(type) {
			case *ast.FuncLit:
				if k != r.ssa.lit {
					return false
				}
			case *ast.RangeStmt:
				// Only the header belongs to this block.
				visit(k.X)
				return false
			case *ast.BinaryExpr:
				if k.Op == token.LAND || k.Op == token.LOR {
					visit(k.X)
					return false // Y may not execute
				}
			case *ast.IndexExpr:
				if sliceOrArray(r.ssa.pass, k.X) {
					r.hints[b] = append(r.hints[b], lenHint{
						baseVN: r.nm.vnExpr(k.X),
						exprVN: r.nm.vnExpr(k.Index),
					})
				}
			case *ast.SliceExpr:
				if sliceOrArray(r.ssa.pass, k.X) && k.High != nil {
					r.hints[b] = append(r.hints[b], lenHint{
						baseVN: r.nm.vnExpr(k.X),
						exprVN: r.nm.vnExpr(k.High),
						sliced: true,
					})
				}
			}
			return true
		})
	}
	visit(n)
}

func sliceOrArray(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// ProveIndex reports whether base[idx], evaluated in block b, is
// provably in bounds: some lower bound is a constant >= 0 and some
// upper bound is provably at most len(base)-1. The upper-bound side
// works modulo dominating equalities (one expansion level: a fact
// `len(a) == len(b)-1` carries a's bounds onto b's) and modulo +/-
// constant linearization (len(w)+1 and len(w) compare directly).
func (r *Ranges) ProveIndex(base, idx ast.Expr, b *Block) bool {
	los, his := r.IndexBounds(idx, b)
	loOK := false
	for _, lo := range los {
		if c, ok := lo.IsConst(); ok && c >= 0 {
			loOK = true
			break
		}
	}
	if !loOK {
		return false
	}

	baseVN := r.nm.vnExpr(base)
	lenVN := r.nm.lenOf(baseVN)
	lenSym, lenOff := r.nm.linearize(lenVN)
	var constLen *int64
	if at := arrayTypeOf(r.ssa.pass, base); at != nil {
		l := at.Len()
		constLen = &l
	} else if c, ok := r.nm.isConst(lenVN); ok {
		constLen = &c
	}

	// One-level expansion: an upper bound on hi's own symbol (an EQL
	// fact contributes one from each side) is an upper bound on hi.
	expanded := his
	for _, hi := range his {
		if hi.Inf || hi.VN < 0 {
			continue
		}
		_, ups := r.refineFacts(hi.VN, b, false)
		for _, u := range ups {
			if !u.Inf {
				expanded = append(expanded, u.add(hi.Off))
			}
		}
	}

	// Lower bounds on the length itself: emptiness guards
	// (`len(s) == 0` returns) and cross-slice equalities.
	lenLos, _ := r.refineFacts(lenVN, b, true)
	if lenSym != lenVN {
		more, _ := r.refineFacts(lenSym, b, true)
		for _, m := range more {
			if !m.Inf {
				lenLos = append(lenLos, m.add(lenOff))
			}
		}
	}

	for _, hi := range expanded {
		if hi.Inf {
			continue
		}
		hiSym, hiOff := hi.VN, hi.Off
		if hi.VN >= 0 {
			s, o := r.nm.linearize(hi.VN)
			hiSym, hiOff = s, hi.Off+o
		}
		// hi = len(base) + off with off <= -1.
		if hiSym >= 0 && hiSym == lenSym && hiOff <= lenOff-1 {
			return true
		}
		if c, ok := hi.IsConst(); ok {
			// hi = c with a known constant length...
			if constLen != nil && c <= *constLen-1 {
				return true
			}
			// ...or with a dominating constant lower bound on the length.
			for _, ll := range lenLos {
				if lc, lok := ll.IsConst(); lok && c <= lc-1 {
					return true
				}
			}
		}
		// hi at most a symbolic lower bound of the length, minus one.
		for _, ll := range lenLos {
			if ll.Inf || ll.VN < 0 {
				continue
			}
			llSym, llOff := r.nm.linearize(ll.VN)
			llOff += ll.Off
			if hiSym >= 0 && hiSym == llSym && hiOff <= llOff-1 {
				return true
			}
		}
		// A dominating executed index/slice on the same base bounds hi.
		if r.hintProves(baseVN, hi, b) {
			return true
		}
	}
	return false
}

// hintProves checks hi against the dominating length hints of b.
func (r *Ranges) hintProves(baseVN int, hi Bound, b *Block) bool {
	seen := 0
	for d := r.ssa.Idom(b); d != nil && seen < 64; d = r.ssa.Idom(d) {
		seen++
		for _, h := range r.hints[d] {
			if h.baseVN != baseVN || hi.VN != h.exprVN {
				continue
			}
			if h.sliced && hi.Off <= -1 {
				return true // hi <= hintHigh-1 <= len-1
			}
			if !h.sliced && hi.Off <= 0 {
				return true // hi <= hintIdx <= len-1
			}
		}
	}
	return false
}
