package lint

import (
	"go/ast"
	"testing"
)

// rangesFor builds SSA + range analysis for the function named fn.
func rangesFor(t *testing.T, src, fn string) (*Ranges, *SSA, *ast.FuncDecl) {
	t.Helper()
	p, s, fd := buildSSAFor(t, src, fn)
	_ = p
	return NewRanges(s, s.pass), s, fd
}

// firstIndexExpr returns the n-th (0-based) IndexExpr in source order.
func firstIndexExpr(t *testing.T, root ast.Node, n int) *ast.IndexExpr {
	t.Helper()
	var found *ast.IndexExpr
	count := 0
	ast.Inspect(root, func(k ast.Node) bool {
		if ix, ok := k.(*ast.IndexExpr); ok {
			if count == n {
				found = ix
			}
			count++
		}
		return true
	})
	if found == nil {
		t.Fatalf("IndexExpr #%d not found (%d total)", n, count)
	}
	return found
}

func proveFirstIndex(t *testing.T, src string) bool {
	t.Helper()
	r, s, fd := rangesFor(t, src, "f")
	ix := firstIndexExpr(t, fd, 0)
	b := s.BlockOf(ix.Index)
	if b == nil {
		// Index exprs whose block was not recorded (e.g. inside a range
		// header) fall back to the block of the whole expression.
		b = s.BlockOf(ix.X)
	}
	if b == nil {
		t.Fatal("no block recorded for the index expression")
	}
	return r.ProveIndex(ix.X, ix.Index, b)
}

func TestRangeLenBoundedLoopProves(t *testing.T) {
	if !proveFirstIndex(t, `package p
func f(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	return t
}`) {
		t.Error("i < len(s) loop: s[i] must be provable")
	}
}

func TestRangeKeyProves(t *testing.T) {
	if !proveFirstIndex(t, `package p
func f(s []int) int {
	t := 0
	for i := range s {
		t += s[i]
	}
	return t
}`) {
		t.Error("range key i: s[i] must be provable")
	}
}

func TestRangeUnrelatedBoundDoesNotProve(t *testing.T) {
	if proveFirstIndex(t, `package p
func f(s []int, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}`) {
		t.Error("i < n with n unrelated to len(s): s[i] must NOT be provable")
	}
}

func TestRangeWideningOnBackEdge(t *testing.T) {
	// Without the len bound the widened interval must reach infinity:
	// the index stays unprovable even though i starts at 0.
	if proveFirstIndex(t, `package p
func f(s []int) int {
	t := 0
	for i := 0; ; i++ {
		if i >= 100 {
			break
		}
		if len(s) == 0 {
			break
		}
		t += s[i%1]
		_ = t
	}
	return t
}`) {
		// s[i%1] is actually [0,0] — use a plain unbounded index below.
		t.Log("modulo path proved; widening exercised separately")
	}
	if proveFirstIndex(t, `package p
func f(s []int) int {
	t := 0
	for i := 0; ; i++ {
		t += s[i]
	}
}`) {
		t.Error("unbounded i: s[i] must NOT be provable (widening to +inf)")
	}
}

func TestRangeNamedLenAliasProves(t *testing.T) {
	// n := len(s); i < n must unify with len(s) via value numbering.
	if !proveFirstIndex(t, `package p
func f(s []int) int {
	t := 0
	n := len(s)
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}`) {
		t.Error("n := len(s); i < n: s[i] must be provable")
	}
}

func TestRangeMakeLenProves(t *testing.T) {
	// out := make([]T, n) gives len(out) = n, so j < n proves out[j].
	if !proveFirstIndex(t, `package p
func f(n int) []int {
	out := make([]int, n)
	for j := 0; j < n; j++ {
		out[j] = j
	}
	return out
}`) {
		t.Error("make([]int, n) with j < n: out[j] must be provable")
	}
}

func TestRangeResliceHintProves(t *testing.T) {
	// out = out[:len(x)] pins len(out) to len(x); range over x proves
	// out[i]. This is the exact shape the kernels use as a BCE hint.
	if !proveFirstIndex(t, `package p
func f(out, x []float64) {
	out = out[:len(x)]
	for i := range x {
		out[i] = x[i] * 2
	}
}`) {
		t.Error("out = out[:len(x)]; range x: out[i] must be provable")
	}
}

func TestRangeSubsliceLenProves(t *testing.T) {
	// leaf := probs[a : a+k] has len k, so c < k proves leaf[c].
	if !proveFirstIndex(t, `package p
func f(probs []float64, a, k int) float64 {
	leaf := probs[a : a+k]
	t := 0.0
	for c := 0; c < k; c++ {
		t += leaf[c]
	}
	return t
}`) {
		t.Error("leaf := probs[a:a+k]; c < k: leaf[c] must be provable")
	}
}

func TestRangeModuloGuardedProves(t *testing.T) {
	// start % len(ring) is in [0, len-1] once start is known >= 0 via
	// the dominating guard.
	if !proveFirstIndex(t, `package p
func f(ring []int, start int) int {
	if start < 0 || len(ring) == 0 {
		return -1
	}
	return ring[start%len(ring)]
}`) {
		t.Error("guarded start%len(ring): must be provable")
	}
}

func TestRangeModuloUnguardedDoesNotProve(t *testing.T) {
	if proveFirstIndex(t, `package p
func f(ring []int, start int) int {
	if len(ring) == 0 {
		return -1
	}
	return ring[start%len(ring)]
}`) {
		t.Error("unguarded start%len(ring) (start may be negative): must NOT prove")
	}
}

func TestRangeDominatingIndexHint(t *testing.T) {
	// An executed s[j] in a dominator proves j <= len(s)-1, so the loop
	// bound i <= j makes s[i] provable.
	r, s, fd := rangesFor(t, `package p
func f(s []int, j int) int {
	if j < 0 {
		return 0
	}
	t := s[j]
	for i := 0; i <= j; i++ {
		t += s[i]
	}
	return t
}`, "f")
	ix := firstIndexExpr(t, fd, 1) // s[i] in the loop body
	b := s.BlockOf(ix.Index)
	if b == nil {
		t.Fatal("no block for s[i]")
	}
	if !r.ProveIndex(ix.X, ix.Index, b) {
		t.Error("i <= j with dominating s[j]: s[i] must be provable")
	}
}

func TestRangeArrayConstLen(t *testing.T) {
	if !proveFirstIndex(t, `package p
func f(a [8]int) int {
	t := 0
	for i := 0; i < 8; i++ {
		t += a[i]
	}
	return t
}`) {
		t.Error("i < 8 over [8]int: a[i] must be provable")
	}
}

func TestRangeEvalExprWidening(t *testing.T) {
	r, _, fd := rangesFor(t, `package p
func f(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}`, "f")
	// The loop phi for i widens to [0, +inf): lower bound survives the
	// back edge (increment only grows), upper bound does not.
	iUse := identN(t, fd, "i", 1)
	iv := r.EvalExpr(iUse)
	if c, ok := iv.Lo.IsConst(); !ok || c != 0 {
		t.Errorf("widened i: Lo = %v, want 0", iv.Lo)
	}
	if !iv.Hi.Inf {
		t.Errorf("widened i: Hi = %v, want +inf", iv.Hi)
	}
}

func TestRangeIndexBoundsRefinement(t *testing.T) {
	r, s, fd := rangesFor(t, `package p
func f(s []int, i int) int {
	if i >= 0 && i < len(s) {
		return s[i]
	}
	return 0
}`, "f")
	ix := firstIndexExpr(t, fd, 0)
	b := s.BlockOf(ix.Index)
	if b == nil {
		t.Fatal("no block for s[i]")
	}
	los, his := r.IndexBounds(ix.Index, b)
	loOK := false
	for _, lo := range los {
		if c, ok := lo.IsConst(); ok && c >= 0 {
			loOK = true
		}
	}
	if !loOK {
		t.Errorf("i >= 0 refinement missing: lower bounds = %v", los)
	}
	if len(his) == 0 {
		t.Errorf("i < len(s) refinement missing: no upper bounds")
	}
	if !r.ProveIndex(ix.X, ix.Index, b) {
		t.Error("guarded s[i] must be provable")
	}
}

func TestRangeEmptinessGuardProvesConstIndex(t *testing.T) {
	// `if len(s) == 0 { return }` puts len(s) >= 1 on the fallthrough
	// path, which proves s[0] — the kernel root-node idiom.
	if !proveFirstIndex(t, `package p
func f(s []int) int {
	if len(s) == 0 {
		return -1
	}
	return s[0]
}`) {
		t.Error("s[0] after the len(s)==0 guard: must be provable")
	}
}

func TestRangeNoGuardConstIndexDoesNotProve(t *testing.T) {
	if proveFirstIndex(t, `package p
func f(s []int) int {
	return s[0]
}`) {
		t.Error("unguarded s[0]: must NOT prove")
	}
}

func TestRangeCrossSliceEqualityProves(t *testing.T) {
	// The validate-spec idiom: an early return pinning
	// len(b) == len(sizes)-1 makes b[l] and sizes[l+1] provable for l
	// ranging over b's twin.
	r, s, fd := rangesFor(t, `package p
func f(w []int, b []int, sizes []int) int {
	if len(w) != len(sizes)-1 || len(b) != len(sizes)-1 {
		return -1
	}
	t := 0
	for l := range w {
		t += b[l] + sizes[l+1]
	}
	return t
}`, "f")
	for n := 0; n < 2; n++ {
		ix := firstIndexExpr(t, fd, n)
		blk := s.BlockOf(ix.Index)
		if blk == nil {
			blk = s.BlockOf(ix.X)
		}
		if !r.ProveIndex(ix.X, ix.Index, blk) {
			t.Errorf("index #%d: cross-slice equality must prove", n)
		}
	}
}

func TestRangeCrossSliceWithoutEqualityDoesNotProve(t *testing.T) {
	if proveFirstIndex(t, `package p
func f(w []int, b []int) int {
	t := 0
	for l := range w {
		t += b[l]
	}
	return t
}`) {
		t.Error("b[l] with unrelated lengths: must NOT prove")
	}
}
