package lint

import (
	"go/ast"
	"strings"
)

// AnalyzerWallClock flags direct wall-clock reads and timers (time.Now,
// time.Sleep, time.After, ...) in the packages that committed to the
// internal/clock injection surface (sensor, loadgen, serving, service,
// gateway, scenario).
// Those packages' tests drive schedules with clock.Fake; one raw time
// call reintroduces scheduler-load-dependent timing and flaky latency
// assertions. Referencing `time.Now` as a value (the `now: time.Now`
// default-field idiom) is the sanctioned injection point and is not
// flagged — only calls are. Where the file already imports
// internal/clock, Now/Since/After calls carry a mechanical fix routing
// them through clock.Real(), which behaves identically but keeps every
// time source swappable and grep-able.
var AnalyzerWallClock = &Analyzer{
	Name:     "wall-clock",
	Doc:      "flags direct time.Now/Sleep/After/... calls in packages that must route through internal/clock",
	Severity: SeverityWarn,
	// Every internal package must route through internal/clock — the
	// virtual-time scenario engine replays campaigns against any of them.
	// internal/clock itself wraps the time package by design.
	AppliesTo: func(path string) bool {
		return strings.Contains(path, "internal/") && !strings.Contains(path, "internal/clock")
	},
	Run: runWallClock,
}

// wallClockFuncs are the flagged time package calls; the value says
// whether clock.Clock offers a drop-in replacement for the autofix.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"After":     true,
	"Sleep":     false, // no Clock.Sleep; select on Clock.After instead
	"Tick":      false,
	"AfterFunc": false,
	"NewTicker": false, // clock.Ticker's C is a method, not a field
	"NewTimer":  false,
	"Until":     false,
}

func runWallClock(p *Pass) {
	for _, file := range p.Files {
		clockName := clockImportName(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := p.PkgFunc(call)
			if !ok || path != "time" {
				return true
			}
			fixable, flagged := wallClockFuncs[name]
			if !flagged {
				return true
			}
			var edits []Edit
			if fixable && clockName != "" {
				// time.Now() -> clock.Real().Now(): replace the selector,
				// keep the arguments.
				sel := call.Fun.(*ast.SelectorExpr)
				start, end := p.Offset(sel.Pos()), p.Offset(sel.End())
				if start >= 0 && end >= start {
					edits = []Edit{{Start: start, End: end, New: clockName + ".Real()." + name}}
				}
			}
			p.ReportEditsf(call.Pos(), edits,
				"time.%s bypasses internal/clock; thread a clock.Clock (clock.Real() in production) so tests can fake time", name)
			return true
		})
	}
}

// clockImportName returns the local name binding internal/clock in the
// file ("" when the package is not imported).
func clockImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if !strings.HasSuffix(path, "internal/clock") {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "clock"
	}
	return ""
}
