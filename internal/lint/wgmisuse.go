package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerWgMisuse flags the two sync.WaitGroup protocol violations the
// race detector only catches when the schedule cooperates:
//
//  1. Add racing Wait — an Add that can execute after a Wait on the same
//     WaitGroup has started: sequentially (Add reachable after Wait on a
//     CFG path, outside a shared loop, where wave-style reuse is legal)
//     or structurally (Add inside a go-spawned literal while the spawning
//     function Waits — the goroutine may not have run when Wait checks
//     the counter, so Wait returns before the work is counted).
//  2. Unbalanced Done — a Done reachable on a CFG path whose minimum
//     possible counter is already zero (an Add on one branch, the Done
//     unconditional): the counter can go negative, which panics.
//
// WaitGroups are keyed per function by their receiver expression; only
// constant Add deltas are path-counted (a variable delta poisons the
// balance check for that key, never the race checks).
var AnalyzerWgMisuse = &Analyzer{
	Name:         "wg-misuse",
	Doc:          "flags WaitGroup Add-after-Wait races and Done calls that can outnumber Adds",
	Severity:     SeverityError,
	IncludeTests: true,
	RunProgram:   runWgMisuse,
}

const (
	wgAdd = iota
	wgDone
	wgWait
)

// wgMinFloor / wgMinCeil clamp the path-minimum counter so loops
// converge; the floor stays below zero so a second unbalanced Done still
// reports.
const (
	wgMinFloor = -4
	wgMinCeil  = 64
)

// wgCall is one recognized WaitGroup operation.
type wgCall struct {
	key  string
	kind int
	// delta is the Add argument; known is false for non-constant deltas.
	delta int
	known bool
	pos   token.Pos
}

// wgState is the per-key dataflow fact: has a Wait executed on some path
// (and where), and the minimum possible counter value across paths.
type wgState struct {
	waited  bool
	waitPos token.Pos
	min     int
	// poisoned disables the balance half after a non-constant Add.
	poisoned bool
}

func runWgMisuse(pp *ProgramPass) {
	prog := pp.Prog
	conc := prog.Concurrency()
	for _, n := range prog.Nodes {
		if n.Body() != nil {
			checkWgNode(pp, n)
		}
	}
	// Structural Add-in-goroutine: the spawned literal Adds to a group the
	// spawner Waits on — Wait can pass before the goroutine has counted
	// itself in.
	seen := make(map[token.Pos]bool)
	for _, site := range conc.SpawnSites {
		lit := site.Callee
		if lit.Lit == nil || site.Caller.Body() == nil {
			continue
		}
		callerPass := pp.PassFor(site.Caller.Pkg)
		waits := make(map[string]bool)
		for _, op := range collectWgOps(callerPass, site.Caller.Body()) {
			if op.kind == wgWait {
				waits[op.key] = true
			}
		}
		litPass := pp.PassFor(lit.Pkg)
		for _, op := range collectWgOps(litPass, lit.Body()) {
			if op.kind != wgAdd || !waits[op.key] || seen[op.pos] {
				continue
			}
			seen[op.pos] = true
			pp.Reportf(op.pos, "%s.Add runs inside a goroutine while %s waits on it; if Wait is reached first the work is never counted — move the Add before the go statement", op.key, site.Caller.Name)
		}
	}
}

// wgOpOf recognizes wg.Add/Done/Wait with a sync.WaitGroup receiver,
// keyed by the receiver's source text (the per-function canonical
// identity, like the lock-balance check uses).
func wgOpOf(pass *Pass, call *ast.CallExpr) (wgCall, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return wgCall{}, false
	}
	var kind int
	switch sel.Sel.Name {
	case "Add":
		kind = wgAdd
	case "Done":
		kind = wgDone
	case "Wait":
		kind = wgWait
	default:
		return wgCall{}, false
	}
	s, found := pass.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return wgCall{}, false
	}
	obj := s.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return wgCall{}, false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return wgCall{}, false
	}
	if pkgPath, typeName := namedPath(sig.Recv().Type()); pkgPath != "sync" || typeName != "WaitGroup" {
		return wgCall{}, false
	}
	op := wgCall{key: pass.ExprString(sel.X), kind: kind, pos: call.Pos()}
	if kind == wgAdd && len(call.Args) == 1 {
		if cv := pass.ConstValue(call.Args[0]); cv != nil && cv.Kind() == constant.Int {
			if v, exact := constant.Int64Val(cv); exact {
				op.delta, op.known = int(v), true
			}
		}
	}
	return op, true
}

// collectWgOps gathers every WaitGroup operation in a body, in AST order,
// excluding go statements (concurrent context) and deferred Add/Wait
// (deferred Done is kept: it runs exactly once at exit).
func collectWgOps(pass *Pass, body *ast.BlockStmt) []wgCall {
	var out []wgCall
	inspectShallow(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.DeferStmt:
			if op, ok := wgOpOf(pass, m.Call); ok && op.kind == wgDone {
				out = append(out, op)
			}
			return false
		case *ast.CallExpr:
			if op, ok := wgOpOf(pass, m); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// checkWgNode runs the per-function dataflow: forward min-counter and
// waited-set over the CFG, then a deterministic replay that reports.
func checkWgNode(pp *ProgramPass, n *Node) {
	pass := pp.PassFor(n.Pkg)
	all := collectWgOps(pass, n.Body())
	if len(all) == 0 {
		return
	}
	keys := make(map[string]bool)
	hasAdd := make(map[string]bool)
	for _, op := range all {
		keys[op.key] = true
		if op.kind == wgAdd {
			hasAdd[op.key] = true
		}
	}
	loops := collectLoopRanges(n.Body())

	clamp := func(v int) int {
		if v < wgMinFloor {
			return wgMinFloor
		}
		if v > wgMinCeil {
			return wgMinCeil
		}
		return v
	}
	apply := func(op wgCall, st wgState, emit bool) wgState {
		switch op.kind {
		case wgWait:
			st.waited = true
			if st.waitPos == token.NoPos || op.pos < st.waitPos {
				st.waitPos = op.pos
			}
			// Wait returning means the counter hit zero; the group may be
			// legally reused afterwards.
			st.min = 0
		case wgAdd:
			if emit && st.waited && !sameLoop(loops, op.pos, st.waitPos) {
				pp.Reportf(op.pos, "%s.Add is reachable after %s.Wait has started; Add must happen before Wait (or in the next wave, after Wait returns) — reorder or restructure the join", op.key, op.key)
			}
			if op.known {
				st.min = clamp(st.min + op.delta)
			} else {
				st.poisoned = true
			}
		case wgDone:
			if emit && hasAdd[op.key] && !st.poisoned && st.min < 1 {
				pp.Reportf(op.pos, "%s.Done can run without a matching %s.Add on this path (counter may go negative, which panics); balance Add and Done on every path", op.key, op.key)
			}
			st.min = clamp(st.min - 1)
		}
		return st
	}
	step := func(node ast.Node, f map[string]wgState, emit bool) map[string]wgState {
		if f == nil {
			return nil
		}
		out := f
		copied := false
		visit := func(op wgCall) {
			if !copied {
				copied = true
				out = cloneFacts(f)
			}
			out[op.key] = apply(op, out[op.key], emit)
		}
		switch s := node.(type) {
		case *ast.GoStmt:
			return out
		case *ast.DeferStmt:
			if op, ok := wgOpOf(pass, s.Call); ok && op.kind == wgDone {
				visit(op)
			}
			return out
		}
		inspectShallow(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if op, ok := wgOpOf(pass, m); ok {
					visit(op)
				}
			}
			return true
		})
		return out
	}

	g := pass.BuildCFG(n.Body())
	facts := Solve(g, FlowProblem[map[string]wgState]{
		Boundary: func() map[string]wgState {
			f := make(map[string]wgState, len(keys))
			for k := range keys {
				f[k] = wgState{}
			}
			return f
		},
		// nil is the unreached (top) fact: Meet passes the other side
		// through, and Transfer leaves it untouched, so facts only flow
		// along actually reachable paths.
		Init: func() map[string]wgState { return nil },
		Meet: meetWgFacts,
		Equal: func(a, b map[string]wgState) bool {
			if a == nil || b == nil {
				return a == nil && b == nil
			}
			return equalFacts(a, b)
		},
		Transfer: func(b *Block, f map[string]wgState) map[string]wgState {
			for _, node := range b.Nodes {
				f = step(node, f, false)
			}
			return f
		},
	})
	for _, b := range g.Blocks {
		f := facts[b].In
		for _, node := range b.Nodes {
			f = step(node, f, true)
		}
	}
}

// meetWgFacts joins two path facts: waited is may (or), the counter
// minimum is min, the witness Wait is the earliest.
func meetWgFacts(a, b map[string]wgState) map[string]wgState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return unionFacts(a, b, func(x, y wgState) wgState {
		out := wgState{
			waited:   x.waited || y.waited,
			waitPos:  x.waitPos,
			min:      x.min,
			poisoned: x.poisoned || y.poisoned,
		}
		if out.waitPos == token.NoPos || (y.waitPos != token.NoPos && y.waitPos < out.waitPos) {
			out.waitPos = y.waitPos
		}
		if y.min < out.min {
			out.min = y.min
		}
		return out
	})
}

// loopRange is the source extent of one for/range statement.
type loopRange struct{ from, to token.Pos }

// collectLoopRanges lists every loop extent in the body (shallow), so the
// Add-after-Wait check can recognize legal wave-style reuse: an Add and a
// Wait inside the same loop body alternate, they do not race.
func collectLoopRanges(body *ast.BlockStmt) []loopRange {
	var out []loopRange
	inspectShallow(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			out = append(out, loopRange{m.Pos(), m.End()})
		case *ast.RangeStmt:
			out = append(out, loopRange{m.Pos(), m.End()})
		}
		return true
	})
	return out
}

// sameLoop reports whether both positions fall inside one loop extent.
func sameLoop(loops []loopRange, a, b token.Pos) bool {
	if a == token.NoPos || b == token.NoPos {
		return false
	}
	for _, l := range loops {
		if l.from <= a && a < l.to && l.from <= b && b < l.to {
			return true
		}
	}
	return false
}
