// Package loadgen is the capacity-testing harness standing in for the
// paper's JMeter setup: thread groups with ramp-up periods drive a sampler
// concurrently, and listeners aggregate response times, throughput, and
// error rates (the "Summary Report" and "Response Times Over Active
// Threads" views the paper reads its fig-8 results from).
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Sampler issues one request and reports success.
type Sampler interface {
	Sample(ctx context.Context) error
}

// SamplerFunc adapts a function to Sampler.
type SamplerFunc func(ctx context.Context) error

// Sample implements Sampler.
func (f SamplerFunc) Sample(ctx context.Context) error { return f(ctx) }

// StatusError reports a sample that reached the server but came back with
// an error status. Listeners can distinguish shed load (429 from serving
// admission control) from hard failures via errors.As.
type StatusError struct {
	Code int
}

// Error implements error, keeping the historical "status NNN" shape.
func (e *StatusError) Error() string { return fmt.Sprintf("status %d", e.Code) }

// DefaultClientTimeout bounds requests of samplers that did not inject
// their own client. http.DefaultClient has no timeout at all, so one
// hung upstream would pin a load-test thread forever and skew every
// latency percentile behind it.
const DefaultClientTimeout = 30 * time.Second

// defaultClient is the shared fallback client. Sharing one client (and
// so one transport) across samplers keeps connection pooling intact.
var defaultClient = &http.Client{Timeout: DefaultClientTimeout}

// HTTPSampler posts a fixed body to a URL, the typical JMeter "HTTP
// Request" sampler.
type HTTPSampler struct {
	Method string
	URL    string
	Body   []byte
	Header http.Header
	// Client overrides the HTTP client (chaos transports, custom
	// timeouts, test doubles). When nil a shared client with
	// DefaultClientTimeout is used — never http.DefaultClient, which
	// would wait on a hung upstream forever.
	Client *http.Client
}

// Sample implements Sampler.
func (s *HTTPSampler) Sample(ctx context.Context) error {
	client := s.Client
	if client == nil {
		client = defaultClient
	}
	method := s.Method
	if method == "" {
		method = http.MethodGet
	}
	var body io.Reader
	if len(s.Body) > 0 {
		body = strings.NewReader(string(s.Body))
	}
	req, err := http.NewRequestWithContext(ctx, method, s.URL, body)
	if err != nil {
		return err
	}
	for k, vs := range s.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// Propagate the trace ID Run stamped on the context so client-side
	// latencies can be joined against server-side spans.
	telemetry.Inject(ctx, req.Header)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return &StatusError{Code: resp.StatusCode}
	}
	return nil
}

// ThreadGroup configures one load phase, mirroring JMeter's thread group.
type ThreadGroup struct {
	// Threads is the number of concurrent virtual users.
	Threads int
	// RampUp is the period over which threads start (thread i starts at
	// i/Threads · RampUp).
	RampUp time.Duration
	// Iterations is the number of samples each thread performs. Exactly
	// one of Iterations and Duration must be set.
	Iterations int
	// Duration, when set, makes each thread sample until the deadline
	// (measured from run start) instead of counting iterations.
	Duration time.Duration
	// Clock overrides the time source for ramp-up scheduling, deadline
	// checks, and sample timestamps; clock.Real() when nil. Tests inject
	// clock.Fake so ramp-up assertions are deterministic instead of
	// scheduler-dependent.
	Clock clock.Clock
}

// Sample is one recorded request.
type Sample struct {
	Start         time.Time
	Latency       time.Duration
	Err           error
	ActiveThreads int
	Thread        int
	// TraceID is the X-Trace-Id stamped on the request, joining this
	// client-side sample with the server-side spans at /traces.
	TraceID string
}

// Results collects samples from one run.
type Results struct {
	Samples []Sample
	Wall    time.Duration
}

// Run drives the sampler with the thread group until every thread
// completes its iterations or ctx is cancelled.
func Run(ctx context.Context, group ThreadGroup, sampler Sampler) (*Results, error) {
	if group.Threads <= 0 {
		return nil, errors.New("loadgen: Threads must be positive")
	}
	if (group.Iterations <= 0) == (group.Duration <= 0) {
		return nil, errors.New("loadgen: set exactly one of Iterations and Duration")
	}
	if sampler == nil {
		return nil, errors.New("loadgen: nil sampler")
	}

	clk := group.Clock
	if clk == nil {
		clk = clock.Real()
	}
	var (
		active  atomic.Int64
		mu      sync.Mutex
		samples []Sample
		wg      sync.WaitGroup
	)
	start := clk.Now()
	deadline := time.Time{}
	if group.Duration > 0 {
		deadline = start.Add(group.Duration)
	}
	for th := 0; th < group.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			// Ramp-up delay.
			if group.RampUp > 0 && group.Threads > 1 {
				delay := time.Duration(int64(group.RampUp) * int64(th) / int64(group.Threads))
				select {
				case <-clk.After(delay):
				case <-ctx.Done():
					return
				}
			}
			active.Add(1)
			defer active.Add(-1)
			for it := 0; group.Iterations <= 0 || it < group.Iterations; it++ {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && clk.Now().After(deadline) {
					return
				}
				s := Sample{
					Start:         clk.Now(),
					ActiveThreads: int(active.Load()),
					Thread:        th,
					TraceID:       telemetry.NewTraceID(),
				}
				s.Err = sampler.Sample(telemetry.ContextWithTrace(ctx, s.TraceID, ""))
				s.Latency = clk.Since(s.Start)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(th)
	}
	wg.Wait()
	res := &Results{Samples: samples, Wall: clk.Since(start)}
	sort.Slice(res.Samples, func(i, j int) bool { return res.Samples[i].Start.Before(res.Samples[j].Start) })
	return res, ctx.Err()
}

// Summary is the JMeter "Summary Report" equivalent.
type Summary struct {
	Count  int `json:"count"`
	Errors int `json:"errors"`
	// Shed counts the subset of Errors that were 429 responses — load
	// the serving runtime's admission control rejected with a back-off
	// hint rather than queueing. A saturated-but-shedding service shows
	// a high Shed with a flat latency profile; a collapsing one shows
	// few Sheds and exploding percentiles.
	Shed       int           `json:"shed"`
	ErrorRate  float64       `json:"errorRate"`
	Mean       time.Duration `json:"meanNs"`
	Min        time.Duration `json:"minNs"`
	Max        time.Duration `json:"maxNs"`
	P50        time.Duration `json:"p50Ns"`
	P90        time.Duration `json:"p90Ns"`
	P95        time.Duration `json:"p95Ns"`
	P99        time.Duration `json:"p99Ns"`
	Throughput float64       `json:"throughputRps"`
	// SlowestTraces samples the trace IDs of the worst-latency requests
	// (up to 5) so tail latencies can be looked up in the server-side
	// span buffers (/traces?trace=<id>) of the gateway and services.
	SlowestTraces []TraceSample `json:"slowestTraces,omitempty"`
}

// TraceSample pairs a stamped trace ID with its client-observed latency.
type TraceSample struct {
	TraceID string        `json:"traceId"`
	Latency time.Duration `json:"latencyNs"`
	Err     bool          `json:"err,omitempty"`
}

// Summarize computes the summary report.
func (r *Results) Summarize() Summary {
	s := Summary{Count: len(r.Samples)}
	if s.Count == 0 {
		return s
	}
	lats := make([]time.Duration, 0, s.Count)
	var total time.Duration
	s.Min = r.Samples[0].Latency
	for _, smp := range r.Samples {
		if smp.Err != nil {
			s.Errors++
			var se *StatusError
			if errors.As(smp.Err, &se) && se.Code == http.StatusTooManyRequests {
				s.Shed++
			}
		}
		lats = append(lats, smp.Latency)
		total += smp.Latency
		if smp.Latency < s.Min {
			s.Min = smp.Latency
		}
		if smp.Latency > s.Max {
			s.Max = smp.Latency
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.Mean = total / time.Duration(s.Count)
	s.P50 = percentile(lats, 0.50)
	s.P90 = percentile(lats, 0.90)
	s.P95 = percentile(lats, 0.95)
	s.P99 = percentile(lats, 0.99)
	s.ErrorRate = float64(s.Errors) / float64(s.Count)
	if r.Wall > 0 {
		s.Throughput = float64(s.Count) / r.Wall.Seconds()
	}
	s.SlowestTraces = r.slowestTraces(5)
	return s
}

// slowestTraces returns the trace IDs of the n worst-latency samples,
// slowest first, skipping samples without a stamped trace.
func (r *Results) slowestTraces(n int) []TraceSample {
	traced := make([]Sample, 0, len(r.Samples))
	for _, s := range r.Samples {
		if s.TraceID != "" {
			traced = append(traced, s)
		}
	}
	sort.Slice(traced, func(i, j int) bool { return traced[i].Latency > traced[j].Latency })
	if len(traced) > n {
		traced = traced[:n]
	}
	out := make([]TraceSample, 0, len(traced))
	for _, s := range traced {
		out = append(out, TraceSample{TraceID: s.TraceID, Latency: s.Latency, Err: s.Err != nil})
	}
	return out
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// ThreadPoint is one point of the "Response Times Over Active Threads"
// listener: the mean latency observed while a given number of threads was
// active.
type ThreadPoint struct {
	ActiveThreads int           `json:"activeThreads"`
	MeanLatency   time.Duration `json:"meanLatencyNs"`
	Count         int           `json:"count"`
}

// OverActiveThreads aggregates samples by concurrent thread count.
func (r *Results) OverActiveThreads() []ThreadPoint {
	type agg struct {
		total time.Duration
		n     int
	}
	byThreads := make(map[int]*agg)
	for _, s := range r.Samples {
		a, ok := byThreads[s.ActiveThreads]
		if !ok {
			a = &agg{}
			byThreads[s.ActiveThreads] = a
		}
		a.total += s.Latency
		a.n++
	}
	out := make([]ThreadPoint, 0, len(byThreads))
	for k, a := range byThreads {
		out = append(out, ThreadPoint{ActiveThreads: k, MeanLatency: a.total / time.Duration(a.n), Count: a.n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ActiveThreads < out[j].ActiveThreads })
	return out
}

// TimeBucket is one second of the response-times-over-time series.
type TimeBucket struct {
	Second      int           `json:"second"`
	MeanLatency time.Duration `json:"meanLatencyNs"`
	Count       int           `json:"count"`
}

// OverTime aggregates samples into one-second buckets from run start.
func (r *Results) OverTime() []TimeBucket {
	if len(r.Samples) == 0 {
		return nil
	}
	start := r.Samples[0].Start
	type agg struct {
		total time.Duration
		n     int
	}
	buckets := make(map[int]*agg)
	for _, s := range r.Samples {
		sec := int(s.Start.Sub(start).Seconds())
		a, ok := buckets[sec]
		if !ok {
			a = &agg{}
			buckets[sec] = a
		}
		a.total += s.Latency
		a.n++
	}
	out := make([]TimeBucket, 0, len(buckets))
	for sec, a := range buckets {
		out = append(out, TimeBucket{Second: sec, MeanLatency: a.total / time.Duration(a.n), Count: a.n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Second < out[j].Second })
	return out
}
