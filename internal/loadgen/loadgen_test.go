package loadgen

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestRunCompletesAllIterations(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), ThreadGroup{Threads: 4, Iterations: 5}, SamplerFunc(func(context.Context) error {
		calls.Add(1)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 20 || len(res.Samples) != 20 {
		t.Fatalf("calls %d samples %d, want 20", calls.Load(), len(res.Samples))
	}
}

func TestRunValidation(t *testing.T) {
	s := SamplerFunc(func(context.Context) error { return nil })
	if _, err := Run(context.Background(), ThreadGroup{Threads: 0, Iterations: 1}, s); err == nil {
		t.Fatal("expected thread error")
	}
	if _, err := Run(context.Background(), ThreadGroup{Threads: 1, Iterations: 0}, s); err == nil {
		t.Fatal("expected iteration error")
	}
	if _, err := Run(context.Background(), ThreadGroup{Threads: 1, Iterations: 1}, nil); err == nil {
		t.Fatal("expected sampler error")
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Run(ctx, ThreadGroup{Threads: 2, Iterations: 1000000}, SamplerFunc(func(context.Context) error {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		}))
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
	if calls.Load() == 0 {
		t.Fatal("no samples before cancel")
	}
}

func TestSummaryStatistics(t *testing.T) {
	res := &Results{Wall: 2 * time.Second}
	for i := 1; i <= 100; i++ {
		var err error
		if i%10 == 0 {
			err = errors.New("boom")
		}
		res.Samples = append(res.Samples, Sample{Latency: time.Duration(i) * time.Millisecond, Err: err})
	}
	s := res.Summarize()
	if s.Count != 100 || s.Errors != 10 {
		t.Fatalf("count/errors %d/%d", s.Count, s.Errors)
	}
	if s.ErrorRate != 0.1 {
		t.Fatalf("error rate %v", s.ErrorRate)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("p99 %v", s.P99)
	}
	if s.Throughput != 50 {
		t.Fatalf("throughput %v", s.Throughput)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := (&Results{}).Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestOverActiveThreadsAggregates(t *testing.T) {
	res := &Results{}
	res.Samples = []Sample{
		{ActiveThreads: 1, Latency: 10 * time.Millisecond},
		{ActiveThreads: 1, Latency: 20 * time.Millisecond},
		{ActiveThreads: 2, Latency: 40 * time.Millisecond},
	}
	pts := res.OverActiveThreads()
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].ActiveThreads != 1 || pts[0].MeanLatency != 15*time.Millisecond || pts[0].Count != 2 {
		t.Fatalf("point0 %+v", pts[0])
	}
	if pts[1].ActiveThreads != 2 || pts[1].MeanLatency != 40*time.Millisecond {
		t.Fatalf("point1 %+v", pts[1])
	}
}

func TestOverTimeBuckets(t *testing.T) {
	base := time.Now()
	res := &Results{}
	res.Samples = []Sample{
		{Start: base, Latency: 10 * time.Millisecond},
		{Start: base.Add(100 * time.Millisecond), Latency: 30 * time.Millisecond},
		{Start: base.Add(1500 * time.Millisecond), Latency: 50 * time.Millisecond},
	}
	buckets := res.OverTime()
	if len(buckets) != 2 {
		t.Fatalf("buckets %d", len(buckets))
	}
	if buckets[0].Count != 2 || buckets[0].MeanLatency != 20*time.Millisecond {
		t.Fatalf("bucket0 %+v", buckets[0])
	}
	if buckets[1].Second != 1 || buckets[1].Count != 1 {
		t.Fatalf("bucket1 %+v", buckets[1])
	}
}

func TestRampUpStaggersThreadStarts(t *testing.T) {
	// Driven by a fake clock so the exact JMeter-style stagger
	// (thread i starts at i/Threads · RampUp) is asserted without
	// real sleeps or scheduler-dependent slack.
	epoch := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	fc := clock.NewFake(epoch)
	sampled := make(chan struct{}, 4)
	type outcome struct {
		res *Results
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(context.Background(),
			ThreadGroup{Threads: 4, RampUp: 200 * time.Millisecond, Iterations: 1, Clock: fc},
			SamplerFunc(func(context.Context) error {
				sampled <- struct{}{}
				return nil
			}))
		done <- outcome{res, err}
	}()

	// Thread 0's ramp delay is zero, so it samples at the epoch; threads
	// 1-3 park on the fake clock for 50/100/150ms.
	<-sampled
	fc.BlockUntil(3)
	for i := 0; i < 3; i++ {
		fc.Advance(50 * time.Millisecond)
		<-sampled
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	starts := make([]time.Duration, 0, len(out.res.Samples))
	for _, s := range out.res.Samples {
		starts = append(starts, s.Start.Sub(epoch))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	want := []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond}
	if len(starts) != len(want) {
		t.Fatalf("got %d samples, want %d", len(starts), len(want))
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("thread start %d at +%v, want +%v", i, starts[i], want[i])
		}
	}
	if out.res.Wall != 150*time.Millisecond {
		t.Fatalf("wall time %v on fake timeline, want 150ms", out.res.Wall)
	}
}

func TestHTTPSampler(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.URL.Path == "/fail" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	ok := &HTTPSampler{URL: srv.URL + "/ok"}
	if err := ok.Sample(context.Background()); err != nil {
		t.Fatal(err)
	}
	bad := &HTTPSampler{URL: srv.URL + "/fail"}
	if err := bad.Sample(context.Background()); err == nil {
		t.Fatal("expected error for 500 response")
	}
	if hits.Load() != 2 {
		t.Fatalf("hits %d", hits.Load())
	}
}

func TestHTTPSamplerUnderLoad(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	res, err := Run(context.Background(), ThreadGroup{Threads: 8, Iterations: 4},
		&HTTPSampler{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summarize()
	if s.Count != 32 || s.Errors != 0 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean < 2*time.Millisecond {
		t.Fatalf("mean latency %v implausibly low", s.Mean)
	}
}

func TestRunDurationMode(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), ThreadGroup{Threads: 3, Duration: 150 * time.Millisecond},
		SamplerFunc(func(context.Context) error {
			calls.Add(1)
			time.Sleep(5 * time.Millisecond)
			return nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("no samples in duration mode")
	}
	if res.Wall < 150*time.Millisecond {
		t.Fatalf("run ended early: %v", res.Wall)
	}
	if res.Wall > 2*time.Second {
		t.Fatalf("run overshot duration: %v", res.Wall)
	}
}

func TestRunRejectsAmbiguousStopCondition(t *testing.T) {
	s := SamplerFunc(func(context.Context) error { return nil })
	if _, err := Run(context.Background(), ThreadGroup{Threads: 1}, s); err == nil {
		t.Fatal("expected error when neither Iterations nor Duration set")
	}
	if _, err := Run(context.Background(), ThreadGroup{Threads: 1, Iterations: 1, Duration: time.Second}, s); err == nil {
		t.Fatal("expected error when both Iterations and Duration set")
	}
}

// TestHTTPSamplerDefaultClientTimeout: a sampler without an injected
// client must NOT fall back to http.DefaultClient (no timeout — one hung
// upstream pins a thread forever); the shared fallback carries
// DefaultClientTimeout, and an injected client is used as-is.
func TestHTTPSamplerDefaultClientTimeout(t *testing.T) {
	if defaultClient == http.DefaultClient {
		t.Fatal("fallback client is http.DefaultClient")
	}
	if defaultClient.Timeout != DefaultClientTimeout {
		t.Fatalf("fallback timeout %v, want %v", defaultClient.Timeout, DefaultClientTimeout)
	}
	if DefaultClientTimeout <= 0 {
		t.Fatal("DefaultClientTimeout must be positive")
	}

	// Injected clients are honored: a transport-level stub answers
	// without any server.
	injected := &http.Client{Transport: roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: http.StatusTeapot, Body: http.NoBody, Request: r}, nil
	})}
	s := &HTTPSampler{URL: "http://example.invalid/x", Client: injected}
	err := s.Sample(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTeapot {
		t.Fatalf("injected client not used: %v", err)
	}
}

// roundTripperFunc adapts a function to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
