package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/serving"
)

// TestScenarioServingShedsUnderOverload reproduces the capacity
// experiment's saturation shape end to end: a thread group hammers a
// prediction endpoint backed by the serving runtime with a deliberately
// tiny admission watermark, and the summary report separates shed load
// (429 + Retry-After, counted by Summary.Shed) from served requests
// instead of letting overload surface as timeouts.
func TestScenarioServingShedsUnderOverload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < 120; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y)
	}
	model := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := model.Fit(tb); err != nil {
		t.Fatal(err)
	}

	// A long batching window plus a 2-instance watermark means most of
	// the concurrent samples find the line full and are shed.
	rt := serving.New(serving.Config{
		MaxBatch:      4,
		MaxWait:       20 * time.Millisecond,
		Workers:       1,
		QueueDepth:    8,
		ShedWatermark: 2,
	})
	defer rt.Close()
	ref, err := rt.Registry().Register("sep", model)
	if err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Instances [][]float64 `json:"instances"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_, classes, err := rt.Predict(r.Context(), ref.Name, req.Instances)
		if err != nil {
			var over *serving.OverloadedError
			if errors.As(err, &over) {
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusTooManyRequests)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(classes)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	sampler := &HTTPSampler{
		Method: http.MethodPost,
		URL:    srv.URL + "/predict",
		Body:   []byte(`{"instances":[[2,0]]}`),
	}
	res, err := Run(context.Background(), ThreadGroup{Threads: 8, Iterations: 4}, sampler)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summarize()
	if sum.Count != 32 {
		t.Fatalf("samples %d, want 32", sum.Count)
	}
	if sum.Shed == 0 {
		t.Fatal("overloaded runtime should shed some samples with 429")
	}
	if sum.Errors != sum.Shed {
		t.Fatalf("errors %d != shed %d: overload should surface only as 429s", sum.Errors, sum.Shed)
	}
	if sum.Count == sum.Shed {
		t.Fatal("admission control shed everything; some requests must be served")
	}
}
