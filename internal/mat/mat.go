// Package mat provides the small dense linear-algebra kernel that the rest
// of the repository builds on: dense matrices, vector helpers, and the
// linear solvers needed by weighted least squares (LIME, KernelSHAP) and
// regularized regression.
//
// The package is deliberately minimal: it implements exactly the operations
// the SPATIAL reproduction needs, with bounds-checked constructors and
// allocation-free hot paths where it matters.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (not copied) as a rows×cols matrix.
// len(data) must equal rows*cols.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows copies a slice of equal-length rows into a new matrix.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		panic("mat: FromRows with no rows")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	data := make([]float64, len(m.data))
	copy(data, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: data}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// MulVec computes m · x and stores the result in dst, which must have
// length m.Rows(). It returns dst for chaining. If dst is nil a new slice
// is allocated.
func (m *Dense) MulVec(x, dst []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %d != %d", len(x), m.cols))
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	} else if len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVec dst length %d != %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// Mul computes a · b into a new matrix.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch: %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddDiag adds v to every diagonal element of a square matrix in place.
func (m *Dense) AddDiag(v float64) {
	if m.rows != m.cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] += v
	}
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var best float64
	for _, v := range m.data {
		if a := math.Abs(v); a > best {
			best = a
		}
	}
	return best
}
