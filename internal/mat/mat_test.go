package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dimensions")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseDataPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("element mismatch: %v %v", m.At(1, 0), m.At(2, 1))
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestSetAndRowView(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 42)
	row := m.Row(1)
	if row[2] != 42 {
		t.Fatalf("Row view did not observe Set: %v", row)
	}
	row[0] = 7 // view writes through
	if m.At(1, 0) != 7 {
		t.Fatalf("write through Row view lost: %v", m.At(1, 0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1}, nil)
	want := []float64{3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul mismatch at (%d,%d): %v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulAssociatesWithVector(t *testing.T) {
	// Property: (A·B)·x == A·(B·x) for random matrices.
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 2 + rng.Intn(6)
		k := 2 + rng.Intn(6)
		m := 2 + rng.Intn(6)
		a, b := NewDense(n, k), NewDense(k, m)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		left := Mul(a, b).MulVec(x, nil)
		right := a.MulVec(b.MulVec(x, nil), nil)
		for i := range left {
			if !almostEqual(left[i], right[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDiagAndScale(t *testing.T) {
	m := NewDense(2, 2)
	m.AddDiag(3)
	m.Scale(2)
	if m.At(0, 0) != 6 || m.At(1, 1) != 6 || m.At(0, 1) != 0 {
		t.Fatalf("unexpected matrix %+v", m)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{1, -9}, {3, 4}})
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v, want 9", m.MaxAbs())
	}
}

func TestDotAndAXPY(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v, want 32", Dot(a, b))
	}
	y := CloneVec(b)
	AXPY(2, a, y)
	want := []float64{6, 9, 12}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("AXPY = %v, want %v", y, want)
		}
	}
}

func TestNormsAndStats(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Dist2([]float64{0, 0}, x) != 5 {
		t.Fatalf("Dist2 = %v", Dist2([]float64{0, 0}, x))
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if !almostEqual(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax should return first maximal index")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 1 + rng.Intn(10)
		logits := make([]float64, n)
		for i := range logits {
			logits[i] = rng.NormFloat64() * 10
		}
		p := Softmax(logits, nil)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			return false
		}
		// Softmax is shift-invariant.
		shifted := make([]float64, n)
		for i := range logits {
			shifted[i] = logits[i] + 123.456
		}
		q := Softmax(shifted, nil)
		for i := range p {
			if !almostEqual(p[i], q[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxExtremeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 0, -1000}, nil)
	if math.IsNaN(p[0]) || !almostEqual(p[0], 1, 1e-9) {
		t.Fatalf("softmax overflow not handled: %v", p)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 3, x + 3y = 5 => x = 4/5, y = 7/5
	if !almostEqual(x[0], 0.8, 1e-12) || !almostEqual(x[1], 1.4, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(8)
		a := NewDense(n, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		a.AddDiag(float64(n)) // diagonally dominant => well-conditioned
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want, nil)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRidgeWLSRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, d := 200, 4
	x := NewDense(n, d)
	beta := []float64{1.5, -2, 0.5, 3}
	y := make([]float64, n)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = Dot(x.Row(i), beta)
		w[i] = 0.5 + rng.Float64()
	}
	got, err := RidgeWLS(x, y, w, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range beta {
		if !almostEqual(got[i], beta[i], 1e-6) {
			t.Fatalf("RidgeWLS = %v, want %v", got, beta)
		}
	}
}

func TestRidgeWLSShrinksWithLambda(t *testing.T) {
	x := FromRows([][]float64{{1}, {1}, {1}})
	y := []float64{2, 2, 2}
	w := []float64{1, 1, 1}
	small, err := RidgeWLS(x, y, w, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RidgeWLS(x, y, w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big[0]) >= math.Abs(small[0]) {
		t.Fatalf("lambda should shrink coefficients: %v vs %v", big, small)
	}
}

func TestRidgeWLSHandlesCollinearColumns(t *testing.T) {
	// Two identical columns is singular without regularization; RidgeWLS
	// must still return a finite solution.
	x := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	y := []float64{1, 2, 3}
	w := []float64{1, 1, 1}
	got, err := RidgeWLS(x, y, w, 0)
	if err != nil {
		t.Fatalf("collinear RidgeWLS: %v", err)
	}
	for _, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite coefficient: %v", got)
		}
	}
}

func TestRidgeWLSInputValidation(t *testing.T) {
	x := NewDense(2, 2)
	if _, err := RidgeWLS(x, []float64{1}, []float64{1, 1}, 0); err == nil {
		t.Fatal("expected error for short y")
	}
	if _, err := RidgeWLS(x, []float64{1, 1}, []float64{1}, 0); err == nil {
		t.Fatal("expected error for short w")
	}
	if _, err := RidgeWLS(x, []float64{1, 1}, []float64{1, 1}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}
