package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: matrix is singular")

// Solve solves the square system a·x = b using Gaussian elimination with
// partial pivoting. a and b are not modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: Solve requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mat: Solve rhs length %d != %d", len(b), n)
	}
	// Augmented working copies.
	m := a.Clone()
	x := CloneVec(b)
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |value| in this column.
		pivot, pv := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if av := math.Abs(m.At(r, col)); av > pv {
				pivot, pv = r, av
			}
		}
		if pv < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.data[col*n+j], m.data[pivot*n+j] = m.data[pivot*n+j], m.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.data[r*n+j] -= f * m.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// RidgeWLS solves a weighted least-squares problem with L2 regularization:
//
//	argmin_beta  sum_i w_i (y_i - x_i·beta)^2 + lambda ||beta||^2
//
// X is n×d, y and w have length n. The intercept, if wanted, must be an
// explicit all-ones column of X (it is regularized like any coefficient,
// which is the convention both LIME and KernelSHAP use here with tiny
// lambda). The returned slice has length d.
func RidgeWLS(x *Dense, y, w []float64, lambda float64) ([]float64, error) {
	n, d := x.rows, x.cols
	if len(y) != n {
		return nil, fmt.Errorf("mat: RidgeWLS y length %d != %d", len(y), n)
	}
	if len(w) != n {
		return nil, fmt.Errorf("mat: RidgeWLS w length %d != %d", len(w), n)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("mat: RidgeWLS negative lambda %v", lambda)
	}
	// Normal equations: (X^T W X + lambda I) beta = X^T W y.
	xtwx := NewDense(d, d)
	xtwy := make([]float64, d)
	for i := 0; i < n; i++ {
		wi := w[i]
		if wi == 0 {
			continue
		}
		row := x.Row(i)
		for a := 0; a < d; a++ {
			va := wi * row[a]
			if va == 0 {
				continue
			}
			xtwy[a] += va * y[i]
			base := a * d
			for b := 0; b < d; b++ {
				xtwx.data[base+b] += va * row[b]
			}
		}
	}
	xtwx.AddDiag(lambda)
	beta, err := Solve(xtwx, xtwy)
	if err != nil {
		// A touch more regularization rescues the rank-deficient case
		// that arises when perturbation sampling produces collinear
		// coalition columns.
		xtwx.AddDiag(1e-6 + lambda)
		beta, err = Solve(xtwx, xtwy)
		if err != nil {
			return nil, fmt.Errorf("ridge WLS: %w", err)
		}
	}
	return beta, nil
}
