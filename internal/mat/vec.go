package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch: %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AXPY length mismatch: %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dist2 returns the Euclidean distance between a and b.
func Dist2(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dist2 length mismatch: %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest element of x (first on ties).
// It panics on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Softmax writes the softmax of logits into dst (allocating when dst is
// nil) using the max-subtraction trick for numerical stability.
func Softmax(logits, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	} else if len(dst) != len(logits) {
		panic(fmt.Sprintf("mat: Softmax dst length %d != %d", len(dst), len(logits)))
	}
	// Reslice hint: both branches above pin len(dst) == len(logits); the
	// restatement survives the merge and makes dst[i] provably in bounds.
	dst = dst[:len(logits)]
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		uniform := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = uniform
		}
		return dst
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}
