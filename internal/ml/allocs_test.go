package ml

import (
	"encoding/json"
	"os"
	"testing"
)

// perfManifest mirrors the slice of ../../.perf-manifest.json this test
// consumes (the allocBudgets section spatial-perfgate's generator carries
// over verbatim). Decoding it here instead of importing internal/perfgate
// keeps the dependency arrow pointing from the gate to the kernels, not
// back.
type perfManifest struct {
	AllocBudgets map[string]struct {
		Func           string  `json:"func"`
		MaxAllocsPerOp float64 `json:"maxAllocsPerOp"`
	} `json:"allocBudgets"`
}

// allocPaths is the fixed set of predict paths this test knows how to
// measure, keyed exactly as the manifest's allocBudgets section. fit
// returns the warmed-up measurement closure for the path.
var allocPaths = map[string]func(f *Forest, g *GBDT, x []float64, batch [][]float64) func(){
	"forest/serial":  func(f *Forest, _ *GBDT, x []float64, _ [][]float64) func() { return func() { f.PredictProba(x) } },
	"forest/batched": func(f *Forest, _ *GBDT, _ []float64, b [][]float64) func() { return func() { f.PredictProbaBatch(b) } },
	"gbdt/serial":    func(_ *Forest, g *GBDT, x []float64, _ [][]float64) func() { return func() { g.PredictProba(x) } },
	"gbdt/batched":   func(_ *Forest, g *GBDT, _ []float64, b [][]float64) func() { return func() { g.PredictProbaBatch(b) } },
}

// TestPredictAllocBudgets asserts the serial and batched Forest/GBDT
// predict paths stay within the allocation ceilings committed in
// .perf-manifest.json, and that the manifest and this test agree on the
// path set — a budget without a measurement (or vice versa) fails, so
// neither side can silently drift.
func TestPredictAllocBudgets(t *testing.T) {
	buf, err := os.ReadFile("../../.perf-manifest.json")
	if err != nil {
		t.Fatalf("reading perf manifest (regenerate with make perfgate-manifest): %v", err)
	}
	var m perfManifest
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("perf manifest: %v", err)
	}
	if len(m.AllocBudgets) == 0 {
		t.Fatal("perf manifest has no allocBudgets section")
	}
	for key := range m.AllocBudgets {
		if allocPaths[key] == nil {
			t.Errorf("manifest budgets %q but this test cannot measure it; teach allocPaths about it", key)
		}
	}

	data := blobs(7, 238, 6, 3, 1.5)
	f := NewForest(ForestConfig{Trees: 20, MaxDepth: 8, MinLeaf: 1, MaxFeatures: -1, Seed: 1})
	g := NewGBDT(DefaultLightGBMConfig())
	if err := f.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(data); err != nil {
		t.Fatal(err)
	}
	x := data.X[0]
	batch := data.X[:32]
	f.PredictProbaBatch(batch) // build the leaf-distribution cache outside the measurement

	for key, mk := range allocPaths {
		budget, ok := m.AllocBudgets[key]
		if !ok {
			t.Errorf("predict path %q has no allocBudgets entry in .perf-manifest.json", key)
			continue
		}
		got := testing.AllocsPerRun(200, mk(f, g, x, batch))
		if got > budget.MaxAllocsPerOp {
			t.Errorf("%s (%s): %v allocs/op exceeds committed budget %v",
				key, budget.Func, got, budget.MaxAllocsPerOp)
		}
	}
}
