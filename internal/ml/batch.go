package ml

import (
	"repro/internal/mat"
)

// BatchPredictor is implemented by classifiers with a batch-aware
// prediction kernel. Tree ensembles traverse tree-major (every instance
// through one tree before moving to the next) so a tree's node slice
// stays hot in cache across the whole batch, and accumulate directly
// into the output rows instead of allocating a probability slice per
// tree per instance — the amortization the serving runtime's
// micro-batcher exists to exploit.
type BatchPredictor interface {
	// PredictProbaBatch returns one probability row per instance. The
	// result rows are owned by the caller.
	PredictProbaBatch(X [][]float64) [][]float64
}

// PredictProbaAll returns class-probability rows for every instance,
// dispatching to the model's batch kernel when it has one and falling
// back to the per-instance loop otherwise. It is the single prediction
// helper shared by the ML service handler and the serving batcher.
func PredictProbaAll(c Classifier, X [][]float64) [][]float64 {
	if len(X) == 0 {
		return nil
	}
	if bp, ok := c.(BatchPredictor); ok {
		return bp.PredictProbaBatch(X)
	}
	out := make([][]float64, len(X))
	for i, x := range X {
		//lint:ignore hot-indirect this fallback exists for models without a batch kernel; the dispatch is the contract
		out[i] = c.PredictProba(x)
	}
	return out
}

// ArgmaxAll maps probability rows to argmax class labels (first index on
// ties, matching mat.ArgMax).
func ArgmaxAll(probs [][]float64) []int {
	out := make([]int, len(probs))
	for i, p := range probs {
		out[i] = mat.ArgMax(p)
	}
	return out
}

// probaRows allocates n contiguous probability rows of k classes backed
// by one flat slice, keeping a batch's output cache-dense.
func probaRows(n, k int) [][]float64 {
	flat := make([]float64, n*k)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}

// probaRowsScratch is probaRows plus n scratch floats carved from the
// same backing array: batch kernels get a flat per-instance accumulator
// without a third allocation.
func probaRowsScratch(n, k int) ([][]float64, []float64) {
	flat := make([]float64, n*k+n)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return rows, flat[n*k:]
}
