package ml

import (
	"testing"
)

// TestBatchKernelsMatchSerial asserts the tree-major batch kernels are
// bit-identical to the per-instance PredictProba path — the serving
// batcher swaps one for the other, so any drift would change served
// predictions depending on traffic shape.
func TestBatchKernelsMatchSerial(t *testing.T) {
	data := blobs(7, 238, 6, 3, 1.5)
	models := []Classifier{
		NewForest(ForestConfig{Trees: 20, MaxDepth: 8, MinLeaf: 1, MaxFeatures: -1, Seed: 1}),
		NewGBDT(DefaultLightGBMConfig()),
		NewGBDT(DefaultXGBoostConfig()),
	}
	for _, m := range models {
		if err := m.Fit(data); err != nil {
			t.Fatalf("%s fit: %v", m.Name(), err)
		}
		bp, ok := m.(BatchPredictor)
		if !ok {
			t.Fatalf("%s should implement BatchPredictor", m.Name())
		}
		got := bp.PredictProbaBatch(data.X)
		if len(got) != data.Len() {
			t.Fatalf("%s batch rows %d, want %d", m.Name(), len(got), data.Len())
		}
		for i, x := range data.X {
			want := m.PredictProba(x)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("%s row %d class %d: batch %v != serial %v",
						m.Name(), i, c, got[i][c], want[c])
				}
			}
		}
	}
}

// TestPredictProbaAllFallback covers the per-instance fallback for models
// without a batch kernel and the shared argmax helper.
func TestPredictProbaAllFallback(t *testing.T) {
	data := blobs(3, 120, 4, 2, 1.0)
	m := NewLogReg(DefaultLogRegConfig())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if _, ok := interface{}(m).(BatchPredictor); ok {
		t.Fatal("LogReg unexpectedly implements BatchPredictor; fallback path untested")
	}
	probs := PredictProbaAll(m, data.X[:10])
	classes := ArgmaxAll(probs)
	for i := range classes {
		if want := Predict(m, data.X[i]); classes[i] != want {
			t.Fatalf("row %d: class %d, want %d", i, classes[i], want)
		}
	}
	if PredictProbaAll(m, nil) != nil {
		t.Fatal("empty batch should return nil")
	}
}
