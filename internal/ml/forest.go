package ml

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// ForestConfig configures a random forest.
type ForestConfig struct {
	Trees       int   `json:"trees"`
	MaxDepth    int   `json:"maxDepth"`
	MinLeaf     int   `json:"minLeaf"`
	MaxFeatures int   `json:"maxFeatures"` // per-split feature budget; -1 = sqrt(d)
	Seed        int64 `json:"seed"`
}

// DefaultForestConfig returns the configuration used by the experiments.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 100, MaxDepth: 0, MinLeaf: 1, MaxFeatures: -1, Seed: 1}
}

// Forest is a random forest: bagged CART trees with per-split feature
// subsampling, averaged by probability. The paper's use case 1 highlights
// RF as the most poisoning-resilient model.
type Forest struct {
	Cfg ForestConfig

	Members []*Tree
	classes int

	// leafProbs caches, per member tree, the smoothed leaf distribution
	// of every node (flattened nodeIdx*classes+c). Built lazily on the
	// first batch prediction; Fit invalidates it.
	leafMu    sync.Mutex
	leafProbs [][]float64
}

var _ Classifier = (*Forest)(nil)

// NewForest constructs an untrained forest.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Cfg: cfg} }

// Name implements Classifier.
func (f *Forest) Name() string { return "rf" }

// NumClasses implements Classifier.
func (f *Forest) NumClasses() int { return f.classes }

// Fit implements Classifier. Trees are trained concurrently, each on its
// own bootstrap resample and with an independent deterministic RNG stream.
func (f *Forest) Fit(d *dataset.Table) error {
	if d.Len() == 0 {
		return fmt.Errorf("rf fit: empty dataset")
	}
	if f.Cfg.Trees <= 0 {
		return fmt.Errorf("rf fit: Trees must be positive, got %d", f.Cfg.Trees)
	}
	f.classes = d.NumClasses()
	f.Members = make([]*Tree, f.Cfg.Trees)
	f.leafMu.Lock()
	f.leafProbs = nil // invalidate any cached leaf distributions
	f.leafMu.Unlock()

	workers := runtime.NumCPU()
	if workers > f.Cfg.Trees {
		workers = f.Cfg.Trees
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				if err := f.fitOne(d, ti); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("rf tree %d: %w", ti, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for ti := 0; ti < f.Cfg.Trees; ti++ {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

func (f *Forest) fitOne(d *dataset.Table, ti int) error {
	rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(ti)*7919))
	n := d.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	tree := NewTree(TreeConfig{
		MaxDepth:    f.Cfg.MaxDepth,
		MinLeaf:     f.Cfg.MinLeaf,
		MaxFeatures: f.Cfg.MaxFeatures,
	})
	if err := tree.FitIndices(d, idx, rng); err != nil {
		return err
	}
	f.Members[ti] = tree
	return nil
}

// leafDistributions returns (building on first use) the per-tree cache
// of smoothed leaf distributions, flattened nodeIdx*classes+c. The rows
// are computed with exactly the probaFromCounts arithmetic — identical
// operands and operation order, so identical bits — and internal nodes
// keep zero rows that are never read. Fit invalidates the cache.
func (f *Forest) leafDistributions() [][]float64 {
	f.leafMu.Lock()
	defer f.leafMu.Unlock()
	if f.leafProbs != nil {
		return f.leafProbs
	}
	k := f.classes
	uniform := 1 / float64(k)
	lp := make([][]float64, len(f.Members))
	for m, t := range f.Members {
		probs := make([]float64, len(t.Nodes)*k)
		for ni := range t.Nodes {
			node := &t.Nodes[ni]
			if node.Feature >= 0 {
				continue
			}
			var total float64
			for _, c := range node.Counts {
				total += c
			}
			row := probs[ni*k : ni*k+k]
			if total == 0 {
				for c := 0; c < k; c++ {
					row[c] = uniform
				}
				continue
			}
			denom := total + float64(k)*1e-9
			counts := node.Counts[:k]
			for c := 0; c < k; c++ {
				row[c] = (counts[c] + 1e-9) / denom
			}
		}
		lp[m] = probs
	}
	f.leafProbs = lp
	return lp
}

// PredictProbaBatch implements BatchPredictor with a tree-major
// traversal: each member tree scores the whole batch before the next is
// touched, so its node slice stays cache-resident, and the cached leaf
// distribution accumulates straight into the output rows instead of
// allocating (and re-dividing) one probability slice per tree per
// instance. The accumulation order per instance matches PredictProba
// (member order), so results are bit-identical to the per-instance path.
func (f *Forest) PredictProbaBatch(X [][]float64) [][]float64 {
	if len(f.Members) == 0 {
		panic(ErrNotTrained)
	}
	k := f.classes
	out := probaRows(len(X), k)
	// Reslice hints: pin the lengths the allocation sites guarantee so
	// the row and member indexing below is provably in bounds.
	out = out[:len(X)]
	leaves := f.leafDistributions()
	leaves = leaves[:len(f.Members)]
	for m, t := range f.Members {
		nodes := t.Nodes
		if len(nodes) == 0 {
			panic(ErrNotTrained)
		}
		probs := leaves[m]
		for i, x := range X {
			ni := 0
			nd := &nodes[0]
			for nd.Feature >= 0 {
				if x[nd.Feature] <= nd.Threshold {
					ni = nd.Left
				} else {
					ni = nd.Right
				}
				nd = &nodes[ni]
			}
			row := out[i][:k]
			leaf := probs[ni*k : ni*k+k]
			for c := 0; c < k; c++ {
				row[c] += leaf[c]
			}
		}
	}
	inv := 1 / float64(len(f.Members))
	for _, row := range out {
		for c := range row {
			row[c] *= inv
		}
	}
	return out
}

// PredictProba implements Classifier by averaging member probabilities.
// Like the batch path, it traverses each member tree and accumulates the
// cached leaf distribution directly, rather than calling Tree.PredictProba
// (which would allocate one probability slice per member per call). The
// leaf rows carry probaFromCounts' exact arithmetic, so results are
// bit-identical to averaging the member outputs.
func (f *Forest) PredictProba(x []float64) []float64 {
	if len(f.Members) == 0 {
		panic(ErrNotTrained)
	}
	k := f.classes
	leaves := f.leafDistributions()
	leaves = leaves[:len(f.Members)]
	//lint:ignore hotpath-alloc the result row is returned; the caller owns it
	acc := make([]float64, k)
	for m, t := range f.Members {
		nodes := t.Nodes
		if len(nodes) == 0 {
			panic(ErrNotTrained)
		}
		ni := 0
		nd := &nodes[0]
		for nd.Feature >= 0 {
			if x[nd.Feature] <= nd.Threshold {
				ni = nd.Left
			} else {
				ni = nd.Right
			}
			nd = &nodes[ni]
		}
		leaf := leaves[m][ni*k : ni*k+k]
		for c := 0; c < k; c++ {
			acc[c] += leaf[c]
		}
	}
	inv := 1 / float64(len(f.Members))
	for c := range acc {
		acc[c] *= inv
	}
	return acc
}
