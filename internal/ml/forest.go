package ml

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// ForestConfig configures a random forest.
type ForestConfig struct {
	Trees       int   `json:"trees"`
	MaxDepth    int   `json:"maxDepth"`
	MinLeaf     int   `json:"minLeaf"`
	MaxFeatures int   `json:"maxFeatures"` // per-split feature budget; -1 = sqrt(d)
	Seed        int64 `json:"seed"`
}

// DefaultForestConfig returns the configuration used by the experiments.
func DefaultForestConfig() ForestConfig {
	return ForestConfig{Trees: 100, MaxDepth: 0, MinLeaf: 1, MaxFeatures: -1, Seed: 1}
}

// Forest is a random forest: bagged CART trees with per-split feature
// subsampling, averaged by probability. The paper's use case 1 highlights
// RF as the most poisoning-resilient model.
type Forest struct {
	Cfg ForestConfig

	Members []*Tree
	classes int
}

var _ Classifier = (*Forest)(nil)

// NewForest constructs an untrained forest.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Cfg: cfg} }

// Name implements Classifier.
func (f *Forest) Name() string { return "rf" }

// NumClasses implements Classifier.
func (f *Forest) NumClasses() int { return f.classes }

// Fit implements Classifier. Trees are trained concurrently, each on its
// own bootstrap resample and with an independent deterministic RNG stream.
func (f *Forest) Fit(d *dataset.Table) error {
	if d.Len() == 0 {
		return fmt.Errorf("rf fit: empty dataset")
	}
	if f.Cfg.Trees <= 0 {
		return fmt.Errorf("rf fit: Trees must be positive, got %d", f.Cfg.Trees)
	}
	f.classes = d.NumClasses()
	f.Members = make([]*Tree, f.Cfg.Trees)

	workers := runtime.NumCPU()
	if workers > f.Cfg.Trees {
		workers = f.Cfg.Trees
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				if err := f.fitOne(d, ti); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("rf tree %d: %w", ti, err)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for ti := 0; ti < f.Cfg.Trees; ti++ {
		jobs <- ti
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

func (f *Forest) fitOne(d *dataset.Table, ti int) error {
	rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(ti)*7919))
	n := d.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	tree := NewTree(TreeConfig{
		MaxDepth:    f.Cfg.MaxDepth,
		MinLeaf:     f.Cfg.MinLeaf,
		MaxFeatures: f.Cfg.MaxFeatures,
	})
	if err := tree.FitIndices(d, idx, rng); err != nil {
		return err
	}
	f.Members[ti] = tree
	return nil
}

// PredictProba implements Classifier by averaging member probabilities.
func (f *Forest) PredictProba(x []float64) []float64 {
	if len(f.Members) == 0 {
		panic(ErrNotTrained)
	}
	acc := make([]float64, f.classes)
	for _, t := range f.Members {
		p := t.PredictProba(x)
		for i, v := range p {
			acc[i] += v
		}
	}
	inv := 1 / float64(len(f.Members))
	for i := range acc {
		acc[i] *= inv
	}
	return acc
}
