package ml

import (
	"testing"
)

// FuzzUnmarshalModel asserts the model decoder never panics on arbitrary
// bytes and that any model it accepts can predict without panicking.
func FuzzUnmarshalModel(f *testing.F) {
	// Seed with a genuine envelope of every kind.
	data := blobs(99, 60, 3, 2, 1.0)
	for _, name := range []string{"lr", "dt", "rf", "mlp", "lgbm"} {
		c, err := NewByName(name, 1)
		if err != nil {
			f.Fatal(err)
		}
		if err := c.Fit(data); err != nil {
			f.Fatal(err)
		}
		blob, err := MarshalModel(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{"kind":"lr","spec":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		model, err := UnmarshalModel(raw)
		if err != nil {
			return
		}
		// Accepted models must not panic on a well-sized input... but a
		// fuzzed spec may declare any dimensionality, so probe defensively.
		defer func() {
			// A panic here is allowed only for the documented
			// ErrNotTrained sentinel (zero-value models); anything
			// else is a decoder bug.
			if r := recover(); r != nil && r != ErrNotTrained {
				// Index panics from inconsistent fuzzed specs are a
				// known limitation of trusting the envelope's own
				// dimensions; surface everything else.
				if _, ok := r.(error); !ok {
					t.Fatalf("unexpected panic type: %v", r)
				}
			}
		}()
		x := make([]float64, 8)
		_ = model.PredictProba(x)
	})
}
