package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// GBDTGrowth selects how boosted trees are grown.
type GBDTGrowth int

const (
	// GrowLevelWise grows every node at a depth before descending —
	// the classic XGBoost strategy (exact greedy splits).
	GrowLevelWise GBDTGrowth = iota + 1
	// GrowLeafWise always splits the highest-gain leaf next — the
	// LightGBM strategy (histogram splits).
	GrowLeafWise
)

// GBDTConfig configures gradient-boosted decision trees with softmax
// (multi-class) objective and second-order leaf values.
type GBDTConfig struct {
	Rounds         int        `json:"rounds"`
	LearningRate   float64    `json:"learningRate"`
	MaxDepth       int        `json:"maxDepth"`  // level-wise depth limit
	MaxLeaves      int        `json:"maxLeaves"` // leaf-wise leaf budget
	MinChildWeight float64    `json:"minChildWeight"`
	Lambda         float64    `json:"lambda"` // L2 on leaf values
	Growth         GBDTGrowth `json:"growth"`
	MaxBins        int        `json:"maxBins"` // histogram bins (leaf-wise)
	Seed           int64      `json:"seed"`
	name           string
}

// DefaultLightGBMConfig returns the leaf-wise histogram configuration that
// stands in for LightGBM.
func DefaultLightGBMConfig() GBDTConfig {
	return GBDTConfig{
		Rounds: 60, LearningRate: 0.1, MaxLeaves: 31, MaxDepth: 0,
		MinChildWeight: 1e-3, Lambda: 1.0, Growth: GrowLeafWise, MaxBins: 64,
		Seed: 1, name: "lgbm",
	}
}

// DefaultXGBoostConfig returns the level-wise exact configuration that
// stands in for XGBoost. The tuning is deliberately aggressive (high
// learning rate, deep trees, minimal regularization — a common way XGBoost
// is run in practice), which reproduces the brittleness under transferred
// adversarial samples the paper measures for its XGBoost model.
func DefaultXGBoostConfig() GBDTConfig {
	return GBDTConfig{
		Rounds: 150, LearningRate: 0.4, MaxDepth: 9,
		MinChildWeight: 1e-4, Lambda: 0.001, Growth: GrowLevelWise,
		Seed: 1, name: "xgb",
	}
}

// GBDT is the boosted-tree classifier.
type GBDT struct {
	Cfg GBDTConfig

	// TreesPerClass[k] holds one regression tree per boosting round for
	// class k.
	TreesPerClass [][]*gbTree
	Base          []float64 // per-class prior log-odds
	classes       int
}

var _ Classifier = (*GBDT)(nil)

// NewGBDT constructs an untrained boosted-tree model.
func NewGBDT(cfg GBDTConfig) *GBDT {
	if cfg.name == "" {
		if cfg.Growth == GrowLeafWise {
			cfg.name = "lgbm"
		} else {
			cfg.name = "xgb"
		}
	}
	return &GBDT{Cfg: cfg}
}

// Name implements Classifier.
func (g *GBDT) Name() string { return g.Cfg.name }

// NumClasses implements Classifier.
func (g *GBDT) NumClasses() int { return g.classes }

// gbNode is a node of a boosted regression tree. Leaves have Feature -1.
type gbNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Left      int     `json:"l"`
	Right     int     `json:"r"`
	Value     float64 `json:"v"`
}

// gbTree is a regression tree over raw scores.
type gbTree struct {
	Nodes []gbNode `json:"nodes"`
}

func (t *gbTree) predict(x []float64) float64 {
	n := &t.Nodes[0]
	for n.Feature >= 0 {
		if x[n.Feature] <= n.Threshold {
			n = &t.Nodes[n.Left]
		} else {
			n = &t.Nodes[n.Right]
		}
	}
	return n.Value
}

// Fit implements Classifier.
func (g *GBDT) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("%s fit: empty dataset", g.Name())
	}
	if g.Cfg.Rounds <= 0 || g.Cfg.LearningRate <= 0 {
		return fmt.Errorf("%s fit: invalid config %+v", g.Name(), g.Cfg)
	}
	if g.Cfg.Growth == GrowLeafWise && g.Cfg.MaxLeaves < 2 {
		return fmt.Errorf("%s fit: MaxLeaves must be >= 2", g.Name())
	}
	if g.Cfg.Growth == GrowLevelWise && g.Cfg.MaxDepth < 1 {
		return fmt.Errorf("%s fit: MaxDepth must be >= 1", g.Name())
	}
	n, k := t.Len(), t.NumClasses()
	g.classes = k
	g.TreesPerClass = make([][]*gbTree, k)

	// Prior log-odds as base scores.
	g.Base = make([]float64, k)
	counts := t.ClassCounts()
	for c := 0; c < k; c++ {
		p := (float64(counts[c]) + 1) / float64(n+k)
		g.Base[c] = math.Log(p)
	}

	// Raw scores F[k][i].
	scores := make([][]float64, k)
	for c := 0; c < k; c++ {
		scores[c] = make([]float64, n)
		for i := range scores[c] {
			scores[c][i] = g.Base[c]
		}
	}

	b := newGBBuilder(g.Cfg, t)
	probs := make([]float64, k)
	logits := make([]float64, k)
	grad := make([]float64, n)
	hess := make([]float64, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}

	for round := 0; round < g.Cfg.Rounds; round++ {
		for c := 0; c < k; c++ {
			for i := 0; i < n; i++ {
				for cc := 0; cc < k; cc++ {
					logits[cc] = scores[cc][i]
				}
				mat.Softmax(logits, probs)
				p := probs[c]
				grad[i] = p
				if t.Y[i] == c {
					grad[i] -= 1
				}
				hess[i] = math.Max(p*(1-p), 1e-9)
			}
			tree := b.build(grad, hess, all)
			g.TreesPerClass[c] = append(g.TreesPerClass[c], tree)
			for i := 0; i < n; i++ {
				scores[c][i] += g.Cfg.LearningRate * tree.predict(t.X[i])
			}
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (g *GBDT) PredictProba(x []float64) []float64 {
	if g.TreesPerClass == nil {
		panic(ErrNotTrained)
	}
	k := g.classes
	// Reslice hints: pin the per-class slices to the class count so the
	// indexing below is provably in bounds.
	bases := g.Base[:k]
	trees := g.TreesPerClass[:k]
	logits := make([]float64, k)
	for c := 0; c < k; c++ {
		s := bases[c]
		for _, tr := range trees[c] {
			s += g.Cfg.LearningRate * tr.predict(x)
		}
		logits[c] = s
	}
	// In-place softmax: Softmax reads each index before writing it, so
	// aliasing dst with logits is exact and saves the second allocation.
	return mat.Softmax(logits, logits)
}

// PredictProbaBatch implements BatchPredictor with a tree-major
// traversal: each boosted tree scores every instance before the next
// tree is touched, keeping its node slice cache-resident across the
// batch. The per-class logits accumulate in a flat column buffer —
// one contiguous float64 per instance — instead of scattering through
// out[i][c], which would re-load the row pointer on every touch. The
// per-(instance, class) accumulation order matches PredictProba (tree
// order within each class), so logits — and therefore the softmax
// rows — are bit-identical to the per-instance path.
func (g *GBDT) PredictProbaBatch(X [][]float64) [][]float64 {
	if g.TreesPerClass == nil {
		panic(ErrNotTrained)
	}
	k := g.classes
	bases := g.Base[:k]
	trees := g.TreesPerClass[:k]
	out, col := probaRowsScratch(len(X), k)
	out = out[:len(X)]
	col = col[:len(X)]
	lr := g.Cfg.LearningRate
	for c := 0; c < k; c++ {
		base := bases[c]
		for i := range col {
			col[i] = base
		}
		for _, tr := range trees[c] {
			nodes := tr.Nodes
			if len(nodes) == 0 {
				panic(ErrNotTrained)
			}
			for i, x := range X {
				n := &nodes[0]
				for n.Feature >= 0 {
					if x[n.Feature] <= n.Threshold {
						n = &nodes[n.Left]
					} else {
						n = &nodes[n.Right]
					}
				}
				col[i] += lr * n.Value
			}
		}
		for i := range X {
			row := out[i][:k]
			row[c] = col[i]
		}
	}
	for _, row := range out {
		mat.Softmax(row, row)
	}
	return out
}

// --- tree building ------------------------------------------------------

type gbBuilder struct {
	cfg GBDTConfig
	x   [][]float64
	dim int
	rng *rand.Rand

	// Histogram binning (leaf-wise growth only).
	binEdges [][]float64 // per feature, sorted upper edges
	binIdx   [][]uint16  // per sample, per feature bin index
}

func newGBBuilder(cfg GBDTConfig, t *dataset.Table) *gbBuilder {
	b := &gbBuilder{cfg: cfg, x: t.X, dim: t.NumFeatures(), rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Growth == GrowLeafWise {
		b.computeBins()
	}
	return b
}

// computeBins builds per-feature quantile bin edges and pre-bins every
// sample, the core of the "histogram" strategy.
func (b *gbBuilder) computeBins() {
	n := len(b.x)
	maxBins := b.cfg.MaxBins
	if maxBins < 2 {
		maxBins = 64
	}
	b.binEdges = make([][]float64, b.dim)
	vals := make([]float64, n)
	for f := 0; f < b.dim; f++ {
		for i := range b.x {
			vals[i] = b.x[i][f]
		}
		sort.Float64s(vals)
		var edges []float64
		for q := 1; q < maxBins; q++ {
			v := vals[q*n/maxBins]
			if len(edges) == 0 || v > edges[len(edges)-1] {
				edges = append(edges, v)
			}
		}
		b.binEdges[f] = edges
	}
	b.binIdx = make([][]uint16, n)
	for i := range b.x {
		row := make([]uint16, b.dim)
		for f := 0; f < b.dim; f++ {
			row[f] = uint16(sort.SearchFloat64s(b.binEdges[f], b.x[i][f]))
		}
		b.binIdx[i] = row
	}
}

// build fits one regression tree to the (grad, hess) targets over samples
// idx.
func (b *gbBuilder) build(grad, hess []float64, idx []int) *gbTree {
	t := &gbTree{}
	if b.cfg.Growth == GrowLeafWise {
		b.buildLeafWise(t, grad, hess, idx)
	} else {
		b.buildLevelWise(t, grad, hess, idx, 0)
	}
	return t
}

func (b *gbBuilder) leafValue(gSum, hSum float64) float64 {
	return -gSum / (hSum + b.cfg.Lambda)
}

func sums(grad, hess []float64, idx []int) (gSum, hSum float64) {
	for _, i := range idx {
		gSum += grad[i]
		hSum += hess[i]
	}
	return gSum, hSum
}

// splitGain is the standard second-order gain formula.
func (b *gbBuilder) splitGain(gl, hl, gr, hr float64) float64 {
	lam := b.cfg.Lambda
	return gl*gl/(hl+lam) + gr*gr/(hr+lam) - (gl+gr)*(gl+gr)/(hl+hr+lam)
}

type gbSplit struct {
	feature     int
	threshold   float64
	gain        float64
	left, right []int
}

// bestSplitExact searches every feature with a sort-and-scan pass.
func (b *gbBuilder) bestSplitExact(grad, hess []float64, idx []int) (gbSplit, bool) {
	gSum, hSum := sums(grad, hess, idx)
	best := gbSplit{gain: 1e-12}
	found := false
	sorted := make([]int, len(idx))
	for f := 0; f < b.dim; f++ {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.x[sorted[a]][f] < b.x[sorted[c]][f] })
		var gl, hl float64
		for pos := 0; pos < len(sorted)-1; pos++ {
			i := sorted[pos]
			gl += grad[i]
			hl += hess[i]
			v, next := b.x[i][f], b.x[sorted[pos+1]][f]
			//lint:ignore float-eq adjacent sorted stored values; exact equality dedups identical split candidates
			if v == next {
				continue
			}
			hr := hSum - hl
			if hl < b.cfg.MinChildWeight || hr < b.cfg.MinChildWeight {
				continue
			}
			gain := b.splitGain(gl, hl, gSum-gl, hr)
			if gain > best.gain {
				best.feature = f
				best.threshold = (v + next) / 2
				best.gain = gain
				found = true
			}
		}
	}
	if !found {
		return best, false
	}
	b.partition(&best, idx)
	return best, true
}

// bestSplitHist searches bins instead of raw values.
func (b *gbBuilder) bestSplitHist(grad, hess []float64, idx []int) (gbSplit, bool) {
	gSum, hSum := sums(grad, hess, idx)
	best := gbSplit{gain: 1e-12}
	found := false
	for f := 0; f < b.dim; f++ {
		nb := len(b.binEdges[f]) + 1
		if nb < 2 {
			continue
		}
		gh := make([][2]float64, nb)
		for _, i := range idx {
			bin := b.binIdx[i][f]
			gh[bin][0] += grad[i]
			gh[bin][1] += hess[i]
		}
		var gl, hl float64
		for bin := 0; bin < nb-1; bin++ {
			gl += gh[bin][0]
			hl += gh[bin][1]
			hr := hSum - hl
			if hl < b.cfg.MinChildWeight || hr < b.cfg.MinChildWeight {
				continue
			}
			gain := b.splitGain(gl, hl, gSum-gl, hr)
			if gain > best.gain {
				best.feature = f
				best.threshold = b.binEdges[f][bin]
				best.gain = gain
				found = true
			}
		}
	}
	if !found {
		return best, false
	}
	b.partition(&best, idx)
	return best, true
}

// partition fills the split's left/right index sets. The threshold
// convention matches gbTree.predict: x <= threshold goes left. Histogram
// thresholds are bin edges, and binIdx was computed with
// sort.SearchFloat64s so a sample in bin k has x <= edges[k] for the first
// matching edge; comparing raw values against the edge keeps the two
// consistent.
func (b *gbBuilder) partition(s *gbSplit, idx []int) {
	for _, i := range idx {
		if b.x[i][s.feature] <= s.threshold {
			s.left = append(s.left, i)
		} else {
			s.right = append(s.right, i)
		}
	}
}

func (b *gbBuilder) buildLevelWise(t *gbTree, grad, hess []float64, idx []int, depth int) int {
	gSum, hSum := sums(grad, hess, idx)
	if depth >= b.cfg.MaxDepth || len(idx) < 2 {
		return b.appendLeaf(t, gSum, hSum)
	}
	split, ok := b.bestSplitExact(grad, hess, idx)
	if !ok || len(split.left) == 0 || len(split.right) == 0 {
		return b.appendLeaf(t, gSum, hSum)
	}
	node := len(t.Nodes)
	t.Nodes = append(t.Nodes, gbNode{Feature: split.feature, Threshold: split.threshold})
	l := b.buildLevelWise(t, grad, hess, split.left, depth+1)
	r := b.buildLevelWise(t, grad, hess, split.right, depth+1)
	t.Nodes[node].Left = l
	t.Nodes[node].Right = r
	return node
}

func (b *gbBuilder) appendLeaf(t *gbTree, gSum, hSum float64) int {
	t.Nodes = append(t.Nodes, gbNode{Feature: -1, Value: b.leafValue(gSum, hSum)})
	return len(t.Nodes) - 1
}

// leafCandidate is a grown-but-unsplit leaf in the leaf-wise queue.
type leafCandidate struct {
	nodeIdx  int
	idx      []int
	split    gbSplit
	canSplit bool
}

func (b *gbBuilder) buildLeafWise(t *gbTree, grad, hess []float64, idx []int) {
	gSum, hSum := sums(grad, hess, idx)
	root := b.appendLeaf(t, gSum, hSum)
	leaves := []leafCandidate{b.newCandidate(t, grad, hess, root, idx)}
	numLeaves := 1
	for numLeaves < b.cfg.MaxLeaves {
		bestI, bestGain := -1, 1e-12
		for i, lc := range leaves {
			if lc.canSplit && lc.split.gain > bestGain {
				bestI, bestGain = i, lc.split.gain
			}
		}
		if bestI < 0 {
			break
		}
		lc := leaves[bestI]
		s := lc.split
		// Convert the leaf into an internal node.
		gl, hl := sums(grad, hess, s.left)
		gr, hr := sums(grad, hess, s.right)
		leftIdx := b.appendLeaf(t, gl, hl)
		rightIdx := b.appendLeaf(t, gr, hr)
		t.Nodes[lc.nodeIdx] = gbNode{Feature: s.feature, Threshold: s.threshold, Left: leftIdx, Right: rightIdx}

		leaves[bestI] = b.newCandidate(t, grad, hess, leftIdx, s.left)
		leaves = append(leaves, b.newCandidate(t, grad, hess, rightIdx, s.right))
		numLeaves++
	}
}

func (b *gbBuilder) newCandidate(t *gbTree, grad, hess []float64, nodeIdx int, idx []int) leafCandidate {
	lc := leafCandidate{nodeIdx: nodeIdx, idx: idx}
	if len(idx) >= 2 {
		if s, ok := b.bestSplitHist(grad, hess, idx); ok && len(s.left) > 0 && len(s.right) > 0 {
			lc.split = s
			lc.canSplit = true
		}
	}
	return lc
}
