package ml

import (
	"testing"
)

// countLeaves walks a boosted tree and returns its leaf count.
func countLeaves(tr *gbTree) int {
	leaves := 0
	for _, n := range tr.Nodes {
		if n.Feature < 0 {
			leaves++
		}
	}
	return leaves
}

// maxDepthOf returns a boosted tree's depth.
func maxDepthOf(tr *gbTree, idx int) int {
	n := tr.Nodes[idx]
	if n.Feature < 0 {
		return 0
	}
	l, r := maxDepthOf(tr, n.Left), maxDepthOf(tr, n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func TestLeafWiseTreesRespectLeafBudget(t *testing.T) {
	data := blobs(40, 300, 5, 3, 1.5)
	cfg := GBDTConfig{Rounds: 5, LearningRate: 0.2, MaxLeaves: 6, MinChildWeight: 1e-4, Lambda: 1, Growth: GrowLeafWise, MaxBins: 16, Seed: 1}
	g := NewGBDT(cfg)
	if err := g.Fit(data); err != nil {
		t.Fatal(err)
	}
	for _, class := range g.TreesPerClass {
		for _, tr := range class {
			if leaves := countLeaves(tr); leaves > 6 {
				t.Fatalf("leaf-wise tree has %d leaves, budget 6", leaves)
			}
		}
	}
}

func TestLevelWiseTreesRespectDepthLimit(t *testing.T) {
	data := blobs(41, 300, 5, 3, 1.5)
	cfg := GBDTConfig{Rounds: 5, LearningRate: 0.2, MaxDepth: 3, MinChildWeight: 1e-4, Lambda: 1, Growth: GrowLevelWise, Seed: 1}
	g := NewGBDT(cfg)
	if err := g.Fit(data); err != nil {
		t.Fatal(err)
	}
	for _, class := range g.TreesPerClass {
		for _, tr := range class {
			if d := maxDepthOf(tr, 0); d > 3 {
				t.Fatalf("level-wise tree depth %d exceeds limit 3", d)
			}
		}
	}
}

func TestGBDTTreeStructureConsistent(t *testing.T) {
	// Every internal node's children must be in range and every tree
	// must have internal+1 == leaves (binary-tree invariant).
	data := blobs(42, 200, 4, 2, 1.0)
	for _, growth := range []GBDTGrowth{GrowLeafWise, GrowLevelWise} {
		cfg := GBDTConfig{Rounds: 4, LearningRate: 0.2, MaxLeaves: 8, MaxDepth: 4, MinChildWeight: 1e-4, Lambda: 1, Growth: growth, MaxBins: 16, Seed: 1}
		g := NewGBDT(cfg)
		if err := g.Fit(data); err != nil {
			t.Fatal(err)
		}
		for _, class := range g.TreesPerClass {
			for _, tr := range class {
				internal := 0
				for _, n := range tr.Nodes {
					if n.Feature < 0 {
						continue
					}
					internal++
					if n.Left < 0 || n.Left >= len(tr.Nodes) || n.Right < 0 || n.Right >= len(tr.Nodes) {
						t.Fatalf("child index out of range: %+v", n)
					}
				}
				if leaves := countLeaves(tr); leaves != internal+1 {
					t.Fatalf("growth %d: %d internal nodes but %d leaves", growth, internal, leaves)
				}
			}
		}
	}
}

func TestGBDTConfigValidation(t *testing.T) {
	data := blobs(43, 50, 3, 2, 1.0)
	bad := GBDTConfig{Rounds: 0, LearningRate: 0.1, MaxDepth: 3, Growth: GrowLevelWise}
	if err := NewGBDT(bad).Fit(data); err == nil {
		t.Fatal("expected rounds error")
	}
	bad2 := GBDTConfig{Rounds: 5, LearningRate: 0.1, MaxLeaves: 1, Growth: GrowLeafWise}
	if err := NewGBDT(bad2).Fit(data); err == nil {
		t.Fatal("expected leaf-budget error")
	}
	bad3 := GBDTConfig{Rounds: 5, LearningRate: 0.1, MaxDepth: 0, Growth: GrowLevelWise}
	if err := NewGBDT(bad3).Fit(data); err == nil {
		t.Fatal("expected depth error")
	}
}
