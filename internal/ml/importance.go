package ml

// Feature importance for the tree-based models: impurity-decrease
// importance for CART trees and forests, and split-gain importance for the
// boosted ensembles. These are the "global" importances operators compare
// against the local SHAP/LIME attributions on the dashboard.

// FeatureImportance returns normalized Gini-importance scores (summing to
// 1 when any split exists). The tree must be trained; the caller passes
// the feature dimensionality because leaves do not record it.
func (t *Tree) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	if len(t.Nodes) == 0 {
		return imp
	}
	t.accumulateImportance(0, imp)
	normalize(imp)
	return imp
}

// accumulateImportance adds each internal node's weighted impurity
// decrease (n·g_parent − n_l·g_l − n_r·g_r) to its split feature and
// returns the subtree's class-count vector.
func (t *Tree) accumulateImportance(idx int, imp []float64) []float64 {
	node := &t.Nodes[idx]
	if node.Feature < 0 {
		out := make([]float64, len(node.Counts))
		copy(out, node.Counts)
		return out
	}
	left := t.accumulateImportance(node.Left, imp)
	right := t.accumulateImportance(node.Right, imp)
	var nl, nr float64
	for _, c := range left {
		nl += c
	}
	for _, c := range right {
		nr += c
	}
	parent := make([]float64, len(left))
	for i := range parent {
		parent[i] = left[i] + right[i]
	}
	n := nl + nr
	if node.Feature < len(imp) {
		decrease := n*gini(parent, n) - nl*gini(left, nl) - nr*gini(right, nr)
		if decrease > 0 {
			imp[node.Feature] += decrease
		}
	}
	return parent
}

// FeatureImportance returns the mean normalized importance across the
// forest's members.
func (f *Forest) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	if len(f.Members) == 0 {
		return imp
	}
	for _, tr := range f.Members {
		for j, v := range tr.FeatureImportance(numFeatures) {
			imp[j] += v
		}
	}
	normalize(imp)
	return imp
}

// FeatureImportance returns normalized split-gain importance summed over
// every tree of the boosted ensemble. Gain is approximated by split count
// weighting is not used; each split contributes the absolute value-range
// it separates, which tracks how much the split moves scores.
func (g *GBDT) FeatureImportance(numFeatures int) []float64 {
	imp := make([]float64, numFeatures)
	if g.TreesPerClass == nil {
		return imp
	}
	for _, class := range g.TreesPerClass {
		for _, tr := range class {
			for _, n := range tr.Nodes {
				if n.Feature >= 0 && n.Feature < numFeatures {
					// Split contribution: spread between child values
					// (leaf values for depth-1; deeper structure still
					// accumulates through its own splits).
					l, r := tr.Nodes[n.Left], tr.Nodes[n.Right]
					spread := l.Value - r.Value
					if spread < 0 {
						spread = -spread
					}
					imp[n.Feature] += spread + 1e-12
				}
			}
		}
	}
	normalize(imp)
	return imp
}

func normalize(x []float64) {
	var sum float64
	for _, v := range x {
		sum += v
	}
	if sum <= 0 {
		return
	}
	for i := range x {
		x[i] /= sum
	}
}
