package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// importanceTable: feature 0 is decisive, feature 1 is weak, feature 2 is
// noise.
func importanceTable(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("imp", []string{"strong", "weak", "noise"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		_ = tb.Append([]float64{
			float64(y)*4 + rng.NormFloat64()*0.5,
			float64(y)*0.6 + rng.NormFloat64(),
			rng.NormFloat64(),
		}, y)
	}
	return tb
}

func assertImportanceOrdering(t *testing.T, imp []float64, name string) {
	t.Helper()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("%s: negative importance %v", name, imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("%s: importances sum to %v", name, sum)
	}
	if imp[0] <= imp[2] {
		t.Fatalf("%s: strong feature (%.3f) should beat noise (%.3f)", name, imp[0], imp[2])
	}
	if imp[0] <= imp[1] {
		t.Fatalf("%s: strong feature (%.3f) should beat weak (%.3f)", name, imp[0], imp[1])
	}
}

func TestTreeFeatureImportance(t *testing.T) {
	data := importanceTable(1, 400)
	tr := NewTree(DefaultTreeConfig())
	if err := tr.Fit(data); err != nil {
		t.Fatal(err)
	}
	assertImportanceOrdering(t, tr.FeatureImportance(3), "tree")
}

func TestForestFeatureImportance(t *testing.T) {
	data := importanceTable(2, 400)
	f := NewForest(ForestConfig{Trees: 15, MaxFeatures: -1, MinLeaf: 1, Seed: 1})
	if err := f.Fit(data); err != nil {
		t.Fatal(err)
	}
	assertImportanceOrdering(t, f.FeatureImportance(3), "forest")
}

func TestGBDTFeatureImportance(t *testing.T) {
	data := importanceTable(3, 400)
	for _, growth := range []GBDTGrowth{GrowLeafWise, GrowLevelWise} {
		g := NewGBDT(GBDTConfig{Rounds: 15, LearningRate: 0.2, MaxLeaves: 7, MaxDepth: 3,
			MinChildWeight: 1e-3, Lambda: 1, Growth: growth, MaxBins: 32, Seed: 1})
		if err := g.Fit(data); err != nil {
			t.Fatal(err)
		}
		assertImportanceOrdering(t, g.FeatureImportance(3), "gbdt")
	}
}

func TestFeatureImportanceUntrained(t *testing.T) {
	imp := NewTree(DefaultTreeConfig()).FeatureImportance(3)
	for _, v := range imp {
		if v != 0 {
			t.Fatal("untrained tree should report zero importance")
		}
	}
	if got := NewForest(DefaultForestConfig()).FeatureImportance(2); got[0] != 0 {
		t.Fatal("untrained forest should report zero importance")
	}
	if got := NewGBDT(DefaultLightGBMConfig()).FeatureImportance(2); got[0] != 0 {
		t.Fatal("untrained gbdt should report zero importance")
	}
}
