package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// LogRegConfig configures multinomial logistic regression.
type LogRegConfig struct {
	LearningRate float64 `json:"learningRate"`
	Epochs       int     `json:"epochs"`
	BatchSize    int     `json:"batchSize"`
	L2           float64 `json:"l2"`
	Seed         int64   `json:"seed"`
	// WarmStart makes Fit continue from the current weights when the
	// model is already shaped for the dataset (used by federated local
	// training) instead of re-initializing.
	WarmStart bool `json:"warmStart,omitempty"`
}

// DefaultLogRegConfig returns the configuration used by the experiments.
func DefaultLogRegConfig() LogRegConfig {
	return LogRegConfig{LearningRate: 0.1, Epochs: 60, BatchSize: 32, L2: 1e-4, Seed: 1}
}

// LogReg is a multinomial (softmax) logistic-regression classifier trained
// with mini-batch SGD. It is the linear baseline in use case 1 and, being
// differentiable, supports FGSM via InputGradient.
type LogReg struct {
	Cfg LogRegConfig

	// W is (classes)×(features+1); the last column is the bias.
	W       *mat.Dense
	classes int
	dim     int
}

var (
	_ Classifier         = (*LogReg)(nil)
	_ GradientClassifier = (*LogReg)(nil)
)

// NewLogReg constructs an untrained model.
func NewLogReg(cfg LogRegConfig) *LogReg { return &LogReg{Cfg: cfg} }

// Name implements Classifier.
func (m *LogReg) Name() string { return "lr" }

// NumClasses implements Classifier.
func (m *LogReg) NumClasses() int { return m.classes }

// Fit implements Classifier.
func (m *LogReg) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("lr fit: empty dataset")
	}
	if m.Cfg.Epochs <= 0 || m.Cfg.LearningRate <= 0 {
		return fmt.Errorf("lr fit: invalid config %+v", m.Cfg)
	}
	warm := m.Cfg.WarmStart && m.W != nil && m.dim == t.NumFeatures() && m.classes == t.NumClasses()
	if !warm {
		if err := m.Init(t.NumFeatures(), t.NumClasses()); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed))

	batch := m.Cfg.BatchSize
	if batch <= 0 || batch > t.Len() {
		batch = t.Len()
	}
	n := t.Len()
	order := rng.Perm(n)
	logits := make([]float64, m.classes)
	probs := make([]float64, m.classes)
	grad := mat.NewDense(m.classes, m.dim+1)

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			// Zero the gradient accumulator.
			for r := 0; r < m.classes; r++ {
				row := grad.Row(r)
				for j := range row {
					row[j] = 0
				}
			}
			for _, idx := range order[start:end] {
				x := t.X[idx]
				y := t.Y[idx]
				m.logits(x, logits)
				mat.Softmax(logits, probs)
				for k := 0; k < m.classes; k++ {
					delta := probs[k]
					if k == y {
						delta -= 1
					}
					if delta == 0 {
						continue
					}
					grow := grad.Row(k)
					for j, v := range x {
						grow[j] += delta * v
					}
					grow[m.dim] += delta
				}
			}
			scale := m.Cfg.LearningRate / float64(end-start)
			for k := 0; k < m.classes; k++ {
				wrow := m.W.Row(k)
				grow := grad.Row(k)
				for j := range wrow {
					wrow[j] -= scale*grow[j] + m.Cfg.LearningRate*m.Cfg.L2*wrow[j]
				}
			}
		}
	}
	return nil
}

func (m *LogReg) logits(x, dst []float64) {
	// Reslice hints: W is classes x (dim+1) with the bias last; pinning
	// the lengths makes the hot-loop indexing provably in bounds.
	dst = dst[:m.classes]
	for k := 0; k < m.classes; k++ {
		row := m.W.Row(k)[:m.dim+1]
		s := row[m.dim] // bias
		w := row[:len(x)]
		for j, v := range x {
			s += w[j] * v
		}
		dst[k] = s
	}
}

// PredictProba implements Classifier.
func (m *LogReg) PredictProba(x []float64) []float64 {
	if m.W == nil {
		panic(ErrNotTrained)
	}
	logits := make([]float64, m.classes)
	m.logits(x, logits)
	return mat.Softmax(logits, nil)
}

// InputGradient implements GradientClassifier. For softmax regression the
// gradient of the cross-entropy at x w.r.t. x is
// sum_k (p_k - 1{k=class}) * W_k.
func (m *LogReg) InputGradient(x []float64, class int) []float64 {
	if m.W == nil {
		panic(ErrNotTrained)
	}
	p := m.PredictProba(x)
	g := make([]float64, m.dim)
	for k := 0; k < m.classes; k++ {
		delta := p[k]
		if k == class {
			delta -= 1
		}
		if delta == 0 {
			continue
		}
		row := m.W.Row(k)
		for j := range g {
			g[j] += delta * row[j]
		}
	}
	return g
}

// Loss returns the mean cross-entropy of the model on t, useful for
// convergence tests.
func (m *LogReg) Loss(t *dataset.Table) float64 {
	if m.W == nil || t.Len() == 0 {
		return math.Inf(1)
	}
	var total float64
	for i, x := range t.X {
		p := m.PredictProba(x)
		total += -math.Log(math.Max(p[t.Y[i]], 1e-15))
	}
	return total / float64(t.Len())
}
