package ml

import (
	"fmt"

	"repro/internal/dataset"
)

// Metrics bundles the evaluation measures the paper reports (accuracy,
// precision, recall and F1, macro-averaged across classes) together with
// the full confusion matrix.
type Metrics struct {
	Accuracy  float64     `json:"accuracy"`
	Precision float64     `json:"precision"` // macro-averaged
	Recall    float64     `json:"recall"`    // macro-averaged
	F1        float64     `json:"f1"`        // macro-averaged
	PerClass  []ClassStat `json:"perClass"`
	Confusion [][]int     `json:"confusion"` // [true][predicted]
	N         int         `json:"n"`
}

// ClassStat holds one-vs-rest statistics for a single class.
type ClassStat struct {
	Class     string  `json:"class"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	Support   int     `json:"support"`
}

// Evaluate scores predictions of c against the labelled table t.
func Evaluate(c Classifier, t *dataset.Table) (Metrics, error) {
	preds := PredictBatch(c, t)
	return ScorePredictions(preds, t.Y, t.ClassNames)
}

// ScorePredictions computes Metrics from parallel prediction/truth slices.
func ScorePredictions(pred, truth []int, classNames []string) (Metrics, error) {
	if len(pred) != len(truth) {
		return Metrics{}, fmt.Errorf("ml: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return Metrics{}, fmt.Errorf("ml: no samples to score")
	}
	k := len(classNames)
	conf := make([][]int, k)
	for i := range conf {
		conf[i] = make([]int, k)
	}
	correct := 0
	for i, p := range pred {
		y := truth[i]
		if p < 0 || p >= k || y < 0 || y >= k {
			return Metrics{}, fmt.Errorf("ml: class index out of range at sample %d (pred %d, truth %d)", i, p, y)
		}
		conf[y][p]++
		if p == y {
			correct++
		}
	}
	m := Metrics{
		Accuracy:  float64(correct) / float64(len(pred)),
		Confusion: conf,
		N:         len(pred),
		PerClass:  make([]ClassStat, k),
	}
	var sumP, sumR, sumF float64
	for c := 0; c < k; c++ {
		tp := conf[c][c]
		fp, fn := 0, 0
		for o := 0; o < k; o++ {
			if o == c {
				continue
			}
			fp += conf[o][c]
			fn += conf[c][o]
		}
		prec := safeDiv(float64(tp), float64(tp+fp))
		rec := safeDiv(float64(tp), float64(tp+fn))
		f1 := safeDiv(2*prec*rec, prec+rec)
		m.PerClass[c] = ClassStat{
			Class:     classNames[c],
			Precision: prec,
			Recall:    rec,
			F1:        f1,
			Support:   tp + fn,
		}
		sumP += prec
		sumR += rec
		sumF += f1
	}
	m.Precision = sumP / float64(k)
	m.Recall = sumR / float64(k)
	m.F1 = sumF / float64(k)
	return m, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// CrossValidate runs k-fold cross-validation, training a fresh model per
// fold via the factory, and returns the mean metrics across folds.
func CrossValidate(factory func() Classifier, t *dataset.Table, folds [][2][]int) (Metrics, error) {
	if len(folds) == 0 {
		return Metrics{}, fmt.Errorf("ml: no folds")
	}
	var agg Metrics
	for fi, f := range folds {
		train, test := t.Subset(f[0]), t.Subset(f[1])
		c := factory()
		if err := c.Fit(train); err != nil {
			return Metrics{}, fmt.Errorf("fold %d fit: %w", fi, err)
		}
		m, err := Evaluate(c, test)
		if err != nil {
			return Metrics{}, fmt.Errorf("fold %d eval: %w", fi, err)
		}
		agg.Accuracy += m.Accuracy
		agg.Precision += m.Precision
		agg.Recall += m.Recall
		agg.F1 += m.F1
		agg.N += m.N
	}
	n := float64(len(folds))
	agg.Accuracy /= n
	agg.Precision /= n
	agg.Recall /= n
	agg.F1 /= n
	return agg, nil
}
