package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestScorePredictionsPerfect(t *testing.T) {
	m, err := ScorePredictions([]int{0, 1, 1, 0}, []int{0, 1, 1, 0}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1 || m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("perfect metrics: %+v", m)
	}
	if m.Confusion[0][0] != 2 || m.Confusion[1][1] != 2 {
		t.Fatalf("confusion %v", m.Confusion)
	}
}

func TestScorePredictionsKnownValues(t *testing.T) {
	// truth:  a a a b b
	// pred:   a b a b a
	m, err := ScorePredictions([]int{0, 1, 0, 1, 0}, []int{0, 0, 0, 1, 1}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy-0.6) > 1e-12 {
		t.Fatalf("accuracy %v", m.Accuracy)
	}
	// class a: tp=2 fp=1 fn=1 -> P=2/3 R=2/3
	a := m.PerClass[0]
	if math.Abs(a.Precision-2.0/3) > 1e-12 || math.Abs(a.Recall-2.0/3) > 1e-12 {
		t.Fatalf("class a stats %+v", a)
	}
	// class b: tp=1 fp=1 fn=1 -> P=0.5 R=0.5
	b := m.PerClass[1]
	if math.Abs(b.Precision-0.5) > 1e-12 || math.Abs(b.Recall-0.5) > 1e-12 {
		t.Fatalf("class b stats %+v", b)
	}
	if a.Support != 3 || b.Support != 2 {
		t.Fatalf("supports %d %d", a.Support, b.Support)
	}
}

func TestScorePredictionsValidation(t *testing.T) {
	if _, err := ScorePredictions([]int{0}, []int{0, 1}, []string{"a", "b"}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := ScorePredictions(nil, nil, []string{"a"}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := ScorePredictions([]int{5}, []int{0}, []string{"a", "b"}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestScorePredictionsAbsentClassIsZero(t *testing.T) {
	// Class "c" never appears: its precision/recall must be 0, not NaN.
	m, err := ScorePredictions([]int{0, 1}, []int{0, 1}, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	c := m.PerClass[2]
	if c.Precision != 0 || c.Recall != 0 || math.IsNaN(m.F1) {
		t.Fatalf("absent class stats %+v macroF1 %v", c, m.F1)
	}
}

func TestCrossValidate(t *testing.T) {
	data := blobs(20, 150, 3, 3, 0.5)
	rng := rand.New(rand.NewSource(21))
	folds, err := data.KFold(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := CrossValidate(func() Classifier { return NewTree(DefaultTreeConfig()) }, data, folds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy < 0.9 {
		t.Fatalf("cv accuracy %.3f", m.Accuracy)
	}
	if m.N != 150 {
		t.Fatalf("cv saw %d samples", m.N)
	}
}

func TestSerializationRoundTripPreservesPredictions(t *testing.T) {
	data := blobs(22, 200, 4, 3, 1.0)
	models := []Classifier{
		NewLogReg(DefaultLogRegConfig()),
		NewTree(DefaultTreeConfig()),
		NewForest(ForestConfig{Trees: 7, MaxDepth: 8, MinLeaf: 1, MaxFeatures: -1, Seed: 2}),
		NewMLP(MLPConfig{Hidden: []int{16}, LearningRate: 0.05, Momentum: 0.9, Epochs: 15, BatchSize: 16, Seed: 2}),
		NewDNN(MLPConfig{Hidden: []int{16, 8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 15, BatchSize: 16, Seed: 2}),
		NewGBDT(GBDTConfig{Rounds: 8, LearningRate: 0.2, MaxLeaves: 7, MinChildWeight: 1e-3, Lambda: 1, Growth: GrowLeafWise, MaxBins: 16, Seed: 2}),
		NewGBDT(GBDTConfig{Rounds: 8, LearningRate: 0.2, MaxDepth: 3, MinChildWeight: 1e-3, Lambda: 1, Growth: GrowLevelWise, Seed: 2}),
	}
	for _, c := range models {
		if err := c.Fit(data); err != nil {
			t.Fatalf("%s fit: %v", c.Name(), err)
		}
		blob, err := MarshalModel(c)
		if err != nil {
			t.Fatalf("%s marshal: %v", c.Name(), err)
		}
		back, err := UnmarshalModel(blob)
		if err != nil {
			t.Fatalf("%s unmarshal: %v", c.Name(), err)
		}
		if back.Name() != c.Name() {
			t.Fatalf("name changed: %s -> %s", c.Name(), back.Name())
		}
		if back.NumClasses() != c.NumClasses() {
			t.Fatalf("%s classes changed", c.Name())
		}
		for _, x := range data.X[:25] {
			pa, pb := c.PredictProba(x), back.PredictProba(x)
			for i := range pa {
				if math.Abs(pa[i]-pb[i]) > 1e-12 {
					t.Fatalf("%s: prediction changed after round trip", c.Name())
				}
			}
		}
	}
}

func TestMarshalUntrainedErrors(t *testing.T) {
	if _, err := MarshalModel(NewTree(DefaultTreeConfig())); err == nil {
		t.Fatal("expected ErrNotTrained")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := UnmarshalModel([]byte("not json")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := UnmarshalModel([]byte(`{"kind":"nope","spec":{}}`)); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	if _, err := UnmarshalModel([]byte(`{"kind":"lr","spec":{"w":{"rows":2,"cols":2,"data":[1]}}}`)); err == nil {
		t.Fatal("expected invalid dense spec error")
	}
}

func TestUnmarshaledGradientClassifierStillDifferentiable(t *testing.T) {
	data := blobs(23, 100, 3, 2, 1.0)
	m := NewMLP(MLPConfig{Hidden: []int{8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 10, BatchSize: 16, Seed: 4})
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := back.(GradientClassifier)
	if !ok {
		t.Fatal("round-tripped MLP lost GradientClassifier")
	}
	grad := g.InputGradient(data.X[0], data.Y[0])
	if len(grad) != data.NumFeatures() {
		t.Fatalf("gradient dim %d", len(grad))
	}
	want := m.InputGradient(data.X[0], data.Y[0])
	for i := range grad {
		if math.Abs(grad[i]-want[i]) > 1e-12 {
			t.Fatal("gradient changed after round trip")
		}
	}
}

func TestDatasetValidAfterBlobGeneration(t *testing.T) {
	if err := blobs(30, 50, 3, 2, 1).Validate(); err != nil {
		t.Fatal(err)
	}
}
