// Package ml implements the machine-learning substrate of the SPATIAL
// reproduction: the classifier families used by the paper's two use cases
// (logistic regression, decision tree, random forest, MLP, deep NN, and two
// gradient-boosting variants standing in for LightGBM and XGBoost),
// together with evaluation metrics, cross-validation, and JSON model
// serialization so the micro-services can exchange trained models.
//
// All training is deterministic given a seed, CPU-only, and built purely on
// the standard library.
package ml

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// Classifier is a trained or trainable multi-class classifier.
type Classifier interface {
	// Fit trains the model on t, replacing any previous state.
	Fit(t *dataset.Table) error
	// PredictProba returns the class-probability distribution for x.
	// The returned slice is owned by the caller.
	PredictProba(x []float64) []float64
	// NumClasses reports the number of classes the model was trained on
	// (0 before training).
	NumClasses() int
	// Name returns a short algorithm identifier (e.g. "rf", "dnn").
	Name() string
}

// GradientClassifier is implemented by differentiable models that can
// expose the gradient of their training loss with respect to the input —
// the primitive FGSM needs.
type GradientClassifier interface {
	Classifier
	// InputGradient returns d loss(x, class) / d x, where loss is the
	// cross-entropy of the model's prediction against class.
	InputGradient(x []float64, class int) []float64
}

// ErrNotTrained is returned when a prediction is requested from an
// untrained model.
var ErrNotTrained = errors.New("ml: model is not trained")

// Predict returns the argmax class for x.
func Predict(c Classifier, x []float64) int {
	return mat.ArgMax(c.PredictProba(x))
}

// PredictBatch returns argmax predictions for every row of t.
func PredictBatch(c Classifier, t *dataset.Table) []int {
	out := make([]int, len(t.X))
	for i, x := range t.X {
		out[i] = Predict(c, x)
	}
	return out
}

// probaFromCounts converts per-class counts into a probability
// distribution, with Laplace smoothing to avoid hard zeros.
func probaFromCounts(counts []float64, classes int) []float64 {
	p := make([]float64, classes)
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		uniform := 1 / float64(classes)
		for i := range p {
			p[i] = uniform
		}
		return p
	}
	denom := total + float64(classes)*1e-9
	counts = counts[:classes]
	for i := range counts {
		p[i] = (counts[i] + 1e-9) / denom
	}
	return p
}
