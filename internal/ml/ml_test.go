package ml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// blobs generates an easily separable k-class Gaussian-blob dataset.
func blobs(seed int64, n, d, k int, spread float64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	feats := make([]string, d)
	for j := range feats {
		feats[j] = "f" + string(rune('0'+j%10))
	}
	classes := make([]string, k)
	centers := make([][]float64, k)
	for c := range classes {
		classes[c] = "c" + string(rune('0'+c))
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 4
		}
	}
	t := dataset.New("blobs", feats, classes)
	for i := 0; i < n; i++ {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = centers[c][j] + rng.NormFloat64()*spread
		}
		if err := t.Append(row, c); err != nil {
			panic(err)
		}
	}
	return t
}

// xorTable is a non-linearly-separable dataset that a linear model cannot
// solve but trees/MLPs can.
func xorTable(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	t := dataset.New("xor", []string{"a", "b"}, []string{"neg", "pos"})
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		_ = t.Append([]float64{a, b}, y)
	}
	return t
}

func trainEval(t *testing.T, c Classifier, data *dataset.Table) Metrics {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	train, test, err := data.StratifiedSplit(rng, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(c, test)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLogRegLearnsBlobs(t *testing.T) {
	m := trainEval(t, NewLogReg(DefaultLogRegConfig()), blobs(1, 300, 4, 3, 0.5))
	if m.Accuracy < 0.95 {
		t.Fatalf("lr blob accuracy %.3f < 0.95", m.Accuracy)
	}
}

func TestLogRegCannotSolveXOR(t *testing.T) {
	m := trainEval(t, NewLogReg(DefaultLogRegConfig()), xorTable(2, 400))
	if m.Accuracy > 0.75 {
		t.Fatalf("lr should struggle on xor, got %.3f", m.Accuracy)
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	m := trainEval(t, NewTree(DefaultTreeConfig()), xorTable(3, 500))
	if m.Accuracy < 0.9 {
		t.Fatalf("dt xor accuracy %.3f < 0.9", m.Accuracy)
	}
}

func TestForestLearnsXOR(t *testing.T) {
	cfg := DefaultForestConfig()
	cfg.Trees = 20
	m := trainEval(t, NewForest(cfg), xorTable(4, 500))
	if m.Accuracy < 0.9 {
		t.Fatalf("rf xor accuracy %.3f < 0.9", m.Accuracy)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	cfg := DefaultMLPConfig()
	cfg.Epochs = 120
	m := trainEval(t, NewMLP(cfg), xorTable(5, 600))
	if m.Accuracy < 0.9 {
		t.Fatalf("mlp xor accuracy %.3f < 0.9", m.Accuracy)
	}
}

func TestDNNLearnsBlobs(t *testing.T) {
	m := trainEval(t, NewDNN(DefaultDNNConfig()), blobs(6, 300, 6, 3, 0.7))
	if m.Accuracy < 0.95 {
		t.Fatalf("dnn blob accuracy %.3f < 0.95", m.Accuracy)
	}
}

func TestGBDTLeafWiseLearnsXOR(t *testing.T) {
	cfg := DefaultLightGBMConfig()
	cfg.Rounds = 30
	m := trainEval(t, NewGBDT(cfg), xorTable(7, 500))
	if m.Accuracy < 0.9 {
		t.Fatalf("lgbm xor accuracy %.3f < 0.9", m.Accuracy)
	}
}

func TestGBDTLevelWiseLearnsXOR(t *testing.T) {
	cfg := DefaultXGBoostConfig()
	cfg.Rounds = 30
	m := trainEval(t, NewGBDT(cfg), xorTable(8, 500))
	if m.Accuracy < 0.9 {
		t.Fatalf("xgb xor accuracy %.3f < 0.9", m.Accuracy)
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	data := blobs(9, 120, 3, 3, 0.8)
	models := []Classifier{
		NewLogReg(DefaultLogRegConfig()),
		NewTree(DefaultTreeConfig()),
		NewForest(ForestConfig{Trees: 5, MaxDepth: 6, MinLeaf: 1, MaxFeatures: -1, Seed: 1}),
		NewMLP(DefaultMLPConfig()),
		NewGBDT(GBDTConfig{Rounds: 5, LearningRate: 0.2, MaxLeaves: 7, MinChildWeight: 1e-3, Lambda: 1, Growth: GrowLeafWise, MaxBins: 16, Seed: 1}),
		NewGBDT(GBDTConfig{Rounds: 5, LearningRate: 0.2, MaxDepth: 3, MinChildWeight: 1e-3, Lambda: 1, Growth: GrowLevelWise, Seed: 1}),
	}
	for _, c := range models {
		if err := c.Fit(data); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for _, x := range data.X[:10] {
			p := c.PredictProba(x)
			if len(p) != 3 {
				t.Fatalf("%s: %d probs", c.Name(), len(p))
			}
			var sum float64
			for _, v := range p {
				if v < 0 || v > 1+1e-9 {
					t.Fatalf("%s: prob %v out of range", c.Name(), v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s: probs sum to %v", c.Name(), sum)
			}
		}
	}
}

func TestFitOnEmptyDatasetErrors(t *testing.T) {
	empty := dataset.New("e", []string{"a"}, []string{"x", "y"})
	models := []Classifier{
		NewLogReg(DefaultLogRegConfig()),
		NewTree(DefaultTreeConfig()),
		NewForest(DefaultForestConfig()),
		NewMLP(DefaultMLPConfig()),
		NewGBDT(DefaultLightGBMConfig()),
	}
	for _, c := range models {
		if err := c.Fit(empty); err == nil {
			t.Fatalf("%s: expected error on empty dataset", c.Name())
		}
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	data := blobs(10, 200, 4, 2, 1.0)
	for _, name := range []string{"lr", "dt", "rf", "mlp", "lgbm", "xgb"} {
		a, err := NewByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Fit(data); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(data); err != nil {
			t.Fatal(err)
		}
		for _, x := range data.X[:20] {
			pa, pb := a.PredictProba(x), b.PredictProba(x)
			for i := range pa {
				if math.Abs(pa[i]-pb[i]) > 1e-12 {
					t.Fatalf("%s: nondeterministic prediction %v vs %v", name, pa, pb)
				}
			}
		}
	}
}

// TestInputGradientMatchesFiniteDifference verifies the analytic FGSM
// gradient against a numerical approximation for both differentiable
// models.
func TestInputGradientMatchesFiniteDifference(t *testing.T) {
	data := blobs(11, 200, 5, 3, 1.0)
	grads := []GradientClassifier{
		NewLogReg(DefaultLogRegConfig()),
		NewMLP(MLPConfig{Hidden: []int{16, 8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 20, BatchSize: 16, Seed: 3}),
	}
	for _, g := range grads {
		if err := g.Fit(data); err != nil {
			t.Fatal(err)
		}
		x := append([]float64(nil), data.X[0]...)
		class := data.Y[0]
		analytic := g.InputGradient(x, class)
		const h = 1e-5
		for j := range x {
			loss := func(v float64) float64 {
				old := x[j]
				x[j] = v
				p := g.PredictProba(x)
				x[j] = old
				return -math.Log(math.Max(p[class], 1e-15))
			}
			num := (loss(x[j]+h) - loss(x[j]-h)) / (2 * h)
			if math.Abs(num-analytic[j]) > 1e-3*(1+math.Abs(num)) {
				t.Fatalf("%s: gradient mismatch at %d: analytic %v numeric %v", g.Name(), j, analytic[j], num)
			}
		}
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic predicting with untrained model")
		}
	}()
	NewTree(DefaultTreeConfig()).PredictProba([]float64{1})
}

func TestTreeDepthRespectsLimit(t *testing.T) {
	cfg := DefaultTreeConfig()
	cfg.MaxDepth = 3
	tr := NewTree(cfg)
	if err := tr.Fit(blobs(12, 300, 4, 4, 2.0)); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Fatalf("tree depth %d exceeds limit 3", d)
	}
}

func TestForestRejectsZeroTrees(t *testing.T) {
	f := NewForest(ForestConfig{Trees: 0})
	if err := f.Fit(blobs(13, 50, 2, 2, 1)); err == nil {
		t.Fatal("expected config error")
	}
}

func TestNewByNameUnknown(t *testing.T) {
	if _, err := NewByName("svm", 1); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLogRegLossDecreases(t *testing.T) {
	data := blobs(14, 200, 3, 2, 1.0)
	short := NewLogReg(LogRegConfig{LearningRate: 0.1, Epochs: 1, BatchSize: 32, Seed: 1})
	long := NewLogReg(LogRegConfig{LearningRate: 0.1, Epochs: 50, BatchSize: 32, Seed: 1})
	if err := short.Fit(data); err != nil {
		t.Fatal(err)
	}
	if err := long.Fit(data); err != nil {
		t.Fatal(err)
	}
	if long.Loss(data) >= short.Loss(data) {
		t.Fatalf("loss did not decrease with training: %v vs %v", long.Loss(data), short.Loss(data))
	}
}
