package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
)

// MLPConfig configures a feed-forward neural network with ReLU hidden
// layers and a softmax output, trained by mini-batch SGD with momentum.
// The paper's "MLP" uses one hidden layer and its "DNN" a deeper stack;
// both are instances of this type (see NewMLP and NewDNN).
type MLPConfig struct {
	Hidden       []int   `json:"hidden"`
	LearningRate float64 `json:"learningRate"`
	Momentum     float64 `json:"momentum"`
	Epochs       int     `json:"epochs"`
	BatchSize    int     `json:"batchSize"`
	L2           float64 `json:"l2"`
	Seed         int64   `json:"seed"`
	// WarmStart makes Fit continue from the current parameters when the
	// model is already shaped for the dataset (used by federated local
	// training) instead of re-initializing.
	WarmStart bool `json:"warmStart,omitempty"`
	// name distinguishes "mlp" from "dnn" in reports.
	name string
}

// DefaultMLPConfig returns the single-hidden-layer configuration ("MLP").
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: []int{128, 64}, LearningRate: 0.05, Momentum: 0.9, Epochs: 100, BatchSize: 32, L2: 1e-5, Seed: 1, name: "mlp"}
}

// DefaultDNNConfig returns the deeper configuration ("DNN").
func DefaultDNNConfig() MLPConfig {
	return MLPConfig{Hidden: []int{128, 64, 32}, LearningRate: 0.03, Momentum: 0.9, Epochs: 50, BatchSize: 32, L2: 1e-5, Seed: 1, name: "dnn"}
}

// leakySlope is the negative-side slope of the leaky-ReLU hidden
// activation. A small positive slope keeps gradients flowing through
// inactive units, preventing the dying-ReLU collapse that a pure ReLU
// network can hit with unlucky initialization.
const leakySlope = 0.01

// maxGradNorm bounds the per-batch mean gradient norm. SGD with momentum
// on unnormalized inputs can otherwise blow past the loss basin and
// diverge to NaN; clipping is the standard stabilizer.
const maxGradNorm = 5.0

// MLP is the feed-forward network. Weights[l] is (out×in), Biases[l] has
// length out, for each layer l.
type MLP struct {
	Cfg MLPConfig

	Weights []*mat.Dense
	Biases  [][]float64
	sizes   []int // layer widths including input and output
	classes int
}

var (
	_ Classifier         = (*MLP)(nil)
	_ GradientClassifier = (*MLP)(nil)
)

// NewMLP constructs an untrained network; cfg.Hidden must be non-empty.
func NewMLP(cfg MLPConfig) *MLP {
	if cfg.name == "" {
		cfg.name = "mlp"
	}
	return &MLP{Cfg: cfg}
}

// NewDNN constructs the deep variant with its own display name.
func NewDNN(cfg MLPConfig) *MLP {
	cfg.name = "dnn"
	return &MLP{Cfg: cfg}
}

// Name implements Classifier.
func (m *MLP) Name() string { return m.Cfg.name }

// NumClasses implements Classifier.
func (m *MLP) NumClasses() int { return m.classes }

// Fit implements Classifier.
func (m *MLP) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("%s fit: empty dataset", m.Name())
	}
	if len(m.Cfg.Hidden) == 0 {
		return fmt.Errorf("%s fit: no hidden layers configured", m.Name())
	}
	if m.Cfg.Epochs <= 0 || m.Cfg.LearningRate <= 0 {
		return fmt.Errorf("%s fit: invalid config %+v", m.Name(), m.Cfg)
	}
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	warm := m.Cfg.WarmStart && len(m.Weights) > 0 &&
		len(m.sizes) > 0 && m.sizes[0] == t.NumFeatures() && m.classes == t.NumClasses()
	if !warm {
		if err := m.Init(t.NumFeatures(), t.NumClasses()); err != nil {
			return err
		}
	}
	layers := len(m.sizes) - 1

	vW := make([]*mat.Dense, layers)
	vB := make([][]float64, layers)
	gW := make([]*mat.Dense, layers)
	gB := make([][]float64, layers)
	for l := 0; l < layers; l++ {
		vW[l] = mat.NewDense(m.sizes[l+1], m.sizes[l])
		gW[l] = mat.NewDense(m.sizes[l+1], m.sizes[l])
		vB[l] = make([]float64, m.sizes[l+1])
		gB[l] = make([]float64, m.sizes[l+1])
	}

	batch := m.Cfg.BatchSize
	if batch <= 0 || batch > t.Len() {
		batch = t.Len()
	}
	n := t.Len()
	order := rng.Perm(n)
	acts := m.newActivations()
	deltas := m.newDeltas()

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			for l := 0; l < layers; l++ {
				for r := 0; r < m.sizes[l+1]; r++ {
					zero(gW[l].Row(r))
				}
				zero(gB[l])
			}
			for _, idx := range order[start:end] {
				m.forward(t.X[idx], acts)
				m.backward(t.X[idx], t.Y[idx], acts, deltas, gW, gB)
			}
			// Global-norm clip of the mean batch gradient.
			var gnorm2 float64
			for l := 0; l < layers; l++ {
				for r := 0; r < m.sizes[l+1]; r++ {
					for _, v := range gW[l].Row(r) {
						gnorm2 += v * v
					}
				}
				for _, v := range gB[l] {
					gnorm2 += v * v
				}
			}
			bs := float64(end - start)
			clip := 1.0
			if gnorm := math.Sqrt(gnorm2) / bs; gnorm > maxGradNorm {
				clip = maxGradNorm / gnorm
			}
			lr := m.Cfg.LearningRate * clip / bs
			for l := 0; l < layers; l++ {
				for r := 0; r < m.sizes[l+1]; r++ {
					wrow := m.Weights[l].Row(r)
					grow := gW[l].Row(r)
					vrow := vW[l].Row(r)
					for c := range wrow {
						vrow[c] = m.Cfg.Momentum*vrow[c] - lr*grow[c] - m.Cfg.LearningRate*m.Cfg.L2*wrow[c]
						wrow[c] += vrow[c]
					}
					vB[l][r] = m.Cfg.Momentum*vB[l][r] - lr*gB[l][r]
					m.Biases[l][r] += vB[l][r]
				}
			}
		}
	}
	return nil
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// newActivations allocates per-layer activation buffers (index 0 unused;
// acts[l] is the output of layer l-1 for l >= 1).
func (m *MLP) newActivations() [][]float64 {
	acts := make([][]float64, len(m.sizes))
	for l := 1; l < len(m.sizes); l++ {
		acts[l] = make([]float64, m.sizes[l])
	}
	return acts
}

func (m *MLP) newDeltas() [][]float64 {
	deltas := make([][]float64, len(m.sizes))
	for l := 1; l < len(m.sizes); l++ {
		deltas[l] = make([]float64, m.sizes[l])
	}
	return deltas
}

// forward runs the network, filling acts; the final layer holds softmax
// probabilities.
func (m *MLP) forward(x []float64, acts [][]float64) {
	in := x
	last := len(m.Weights) - 1
	// Reslice hints restating the validated geometry (len(acts) ==
	// len(Weights)+1, one bias row per weight layer, len(out) ==
	// w.Rows()): the layer bias is read through a flat row instead of a
	// per-neuron double index, and the indexing is provably in bounds.
	acts = acts[:len(m.Weights)+1]
	biases := m.Biases[:len(m.Weights)]
	for l, w := range m.Weights {
		out := acts[l+1]
		bias := biases[l][:len(out)]
		for r := range out {
			s := bias[r]
			row := w.Row(r)[:len(in)]
			for c, v := range in {
				s += row[c] * v
			}
			if l < last && s < 0 {
				s *= leakySlope // leaky ReLU avoids dead networks
			}
			out[r] = s
		}
		in = out
	}
	mat.Softmax(acts[len(acts)-1], acts[len(acts)-1])
}

// backward accumulates gradients for one sample into gW/gB. acts must hold
// the forward pass of x.
func (m *MLP) backward(x []float64, y int, acts, deltas [][]float64, gW []*mat.Dense, gB [][]float64) {
	L := len(m.Weights)
	// Output delta: softmax + cross-entropy gives p - onehot.
	out := acts[L]
	dOut := deltas[L]
	copy(dOut, out)
	dOut[y] -= 1

	for l := L - 1; l >= 0; l-- {
		inAct := x
		if l > 0 {
			inAct = acts[l]
		}
		d := deltas[l+1]
		for r := 0; r < m.sizes[l+1]; r++ {
			dr := d[r]
			if dr == 0 {
				continue
			}
			grow := gW[l].Row(r)
			for c, v := range inAct {
				grow[c] += dr * v
			}
			gB[l][r] += dr
		}
		if l > 0 {
			prev := deltas[l]
			zero(prev)
			w := m.Weights[l]
			for r := 0; r < m.sizes[l+1]; r++ {
				dr := d[r]
				if dr == 0 {
					continue
				}
				row := w.Row(r)
				for c := range prev {
					prev[c] += dr * row[c]
				}
			}
			// Leaky-ReLU derivative of the hidden activation.
			for c := range prev {
				if acts[l][c] < 0 {
					prev[c] *= leakySlope
				}
			}
		}
	}
}

// PredictProba implements Classifier.
func (m *MLP) PredictProba(x []float64) []float64 {
	if len(m.Weights) == 0 {
		panic(ErrNotTrained)
	}
	acts := m.newActivations()
	m.forward(x, acts)
	return mat.CloneVec(acts[len(acts)-1])
}

// InputGradient implements GradientClassifier: the cross-entropy gradient
// back-propagated all the way to the input vector.
func (m *MLP) InputGradient(x []float64, class int) []float64 {
	if len(m.Weights) == 0 {
		panic(ErrNotTrained)
	}
	acts := m.newActivations()
	deltas := m.newDeltas()
	m.forward(x, acts)

	L := len(m.Weights)
	dOut := deltas[L]
	copy(dOut, acts[L])
	dOut[class] -= 1

	for l := L - 1; l >= 1; l-- {
		d := deltas[l+1]
		prev := deltas[l]
		zero(prev)
		w := m.Weights[l]
		for r := 0; r < m.sizes[l+1]; r++ {
			dr := d[r]
			if dr == 0 {
				continue
			}
			row := w.Row(r)
			for c := range prev {
				prev[c] += dr * row[c]
			}
		}
		for c := range prev {
			if acts[l][c] < 0 {
				prev[c] *= leakySlope
			}
		}
	}
	// Final hop to the input.
	g := make([]float64, m.sizes[0])
	d := deltas[1]
	w := m.Weights[0]
	for r := 0; r < m.sizes[1]; r++ {
		dr := d[r]
		if dr == 0 {
			continue
		}
		row := w.Row(r)
		for c := range g {
			g[c] += dr * row[c]
		}
	}
	return g
}

// Loss returns the mean cross-entropy on t.
func (m *MLP) Loss(t *dataset.Table) float64 {
	if len(m.Weights) == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	var total float64
	for i, x := range t.X {
		p := m.PredictProba(x)
		total += -math.Log(math.Max(p[t.Y[i]], 1e-15))
	}
	return total / float64(t.Len())
}
