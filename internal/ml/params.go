package ml

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
)

// ParamClassifier is a classifier whose trainable parameters can be read
// and written as a flat vector — the primitive federated averaging needs.
// LogReg and MLP implement it.
type ParamClassifier interface {
	Classifier
	// Parameters returns a copy of the flat parameter vector.
	Parameters() []float64
	// SetParameters overwrites the parameters; the model must already
	// be shaped (via Init or Fit) and the length must match.
	SetParameters(p []float64) error
	// Init shapes the model for the given input dimension and class
	// count with fresh random parameters, without training.
	Init(inputDim, classes int) error
}

var (
	_ ParamClassifier = (*LogReg)(nil)
	_ ParamClassifier = (*MLP)(nil)
)

// Init implements ParamClassifier: a zero-initialized weight matrix.
func (m *LogReg) Init(inputDim, classes int) error {
	if inputDim <= 0 || classes < 2 {
		return fmt.Errorf("lr init: invalid shape %dx%d", inputDim, classes)
	}
	m.dim = inputDim
	m.classes = classes
	m.W = mat.NewDense(classes, inputDim+1)
	return nil
}

// Parameters implements ParamClassifier.
func (m *LogReg) Parameters() []float64 {
	if m.W == nil {
		return nil
	}
	out := make([]float64, 0, m.classes*(m.dim+1))
	for r := 0; r < m.classes; r++ {
		out = append(out, m.W.Row(r)...)
	}
	return out
}

// SetParameters implements ParamClassifier.
func (m *LogReg) SetParameters(p []float64) error {
	if m.W == nil {
		return fmt.Errorf("lr: SetParameters before Init/Fit")
	}
	want := m.classes * (m.dim + 1)
	if len(p) != want {
		return fmt.Errorf("lr: parameter length %d != %d", len(p), want)
	}
	for r := 0; r < m.classes; r++ {
		copy(m.W.Row(r), p[r*(m.dim+1):(r+1)*(m.dim+1)])
	}
	return nil
}

// Init implements ParamClassifier: He-initialized layers for the
// configured hidden sizes.
func (m *MLP) Init(inputDim, classes int) error {
	if inputDim <= 0 || classes < 2 {
		return fmt.Errorf("%s init: invalid shape %dx%d", m.Name(), inputDim, classes)
	}
	if len(m.Cfg.Hidden) == 0 {
		return fmt.Errorf("%s init: no hidden layers configured", m.Name())
	}
	m.classes = classes
	m.sizes = append(append([]int{inputDim}, m.Cfg.Hidden...), classes)
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	layers := len(m.sizes) - 1
	m.Weights = make([]*mat.Dense, layers)
	m.Biases = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w := mat.NewDense(out, in)
		scale := math.Sqrt(2 / float64(in))
		for r := 0; r < out; r++ {
			row := w.Row(r)
			for c := range row {
				row[c] = rng.NormFloat64() * scale
			}
		}
		m.Weights[l] = w
		m.Biases[l] = make([]float64, out)
	}
	return nil
}

// Parameters implements ParamClassifier: all layer weights then all
// biases, in layer order.
func (m *MLP) Parameters() []float64 {
	if len(m.Weights) == 0 {
		return nil
	}
	var out []float64
	for _, w := range m.Weights {
		for r := 0; r < w.Rows(); r++ {
			out = append(out, w.Row(r)...)
		}
	}
	for _, b := range m.Biases {
		out = append(out, b...)
	}
	return out
}

// SetParameters implements ParamClassifier.
func (m *MLP) SetParameters(p []float64) error {
	if len(m.Weights) == 0 {
		return fmt.Errorf("%s: SetParameters before Init/Fit", m.Name())
	}
	want := 0
	for _, w := range m.Weights {
		want += w.Rows() * w.Cols()
	}
	for _, b := range m.Biases {
		want += len(b)
	}
	if len(p) != want {
		return fmt.Errorf("%s: parameter length %d != %d", m.Name(), len(p), want)
	}
	off := 0
	for _, w := range m.Weights {
		for r := 0; r < w.Rows(); r++ {
			row := w.Row(r)
			copy(row, p[off:off+len(row)])
			off += len(row)
		}
	}
	for _, b := range m.Biases {
		copy(b, p[off:off+len(b)])
		off += len(b)
	}
	return nil
}
