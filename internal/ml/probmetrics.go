package ml

import (
	"fmt"
	"math"

	"repro/internal/dataset"
)

// Probabilistic quality measures. Accuracy alone hides calibration drift —
// a model can keep its argmax while its confidence distribution shifts
// under slow poisoning — so the monitoring sensors also track proper
// scoring rules.

// LogLoss returns the mean cross-entropy of the model on t.
func LogLoss(c Classifier, t *dataset.Table) (float64, error) {
	if t.Len() == 0 {
		return 0, fmt.Errorf("ml: log loss of empty table")
	}
	var total float64
	for i, x := range t.X {
		p := c.PredictProba(x)
		if t.Y[i] >= len(p) {
			return 0, fmt.Errorf("ml: label %d outside model's %d classes", t.Y[i], len(p))
		}
		total += -math.Log(math.Max(p[t.Y[i]], 1e-15))
	}
	return total / float64(t.Len()), nil
}

// Brier returns the mean multi-class Brier score (squared distance between
// the predicted distribution and the one-hot truth), in [0, 2].
func Brier(c Classifier, t *dataset.Table) (float64, error) {
	if t.Len() == 0 {
		return 0, fmt.Errorf("ml: brier score of empty table")
	}
	var total float64
	for i, x := range t.X {
		p := c.PredictProba(x)
		if t.Y[i] >= len(p) {
			return 0, fmt.Errorf("ml: label %d outside model's %d classes", t.Y[i], len(p))
		}
		for k, pk := range p {
			target := 0.0
			if k == t.Y[i] {
				target = 1
			}
			d := pk - target
			total += d * d
		}
	}
	return total / float64(t.Len()), nil
}

// ExpectedCalibrationError bins predictions by confidence and returns the
// weighted mean |confidence − accuracy| gap across bins — the standard ECE
// with equal-width bins.
func ExpectedCalibrationError(c Classifier, t *dataset.Table, bins int) (float64, error) {
	if t.Len() == 0 {
		return 0, fmt.Errorf("ml: calibration error of empty table")
	}
	if bins < 2 {
		bins = 10
	}
	type agg struct {
		conf, correct float64
		n             int
	}
	buckets := make([]agg, bins)
	for i, x := range t.X {
		p := c.PredictProba(x)
		best, conf := 0, p[0]
		for k, v := range p {
			if v > conf {
				best, conf = k, v
			}
		}
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		buckets[b].conf += conf
		if best == t.Y[i] {
			buckets[b].correct++
		}
		buckets[b].n++
	}
	var ece float64
	n := float64(t.Len())
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		acc := b.correct / float64(b.n)
		conf := b.conf / float64(b.n)
		ece += float64(b.n) / n * math.Abs(conf-acc)
	}
	return ece, nil
}
