package ml

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

// fixedProba is a stub classifier returning one fixed distribution.
type fixedProba struct{ p []float64 }

func (f *fixedProba) Fit(*dataset.Table) error         { return nil }
func (f *fixedProba) PredictProba([]float64) []float64 { return append([]float64(nil), f.p...) }
func (f *fixedProba) NumClasses() int                  { return len(f.p) }
func (f *fixedProba) Name() string                     { return "fixed" }

func oneRowTable(t *testing.T, y int) *dataset.Table {
	t.Helper()
	tb := dataset.New("one", []string{"f"}, []string{"a", "b"})
	if err := tb.Append([]float64{0}, y); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestLogLossKnownValues(t *testing.T) {
	tb := oneRowTable(t, 0)
	m := &fixedProba{p: []float64{0.8, 0.2}}
	got, err := LogLoss(m, tb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-math.Log(0.8))) > 1e-12 {
		t.Fatalf("log loss %v", got)
	}
	empty := dataset.New("e", []string{"f"}, []string{"a"})
	if _, err := LogLoss(m, empty); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestBrierKnownValues(t *testing.T) {
	tb := oneRowTable(t, 0)
	perfect := &fixedProba{p: []float64{1, 0}}
	got, err := Brier(perfect, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("perfect brier %v", got)
	}
	worst := &fixedProba{p: []float64{0, 1}}
	got, err = Brier(worst, tb)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("worst brier %v, want 2", got)
	}
	half := &fixedProba{p: []float64{0.5, 0.5}}
	got, err = Brier(half, tb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("uniform brier %v, want 0.5", got)
	}
}

func TestECEPerfectlyCalibrated(t *testing.T) {
	// A classifier that is always 100% confident and always right has
	// zero calibration error.
	data := blobs(60, 200, 3, 2, 0.3)
	tr := NewTree(DefaultTreeConfig())
	if err := tr.Fit(data); err != nil {
		t.Fatal(err)
	}
	ece, err := ExpectedCalibrationError(tr, data, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ece > 0.05 {
		t.Fatalf("well-separated tree ECE %v", ece)
	}
}

func TestECEDetectsOverconfidence(t *testing.T) {
	// Always 100% confident in class a, but truth is 50/50 -> ECE ~0.5.
	tb := dataset.New("coin", []string{"f"}, []string{"a", "b"})
	for i := 0; i < 100; i++ {
		_ = tb.Append([]float64{0}, i%2)
	}
	m := &fixedProba{p: []float64{1, 0}}
	ece, err := ExpectedCalibrationError(m, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ece-0.5) > 1e-9 {
		t.Fatalf("overconfident ECE %v, want 0.5", ece)
	}
}

func TestPoisoningDegradesProbMetrics(t *testing.T) {
	// Proper scoring rules must get worse when the model is trained on
	// flipped labels — the calibration-drift signal the sensors watch.
	data := blobs(61, 400, 3, 2, 0.8)
	clean := NewLogReg(DefaultLogRegConfig())
	if err := clean.Fit(data); err != nil {
		t.Fatal(err)
	}
	flipped := data.Clone()
	rngFlip(flipped, 0.4)
	dirty := NewLogReg(DefaultLogRegConfig())
	if err := dirty.Fit(flipped); err != nil {
		t.Fatal(err)
	}
	cleanLL, err := LogLoss(clean, data)
	if err != nil {
		t.Fatal(err)
	}
	dirtyLL, err := LogLoss(dirty, data)
	if err != nil {
		t.Fatal(err)
	}
	if dirtyLL <= cleanLL {
		t.Fatalf("log loss did not degrade: %v -> %v", cleanLL, dirtyLL)
	}
}

// rngFlip deterministically flips a fraction of binary labels.
func rngFlip(t *dataset.Table, rate float64) {
	n := int(rate * float64(t.Len()))
	for i := 0; i < n; i++ {
		t.Y[i] = 1 - t.Y[i]
	}
}
