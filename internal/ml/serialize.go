package ml

import (
	"encoding/json"
	"fmt"

	"repro/internal/mat"
)

// Envelope is the wire format for a trained model: a kind tag plus a
// kind-specific spec. The metric micro-services exchange models in this
// format so an explainer can score any model the ML-pipeline service
// trained.
type Envelope struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

type denseSpec struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

func toDenseSpec(m *mat.Dense) denseSpec {
	data := make([]float64, 0, m.Rows()*m.Cols())
	for i := 0; i < m.Rows(); i++ {
		data = append(data, m.Row(i)...)
	}
	return denseSpec{Rows: m.Rows(), Cols: m.Cols(), Data: data}
}

func (s denseSpec) toDense() (*mat.Dense, error) {
	if s.Rows <= 0 || s.Cols <= 0 || len(s.Data) != s.Rows*s.Cols {
		return nil, fmt.Errorf("ml: invalid dense spec %dx%d with %d values", s.Rows, s.Cols, len(s.Data))
	}
	return mat.NewDenseData(s.Rows, s.Cols, s.Data), nil
}

type logRegSpec struct {
	Cfg     LogRegConfig `json:"cfg"`
	W       denseSpec    `json:"w"`
	Classes int          `json:"classes"`
	Dim     int          `json:"dim"`
}

type treeSpec struct {
	Cfg     TreeConfig `json:"cfg"`
	Nodes   []treeNode `json:"nodes"`
	Classes int        `json:"classes"`
}

type forestSpec struct {
	Cfg     ForestConfig `json:"cfg"`
	Members []treeSpec   `json:"members"`
	Classes int          `json:"classes"`
}

type mlpSpec struct {
	Cfg     MLPConfig   `json:"cfg"`
	Name    string      `json:"name"`
	Weights []denseSpec `json:"weights"`
	Biases  [][]float64 `json:"biases"`
	Sizes   []int       `json:"sizes"`
	Classes int         `json:"classes"`
}

type gbdtSpec struct {
	Cfg           GBDTConfig  `json:"cfg"`
	Name          string      `json:"name"`
	Base          []float64   `json:"base"`
	TreesPerClass [][]*gbTree `json:"treesPerClass"`
	Classes       int         `json:"classes"`
}

// MarshalModel serializes a trained classifier.
func MarshalModel(c Classifier) ([]byte, error) {
	var (
		kind string
		spec any
	)
	switch m := c.(type) {
	case *LogReg:
		if m.W == nil {
			return nil, ErrNotTrained
		}
		kind = "lr"
		spec = logRegSpec{Cfg: m.Cfg, W: toDenseSpec(m.W), Classes: m.classes, Dim: m.dim}
	case *Tree:
		if len(m.Nodes) == 0 {
			return nil, ErrNotTrained
		}
		kind = "dt"
		spec = treeSpec{Cfg: m.Cfg, Nodes: m.Nodes, Classes: m.classes}
	case *Forest:
		if len(m.Members) == 0 {
			return nil, ErrNotTrained
		}
		kind = "rf"
		fs := forestSpec{Cfg: m.Cfg, Classes: m.classes, Members: make([]treeSpec, len(m.Members))}
		for i, tr := range m.Members {
			fs.Members[i] = treeSpec{Cfg: tr.Cfg, Nodes: tr.Nodes, Classes: tr.classes}
		}
		spec = fs
	case *MLP:
		if len(m.Weights) == 0 {
			return nil, ErrNotTrained
		}
		kind = "mlp"
		ms := mlpSpec{Cfg: m.Cfg, Name: m.Name(), Biases: m.Biases, Sizes: m.sizes, Classes: m.classes}
		for _, w := range m.Weights {
			ms.Weights = append(ms.Weights, toDenseSpec(w))
		}
		spec = ms
	case *GBDT:
		if m.TreesPerClass == nil {
			return nil, ErrNotTrained
		}
		kind = "gbdt"
		spec = gbdtSpec{Cfg: m.Cfg, Name: m.Name(), Base: m.Base, TreesPerClass: m.TreesPerClass, Classes: m.classes}
	default:
		return nil, fmt.Errorf("ml: cannot serialize model type %T", c)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("marshal %s spec: %w", kind, err)
	}
	return json.Marshal(Envelope{Kind: kind, Spec: raw})
}

// UnmarshalModel reconstructs a classifier serialized by MarshalModel.
func UnmarshalModel(data []byte) (Classifier, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("unmarshal model envelope: %w", err)
	}
	switch env.Kind {
	case "lr":
		var s logRegSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("unmarshal lr spec: %w", err)
		}
		w, err := s.W.toDense()
		if err != nil {
			return nil, err
		}
		if err := validateLogRegSpec(w, s.Classes, s.Dim); err != nil {
			return nil, err
		}
		return &LogReg{Cfg: s.Cfg, W: w, classes: s.Classes, dim: s.Dim}, nil
	case "dt":
		var s treeSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("unmarshal dt spec: %w", err)
		}
		if err := validateTreeNodes(s.Nodes, s.Classes); err != nil {
			return nil, err
		}
		return &Tree{Cfg: s.Cfg, Nodes: s.Nodes, classes: s.Classes}, nil
	case "rf":
		var s forestSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("unmarshal rf spec: %w", err)
		}
		f := &Forest{Cfg: s.Cfg, classes: s.Classes}
		if len(s.Members) == 0 {
			return nil, fmt.Errorf("ml: rf spec has no member trees")
		}
		for mi, ts := range s.Members {
			if ts.Classes != s.Classes {
				return nil, fmt.Errorf("ml: rf member %d has %d classes, forest %d", mi, ts.Classes, s.Classes)
			}
			if err := validateTreeNodes(ts.Nodes, ts.Classes); err != nil {
				return nil, fmt.Errorf("rf member %d: %w", mi, err)
			}
			f.Members = append(f.Members, &Tree{Cfg: ts.Cfg, Nodes: ts.Nodes, classes: ts.Classes})
		}
		return f, nil
	case "mlp":
		var s mlpSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("unmarshal mlp spec: %w", err)
		}
		s.Cfg.name = s.Name
		m := &MLP{Cfg: s.Cfg, Biases: s.Biases, sizes: s.Sizes, classes: s.Classes}
		for _, ws := range s.Weights {
			w, err := ws.toDense()
			if err != nil {
				return nil, err
			}
			m.Weights = append(m.Weights, w)
		}
		if err := validateMLPSpec(m.Weights, m.Biases, m.sizes, m.classes); err != nil {
			return nil, err
		}
		return m, nil
	case "gbdt":
		var s gbdtSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, fmt.Errorf("unmarshal gbdt spec: %w", err)
		}
		s.Cfg.name = s.Name
		if err := validateGBDTSpec(&s); err != nil {
			return nil, err
		}
		return &GBDT{Cfg: s.Cfg, Base: s.Base, TreesPerClass: s.TreesPerClass, classes: s.Classes}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}

// NewByName constructs an untrained classifier from an algorithm name with
// default experiment configuration. Recognized names: lr, dt, rf, mlp,
// dnn, lgbm, xgb, nn (alias for mlp, the name use case 2 reports).
func NewByName(name string, seed int64) (Classifier, error) {
	switch name {
	case "lr":
		cfg := DefaultLogRegConfig()
		cfg.Seed = seed
		return NewLogReg(cfg), nil
	case "dt":
		cfg := DefaultTreeConfig()
		cfg.Seed = seed
		return NewTree(cfg), nil
	case "rf":
		cfg := DefaultForestConfig()
		cfg.Seed = seed
		return NewForest(cfg), nil
	case "mlp", "nn":
		cfg := DefaultMLPConfig()
		cfg.Seed = seed
		return NewMLP(cfg), nil
	case "dnn":
		cfg := DefaultDNNConfig()
		cfg.Seed = seed
		return NewDNN(cfg), nil
	case "lgbm":
		cfg := DefaultLightGBMConfig()
		cfg.Seed = seed
		return NewGBDT(cfg), nil
	case "xgb":
		cfg := DefaultXGBoostConfig()
		cfg.Seed = seed
		return NewGBDT(cfg), nil
	default:
		return nil, fmt.Errorf("ml: unknown algorithm %q", name)
	}
}
