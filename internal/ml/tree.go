package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// TreeConfig configures a CART decision tree.
type TreeConfig struct {
	MaxDepth    int   `json:"maxDepth"`    // 0 means unlimited
	MinLeaf     int   `json:"minLeaf"`     // minimum samples per leaf
	MaxFeatures int   `json:"maxFeatures"` // features considered per split; 0 = all, -1 = sqrt(d)
	Seed        int64 `json:"seed"`
}

// DefaultTreeConfig returns the configuration used by the experiments.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 16, MinLeaf: 2, MaxFeatures: 0, Seed: 1}
}

// treeNode is one node of a decision tree, stored in a flat slice so trees
// serialize compactly. Leaves have Feature == -1.
type treeNode struct {
	Feature   int       `json:"f"`           // -1 for leaf
	Threshold float64   `json:"t"`           // go left if x[Feature] <= Threshold
	Left      int       `json:"l"`           // child indices
	Right     int       `json:"r"`           //
	Counts    []float64 `json:"c,omitempty"` // leaf class counts
}

// Tree is a CART classification tree with Gini-impurity splits. It is the
// "DT" model of use case 1 and the building block of RandomForest.
type Tree struct {
	Cfg TreeConfig

	Nodes   []treeNode
	classes int

	rng *rand.Rand
}

var _ Classifier = (*Tree)(nil)

// NewTree constructs an untrained tree.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Cfg: cfg} }

// Name implements Classifier.
func (t *Tree) Name() string { return "dt" }

// NumClasses implements Classifier.
func (t *Tree) NumClasses() int { return t.classes }

// Fit implements Classifier.
func (t *Tree) Fit(d *dataset.Table) error {
	if d.Len() == 0 {
		return fmt.Errorf("dt fit: empty dataset")
	}
	if t.Cfg.MinLeaf < 1 {
		t.Cfg.MinLeaf = 1
	}
	t.classes = d.NumClasses()
	t.Nodes = t.Nodes[:0]
	t.rng = rand.New(rand.NewSource(t.Cfg.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.grow(d, idx, 0)
	return nil
}

// FitIndices trains the tree on the subset of d given by idx (used by the
// forest's bootstrap without copying rows).
func (t *Tree) FitIndices(d *dataset.Table, idx []int, rng *rand.Rand) error {
	if len(idx) == 0 {
		return fmt.Errorf("dt fit: empty index set")
	}
	if t.Cfg.MinLeaf < 1 {
		t.Cfg.MinLeaf = 1
	}
	t.classes = d.NumClasses()
	t.Nodes = t.Nodes[:0]
	if rng == nil {
		rng = rand.New(rand.NewSource(t.Cfg.Seed))
	}
	t.rng = rng
	t.grow(d, idx, 0)
	return nil
}

func (t *Tree) numSplitFeatures(d int) int {
	switch {
	case t.Cfg.MaxFeatures > 0 && t.Cfg.MaxFeatures < d:
		return t.Cfg.MaxFeatures
	case t.Cfg.MaxFeatures == -1:
		k := int(math.Sqrt(float64(d)))
		if k < 1 {
			k = 1
		}
		return k
	default:
		return d
	}
}

// grow recursively builds the subtree over samples idx and returns its node
// index.
func (t *Tree) grow(d *dataset.Table, idx []int, depth int) int {
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if pure <= 1 || len(idx) < 2*t.Cfg.MinLeaf || (t.Cfg.MaxDepth > 0 && depth >= t.Cfg.MaxDepth) {
		return t.leaf(counts)
	}

	feat, thr, ok := t.bestSplit(d, idx, counts)
	if !ok {
		return t.leaf(counts)
	}

	var left, right []int
	for _, i := range idx {
		if d.X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.Cfg.MinLeaf || len(right) < t.Cfg.MinLeaf {
		return t.leaf(counts)
	}

	node := len(t.Nodes)
	t.Nodes = append(t.Nodes, treeNode{Feature: feat, Threshold: thr})
	l := t.grow(d, left, depth+1)
	r := t.grow(d, right, depth+1)
	t.Nodes[node].Left = l
	t.Nodes[node].Right = r
	return node
}

func (t *Tree) leaf(counts []float64) int {
	t.Nodes = append(t.Nodes, treeNode{Feature: -1, Counts: counts})
	return len(t.Nodes) - 1
}

// bestSplit searches a (possibly random) subset of features for the split
// with the lowest weighted Gini impurity.
func (t *Tree) bestSplit(d *dataset.Table, idx []int, parentCounts []float64) (feat int, thr float64, ok bool) {
	dim := d.NumFeatures()
	nf := t.numSplitFeatures(dim)
	features := make([]int, dim)
	for j := range features {
		features[j] = j
	}
	if nf < dim {
		t.rng.Shuffle(dim, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:nf]
	}

	n := float64(len(idx))
	parentGini := gini(parentCounts, n)
	bestGain := 1e-12
	sorted := make([]int, len(idx))
	leftCounts := make([]float64, t.classes)
	rightCounts := make([]float64, t.classes)

	for _, f := range features {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, b int) bool { return d.X[sorted[a]][f] < d.X[sorted[b]][f] })

		for c := range leftCounts {
			leftCounts[c] = 0
			rightCounts[c] = parentCounts[c]
		}
		for pos := 0; pos < len(sorted)-1; pos++ {
			y := d.Y[sorted[pos]]
			leftCounts[y]++
			rightCounts[y]--
			v, next := d.X[sorted[pos]][f], d.X[sorted[pos+1]][f]
			//lint:ignore float-eq adjacent sorted stored values; exact equality dedups identical split candidates
			if v == next {
				continue // cannot split between equal values
			}
			nl := float64(pos + 1)
			nr := n - nl
			if int(nl) < t.Cfg.MinLeaf || int(nr) < t.Cfg.MinLeaf {
				continue
			}
			gain := parentGini - (nl/n)*gini(leftCounts, nl) - (nr/n)*gini(rightCounts, nr)
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = (v + next) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// gini computes the Gini impurity of a class-count vector with total n.
func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / n
		s -= p * p
	}
	return s
}

// PredictProba implements Classifier.
func (t *Tree) PredictProba(x []float64) []float64 {
	if len(t.Nodes) == 0 {
		panic(ErrNotTrained)
	}
	node := &t.Nodes[0]
	for node.Feature >= 0 {
		if x[node.Feature] <= node.Threshold {
			node = &t.Nodes[node.Left]
		} else {
			node = &t.Nodes[node.Right]
		}
	}
	return probaFromCounts(node.Counts, t.classes)
}

// Depth returns the depth of the trained tree (0 for a single leaf).
func (t *Tree) Depth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	return t.depthFrom(0)
}

func (t *Tree) depthFrom(i int) int {
	n := &t.Nodes[i]
	if n.Feature < 0 {
		return 0
	}
	l, r := t.depthFrom(n.Left), t.depthFrom(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}
