package ml

import (
	"fmt"

	"repro/internal/mat"
)

// Structural validation of deserialized models. Model envelopes cross
// service boundaries, so a malformed or malicious envelope must be
// rejected at decode time: without these checks a cyclic tree would make
// PredictProba loop forever (found by FuzzUnmarshalModel) and mismatched
// layer shapes would panic mid-request.

// validateTreeNodes checks a classification tree: children in range and
// strictly increasing (the builder's append order, which guarantees the
// prediction walk terminates), and leaf count vectors sized to classes
// with non-negative entries.
func validateTreeNodes(nodes []treeNode, classes int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("ml: tree has no nodes")
	}
	if classes < 1 {
		return fmt.Errorf("ml: tree has %d classes", classes)
	}
	for i, n := range nodes {
		if n.Feature < 0 {
			if len(n.Counts) != classes {
				return fmt.Errorf("ml: tree leaf %d has %d counts, want %d", i, len(n.Counts), classes)
			}
			for _, c := range n.Counts {
				if c < 0 {
					return fmt.Errorf("ml: tree leaf %d has negative count", i)
				}
			}
			continue
		}
		if n.Left <= i || n.Right <= i || n.Left >= len(nodes) || n.Right >= len(nodes) {
			return fmt.Errorf("ml: tree node %d has invalid children (%d, %d)", i, n.Left, n.Right)
		}
	}
	return nil
}

// validateGBTree checks a boosted regression tree with the same
// increasing-children invariant.
func validateGBTree(t *gbTree) error {
	if t == nil || len(t.Nodes) == 0 {
		return fmt.Errorf("ml: boosted tree has no nodes")
	}
	for i, n := range t.Nodes {
		if n.Feature < 0 {
			continue
		}
		if n.Left <= i || n.Right <= i || n.Left >= len(t.Nodes) || n.Right >= len(t.Nodes) {
			return fmt.Errorf("ml: boosted tree node %d has invalid children (%d, %d)", i, n.Left, n.Right)
		}
	}
	return nil
}

// validateLogRegSpec checks weight-matrix geometry against the declared
// shape.
func validateLogRegSpec(w *mat.Dense, classes, dim int) error {
	if classes < 2 || dim < 1 {
		return fmt.Errorf("ml: lr spec shape %d classes x %d features invalid", classes, dim)
	}
	if w.Rows() != classes || w.Cols() != dim+1 {
		return fmt.Errorf("ml: lr weights %dx%d do not match %d classes x %d features", w.Rows(), w.Cols(), classes, dim)
	}
	return nil
}

// validateMLPSpec checks layer geometry: sizes chain, weight shapes, bias
// lengths, and the output width.
func validateMLPSpec(weights []*mat.Dense, biases [][]float64, sizes []int, classes int) error {
	if len(sizes) < 2 {
		return fmt.Errorf("ml: mlp spec has %d layer sizes", len(sizes))
	}
	if len(weights) != len(sizes)-1 || len(biases) != len(sizes)-1 {
		return fmt.Errorf("ml: mlp spec has %d weight and %d bias layers for %d sizes", len(weights), len(biases), len(sizes))
	}
	for i, s := range sizes {
		if s < 1 {
			return fmt.Errorf("ml: mlp layer %d has width %d", i, s)
		}
	}
	if sizes[len(sizes)-1] != classes || classes < 2 {
		return fmt.Errorf("ml: mlp output width %d != %d classes", sizes[len(sizes)-1], classes)
	}
	for l, w := range weights {
		if w.Rows() != sizes[l+1] || w.Cols() != sizes[l] {
			return fmt.Errorf("ml: mlp layer %d weights %dx%d, want %dx%d", l, w.Rows(), w.Cols(), sizes[l+1], sizes[l])
		}
		if len(biases[l]) != sizes[l+1] {
			return fmt.Errorf("ml: mlp layer %d biases %d, want %d", l, len(biases[l]), sizes[l+1])
		}
	}
	return nil
}

// validateGBDTSpec checks the ensemble geometry.
func validateGBDTSpec(s *gbdtSpec) error {
	if s.Classes < 2 {
		return fmt.Errorf("ml: gbdt spec has %d classes", s.Classes)
	}
	if len(s.Base) != s.Classes {
		return fmt.Errorf("ml: gbdt base scores %d != %d classes", len(s.Base), s.Classes)
	}
	if len(s.TreesPerClass) != s.Classes {
		return fmt.Errorf("ml: gbdt has trees for %d of %d classes", len(s.TreesPerClass), s.Classes)
	}
	for c, class := range s.TreesPerClass {
		for ti, tr := range class {
			if err := validateGBTree(tr); err != nil {
				return fmt.Errorf("class %d tree %d: %w", c, ti, err)
			}
		}
	}
	return nil
}
