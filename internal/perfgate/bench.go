package perfgate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/benchfmt"
)

// BenchOptions tunes the comparator's noise handling.
type BenchOptions struct {
	// Noise is the relative ns/op band treated as measurement noise;
	// deltas inside ±Noise are "ok" regardless of significance.
	Noise float64
	// FailOn is the relative regression at which the gate fails. Deltas
	// between Noise and FailOn are reported as "worse" but do not gate —
	// the committed trajectory makes slow creep visible across PRs.
	FailOn float64
	// Alpha is the Mann-Whitney significance level; a regression beyond
	// FailOn with p >= Alpha (when both sides carry enough samples) is
	// downgraded to "worse" as likely noise.
	Alpha float64
}

// DefaultBenchOptions matches the acceptance gate: ignore ±5%, fail at
// +10%, require p < 0.05 when samples permit a test.
func DefaultBenchOptions() BenchOptions {
	return BenchOptions{Noise: 0.05, FailOn: 0.10, Alpha: 0.05}
}

// BenchComparison is the comparator's report.
type BenchComparison struct {
	// Comparable is false when the two documents were recorded on
	// different machines (goos/goarch/cpu mismatch); rows are still
	// computed for the report, but nothing gates.
	Comparable bool   `json:"comparable"`
	Reason     string `json:"reason,omitempty"`
	Rows       []BenchRow
	// Regressions counts gating rows (always 0 when !Comparable).
	Regressions int `json:"regressions"`
}

// BenchRow is one benchmark's old-vs-new comparison.
type BenchRow struct {
	Name string `json:"name"`
	// OldNs and NewNs are median ns/op; OldN and NewN the sample counts.
	OldNs float64 `json:"oldNs"`
	NewNs float64 `json:"newNs"`
	OldN  int     `json:"oldN"`
	NewN  int     `json:"newN"`
	// Delta is (new-old)/old; P the Mann-Whitney two-sided p-value, -1
	// when either side lacks the samples for a test.
	Delta float64 `json:"delta"`
	P     float64 `json:"p"`
	// AllocDelta is the change in allocs/op medians (exact counters, not
	// subject to timing noise); 0 when allocs were not recorded.
	AllocDelta float64 `json:"allocDelta,omitempty"`
	// Verdict is "ok", "improved", "worse", "regression", "alloc-regression",
	// "new", or "vanished". Only "regression" and "alloc-regression" gate.
	Verdict string `json:"verdict"`
	Note    string `json:"note,omitempty"`
}

// CompareBench diffs a fresh run against the committed baseline.
func CompareBench(oldDoc, newDoc *benchfmt.Document, opts BenchOptions) *BenchComparison {
	cmp := &BenchComparison{Comparable: true}
	if oldDoc.CPU != newDoc.CPU || oldDoc.Goos != newDoc.Goos || oldDoc.Goarch != newDoc.Goarch {
		cmp.Comparable = false
		cmp.Reason = fmt.Sprintf("baseline recorded on %s/%s %q, this run on %s/%s %q — reporting only, not gating",
			oldDoc.Goos, oldDoc.Goarch, oldDoc.CPU, newDoc.Goos, newDoc.Goarch, newDoc.CPU)
	}

	oldS, newS := oldDoc.Samples(), newDoc.Samples()
	names := make([]string, 0, len(oldS)+len(newS))
	seen := make(map[string]bool)
	for n := range oldS {
		names = append(names, n)
		seen[n] = true
	}
	for n := range newS {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		o, n := oldS[name], newS[name]
		switch {
		case len(o) == 0:
			cmp.Rows = append(cmp.Rows, BenchRow{Name: name, NewNs: median(ns(n)), NewN: len(n), P: -1, Verdict: "new"})
			continue
		case len(n) == 0:
			cmp.Rows = append(cmp.Rows, BenchRow{Name: name, OldNs: median(ns(o)), OldN: len(o), P: -1, Verdict: "vanished",
				Note: "benchmark present in the baseline but missing from this run"})
			continue
		}
		row := compareOne(name, o, n, opts)
		if !cmp.Comparable && (row.Verdict == "regression" || row.Verdict == "alloc-regression") {
			row.Verdict = "worse"
			row.Note = "would gate, but machines differ"
		}
		if row.Verdict == "regression" || row.Verdict == "alloc-regression" {
			cmp.Regressions++
		}
		cmp.Rows = append(cmp.Rows, row)
	}
	return cmp
}

// compareOne scores a single benchmark.
func compareOne(name string, o, n []benchfmt.Result, opts BenchOptions) BenchRow {
	oldNs, newNs := ns(o), ns(n)
	row := BenchRow{
		Name:  name,
		OldNs: median(oldNs), NewNs: median(newNs),
		OldN: len(o), NewN: len(n),
		P: -1,
	}
	row.Delta = (row.NewNs - row.OldNs) / row.OldNs

	if p, ok := MannWhitneyU(oldNs, newNs); ok {
		row.P = p
	}

	// Allocation counters are exact; any increase is a regression
	// regardless of the timing noise band.
	oldAllocs, newAllocs := allocs(o), allocs(n)
	if len(oldAllocs) > 0 && len(newAllocs) > 0 {
		oa, na := median(oldAllocs), median(newAllocs)
		if oa > 0 || na > 0 {
			row.AllocDelta = na - oa
			if na > oa {
				row.Verdict = "alloc-regression"
				row.Note = fmt.Sprintf("allocs/op rose %v -> %v", oa, na)
				return row
			}
		}
	}

	switch {
	case math.Abs(row.Delta) <= opts.Noise:
		row.Verdict = "ok"
	case row.Delta < 0:
		row.Verdict = "improved"
	case row.Delta >= opts.FailOn:
		if row.P >= 0 && row.P >= opts.Alpha {
			row.Verdict = "worse"
			row.Note = fmt.Sprintf("+%.1f%% but p=%.3f >= alpha=%.2f — likely noise", 100*row.Delta, row.P, opts.Alpha)
		} else {
			row.Verdict = "regression"
		}
	default:
		row.Verdict = "worse"
	}
	return row
}

func ns(rs []benchfmt.Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.NsPerOp
	}
	return out
}

// allocs extracts allocs/op samples; results that never recorded
// -benchmem (both counters zero on every sample) yield nil, so a
// baseline without memory columns skips the alloc gate rather than
// faking a zero-allocation promise.
func allocs(rs []benchfmt.Result) []float64 {
	any := false
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = float64(r.AllocsPerOp)
		if r.AllocsPerOp > 0 || r.BytesPerOp > 0 || r.HasAllocs() {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}
