package perfgate

import (
	"testing"

	"repro/internal/benchfmt"
)

func doc(cpu string, rs ...benchfmt.Result) *benchfmt.Document {
	return &benchfmt.Document{Goos: "linux", Goarch: "amd64", CPU: cpu, Benchmarks: rs}
}

func res(name string, nsPerOp float64, allocsPerOp int64) benchfmt.Result {
	return benchfmt.Result{Name: name, Procs: 1, Iterations: 100, NsPerOp: nsPerOp, AllocsPerOp: allocsPerOp, BytesPerOp: allocsPerOp * 8}
}

func rowByName(t *testing.T, c *BenchComparison, name string) BenchRow {
	t.Helper()
	for _, r := range c.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("row %q missing from %+v", name, c.Rows)
	return BenchRow{}
}

func TestCompareBenchRegressionGate(t *testing.T) {
	old := doc("cpuA", res("BenchmarkA", 1000, 1))
	fresh := doc("cpuA", res("BenchmarkA", 1150, 1)) // +15%, single samples
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	if !cmp.Comparable || cmp.Regressions != 1 {
		t.Fatalf("want 1 gating regression, got %+v", cmp)
	}
	if rowByName(t, cmp, "BenchmarkA").Verdict != "regression" {
		t.Fatalf("bad verdict: %+v", cmp.Rows)
	}
}

func TestCompareBenchNoiseBand(t *testing.T) {
	old := doc("cpuA", res("BenchmarkA", 1000, 1))
	fresh := doc("cpuA", res("BenchmarkA", 1030, 1)) // +3% < 5% noise
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	if cmp.Regressions != 0 || rowByName(t, cmp, "BenchmarkA").Verdict != "ok" {
		t.Fatalf("inside noise band should be ok: %+v", cmp.Rows)
	}

	// Between noise and fail-on: reported "worse", not gating.
	fresh = doc("cpuA", res("BenchmarkA", 1080, 1)) // +8%
	cmp = CompareBench(old, fresh, DefaultBenchOptions())
	if cmp.Regressions != 0 || rowByName(t, cmp, "BenchmarkA").Verdict != "worse" {
		t.Fatalf("between noise and fail-on should be worse/non-gating: %+v", cmp.Rows)
	}
}

func TestCompareBenchSignificanceDowngrade(t *testing.T) {
	// Overlapping noisy samples whose medians differ by >10% but whose
	// distributions are indistinguishable: the U test must veto the gate.
	old := doc("cpuA",
		res("BenchmarkA", 1000, 0), res("BenchmarkA", 1300, 0), res("BenchmarkA", 900, 0),
		res("BenchmarkA", 1250, 0), res("BenchmarkA", 1050, 0))
	fresh := doc("cpuA",
		res("BenchmarkA", 1200, 0), res("BenchmarkA", 950, 0), res("BenchmarkA", 1280, 0),
		res("BenchmarkA", 1020, 0), res("BenchmarkA", 1350, 0))
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	row := rowByName(t, cmp, "BenchmarkA")
	if row.P < 0 {
		t.Fatalf("expected a p-value with 5 samples per side: %+v", row)
	}
	if row.Verdict == "regression" {
		t.Fatalf("insignificant overlap gated: %+v", row)
	}
}

func TestCompareBenchClearRegressionWithSamples(t *testing.T) {
	old := doc("cpuA",
		res("BenchmarkA", 1000, 0), res("BenchmarkA", 1010, 0), res("BenchmarkA", 990, 0),
		res("BenchmarkA", 1005, 0), res("BenchmarkA", 995, 0))
	fresh := doc("cpuA",
		res("BenchmarkA", 1200, 0), res("BenchmarkA", 1210, 0), res("BenchmarkA", 1190, 0),
		res("BenchmarkA", 1205, 0), res("BenchmarkA", 1195, 0))
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	row := rowByName(t, cmp, "BenchmarkA")
	if row.Verdict != "regression" || cmp.Regressions != 1 {
		t.Fatalf("clear +20%% with tight samples must gate: %+v", row)
	}
	if row.P < 0 || row.P >= 0.05 {
		t.Fatalf("want significant p, got %v", row.P)
	}
}

func TestCompareBenchAllocRegression(t *testing.T) {
	old := doc("cpuA", res("BenchmarkA", 1000, 1))
	fresh := doc("cpuA", res("BenchmarkA", 1000, 3)) // same speed, more allocs
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	row := rowByName(t, cmp, "BenchmarkA")
	if row.Verdict != "alloc-regression" || cmp.Regressions != 1 {
		t.Fatalf("alloc counter rise must gate: %+v", row)
	}
}

func TestCompareBenchDifferentMachines(t *testing.T) {
	old := doc("cpuA", res("BenchmarkA", 1000, 1))
	fresh := doc("cpuB", res("BenchmarkA", 2000, 1)) // +100% but other silicon
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	if cmp.Comparable || cmp.Regressions != 0 {
		t.Fatalf("different machines must not gate: %+v", cmp)
	}
	if rowByName(t, cmp, "BenchmarkA").Verdict != "worse" {
		t.Fatalf("cross-machine row should downgrade to worse: %+v", cmp.Rows)
	}
}

func TestCompareBenchNewAndVanished(t *testing.T) {
	old := doc("cpuA", res("BenchmarkOld", 1000, 1))
	fresh := doc("cpuA", res("BenchmarkNew", 500, 1))
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	if rowByName(t, cmp, "BenchmarkOld").Verdict != "vanished" {
		t.Fatalf("missing benchmark not reported: %+v", cmp.Rows)
	}
	if rowByName(t, cmp, "BenchmarkNew").Verdict != "new" {
		t.Fatalf("new benchmark not reported: %+v", cmp.Rows)
	}
	if cmp.Regressions != 0 {
		t.Fatalf("new/vanished must not gate: %+v", cmp)
	}
}

func TestCompareBenchImprovement(t *testing.T) {
	old := doc("cpuA", res("BenchmarkA", 1000, 2))
	fresh := doc("cpuA", res("BenchmarkA", 700, 1))
	cmp := CompareBench(old, fresh, DefaultBenchOptions())
	if rowByName(t, cmp, "BenchmarkA").Verdict != "improved" || cmp.Regressions != 0 {
		t.Fatalf("improvement misclassified: %+v", cmp.Rows)
	}
}
