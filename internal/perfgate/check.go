package perfgate

import (
	"fmt"
	"sort"
)

// Violation is one broken contract.
type Violation struct {
	// Kind classifies the break: "must-inline", "param-escape",
	// "loop-alloc", "bounds-check", "bounds-provable", "pointer-chase",
	// "missing-contract", "stale-contract", "toolchain" (report-only),
	// "bounds-xval" (report-only).
	Kind string `json:"kind"`
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	// Gating is false for advisory violations (toolchain drift).
	Gating  bool   `json:"gating"`
	Message string `json:"message"`
}

func (v Violation) String() string {
	loc := v.File
	if v.Line > 0 {
		loc = fmt.Sprintf("%s:%d", v.File, v.Line)
	}
	if loc != "" {
		loc += ": "
	}
	return fmt.Sprintf("%s%s: [%s] %s", loc, v.Func, v.Kind, v.Message)
}

// CheckManifest verifies the observed optimization state against the
// committed contracts. Violations come back sorted by file, line, and
// function for stable reports.
func CheckManifest(m *Manifest, obs []Observation, toolchain string) []Violation {
	var out []Violation
	drifted := m.Toolchain != "" && toolchain != "" && m.Toolchain != toolchain
	if drifted {
		out = append(out, Violation{
			Kind:    "toolchain",
			Gating:  false,
			Message: fmt.Sprintf("manifest recorded under %s, current compiler is %s; regenerate with -write-manifest if contracts drift", m.Toolchain, toolchain),
		})
	}

	seen := make(map[string]bool, len(obs))
	for _, o := range obs {
		seen[o.Profile.Full] = true
		c := m.Functions[o.Profile.Full]
		if c == nil {
			out = append(out, Violation{
				Kind: "missing-contract", Func: o.Profile.Name,
				File: o.Profile.File, Line: o.Profile.DeclLine, Gating: true,
				Message: "hot-set function has no contract; review and regenerate with -write-manifest",
			})
			continue
		}
		out = append(out, checkOne(c, o)...)
	}
	for full, c := range m.Functions {
		if !seen[full] {
			out = append(out, Violation{
				Kind: "stale-contract", Func: full, File: c.File, Gating: true,
				Message: "contracted function no longer exists or left the hot set; regenerate with -write-manifest",
			})
		}
	}
	// Contracts are promises about one compiler's decisions; a different
	// gc release inlines and escapes differently, so under a drifted
	// toolchain every finding is advisory — the fix is a reviewed
	// regenerate, not a red build on an unrelated machine.
	if drifted {
		for i := range out {
			out[i].Gating = false
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Kind < b.Kind
	})
	return out
}

// checkOne verifies a single function's contract.
func checkOne(c *Contract, o Observation) []Violation {
	var out []Violation
	p := o.Profile
	if c.Inline == "must" && !o.CanInline {
		reason := o.InlineReason
		if reason == "" {
			reason = "no inlining verdict at the declaration"
		}
		out = append(out, Violation{
			Kind: "must-inline", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
			Message: fmt.Sprintf("contract requires inlining but the compiler declined: %s", reason),
		})
	}
	if len(c.NoEscapeParams) > 0 {
		escaping := make(map[string]bool, len(o.EscapingParams))
		for _, e := range o.EscapingParams {
			escaping[e] = true
		}
		for _, param := range c.NoEscapeParams {
			if escaping[param] {
				out = append(out, Violation{
					Kind: "param-escape", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
					Message: fmt.Sprintf("parameter %q now escapes to the heap (contract: must not escape) — one allocation per call on the hot path", param),
				})
			}
		}
	}
	if len(o.LoopAllocs) > c.MaxLoopAllocs {
		v := Violation{
			Kind: "loop-alloc", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
			Message: fmt.Sprintf("%d heap allocation site(s) inside data loops, contract allows %d", len(o.LoopAllocs), c.MaxLoopAllocs),
		}
		if len(o.LoopAllocs) > 0 {
			d := o.LoopAllocs[0]
			v.Line = d.Line
			v.Message += fmt.Sprintf("; first at %s:%d (%s)", d.File, d.Line, firstLine(d.Message))
		}
		out = append(out, v)
	}
	if len(o.LoopBounds) > c.MaxBoundsChecks {
		v := Violation{
			Kind: "bounds-check", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
			Message: fmt.Sprintf("%d un-eliminated bounds check(s) inside data loops, contract allows %d", len(o.LoopBounds), c.MaxBoundsChecks),
		}
		if len(o.LoopBounds) > 0 {
			d := o.LoopBounds[0]
			v.Line = d.Line
			v.Message += fmt.Sprintf("; first at %s:%d", d.File, d.Line)
		}
		out = append(out, v)
	}
	k := p.Kernel
	if c.BoundsProvable {
		switch {
		case k.UnprovenIndexes > 0:
			out = append(out, Violation{
				Kind: "bounds-provable", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
				Message: fmt.Sprintf("%d of %d data-loop index(es) no longer provable by the value-range analysis (contract: all provable); spatial-kernelcheck names the sites and the reslice-hint remedy", k.UnprovenIndexes, k.LoopIndexes),
			})
		case k.LoopIndexes > 0 && len(o.LoopBounds) > 0:
			// Cross-validation, advisory by design: our interval prover
			// and gc's bounds-check elimination answer the same question
			// with different machinery. When we prove every index but gc
			// kept a check, that is a BCE gap (or a prover optimism) worth
			// a look — not a contract regression.
			d := o.LoopBounds[0]
			out = append(out, Violation{
				Kind: "bounds-xval", Func: p.Name, File: p.File, Line: d.Line, Gating: false,
				Message: fmt.Sprintf("value-range analysis proves all %d data-loop index(es) but the compiler kept %d bounds check(s), first at %s:%d — static proof and gc BCE disagree", k.LoopIndexes, len(o.LoopBounds), d.File, d.Line),
			})
		}
	}
	if c.ChaseFree && k.PointerChases > 0 {
		out = append(out, Violation{
			Kind: "pointer-chase", Func: p.Name, File: p.File, Line: p.DeclLine, Gating: true,
			Message: fmt.Sprintf("%d load-dependent load(s) appeared in the data loops (contract: chase-free) — a cache miss per iteration; flatten the traversal or regenerate after review", k.PointerChases),
		})
	}
	return out
}

// Gating counts the violations that should fail the build.
func Gating(vs []Violation) int {
	n := 0
	for _, v := range vs {
		if v.Gating {
			n++
		}
	}
	return n
}

// firstLine truncates multi-line compiler messages for reports.
func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
