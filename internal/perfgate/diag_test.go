package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixture mirrors the gc -json layout: one subdirectory per package
// (URL-escaped import path), one .json per source file, a header line
// then LSP-style diagnostic records with 1-based positions.
const diagFixture = `{"version":0,"package":"repro/internal/ml","goos":"linux","goarch":"amd64","gc_version":"go1.24.0","file":"MODROOT/internal/ml/kernel.go"}
{"range":{"start":{"line":10,"character":6},"end":{"line":10,"character":6}},"severity":3,"code":"cannotInlineFunction","source":"go compiler","message":"function too complex: cost 200 exceeds budget 80"}
{"range":{"start":{"line":22,"character":9},"end":{"line":22,"character":9}},"severity":3,"code":"escape","source":"go compiler","message":"make([]float64, k) escapes to heap"}
{"range":{"start":{"line":25,"character":4},"end":{"line":25,"character":4}},"severity":3,"code":"isInBounds","source":"go compiler"}
`

func TestParseDiagDir(t *testing.T) {
	modRoot := t.TempDir()
	pkgDir := filepath.Join(modRoot, "out", "repro%2Finternal%2Fml")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	fixture := []byte(strings.ReplaceAll(diagFixture, "MODROOT", modRoot))
	if err := os.WriteFile(filepath.Join(pkgDir, "kernel.json"), fixture, 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := parseDiagDir(filepath.Join(modRoot, "out"), modRoot)
	if err != nil {
		t.Fatal(err)
	}
	if set.Toolchain != "go1.24.0" {
		t.Fatalf("toolchain = %q", set.Toolchain)
	}
	ds := set.ByFile["internal/ml/kernel.go"]
	if len(ds) != 3 {
		t.Fatalf("got %d diags for the file (keys %v), want 3", len(ds), fileKeys(set))
	}
	if ds[0].Line != 10 || ds[0].Code != CodeCannotInline {
		t.Fatalf("first diag wrong (sorted by line): %+v", ds[0])
	}
	if ds[2].Code != CodeIsInBounds || ds[2].Col != 4 {
		t.Fatalf("bounds diag wrong: %+v", ds[2])
	}
}

func TestParseDiagDirRejectsHeaderless(t *testing.T) {
	dir := t.TempDir()
	bad := `{"range":{"start":{"line":1,"character":1}},"code":"escape","message":"x escapes to heap"}`
	if err := os.WriteFile(filepath.Join(dir, "orphan.json"), []byte(bad+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseDiagDir(dir, dir); err == nil {
		t.Fatal("diagnostic before header must be an error")
	}
}

// TestHarvestSelf compiles a real package and checks the harvest is
// non-empty and deterministic across runs. Skipped in -short: it shells
// out to the go tool twice.
func TestHarvestSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	modRoot, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Harvest(modRoot, []string{"./internal/mat"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Toolchain == "" || len(a.ByFile) == 0 {
		t.Fatalf("empty harvest: %+v", a)
	}
	var sawInline, sawBounds bool
	for _, ds := range a.ByFile {
		for _, d := range ds {
			switch d.Code {
			case CodeCanInline, CodeCannotInline:
				sawInline = true
			case CodeIsInBounds, CodeIsSliceIn:
				sawBounds = true
			}
		}
	}
	if !sawInline || !sawBounds {
		t.Fatalf("harvest missing verdict classes: inline=%v bounds=%v", sawInline, sawBounds)
	}

	b, err := Harvest(modRoot, []string{"./internal/mat"})
	if err != nil {
		t.Fatal(err)
	}
	for file, ds := range a.ByFile {
		if len(b.ByFile[file]) != len(ds) {
			t.Fatalf("harvest not deterministic for %s: %d vs %d", file, len(ds), len(b.ByFile[file]))
		}
	}
}

func fileKeys(s *DiagSet) []string {
	var out []string
	for k := range s.ByFile {
		out = append(out, k)
	}
	return out
}
