package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Manifest is the committed .perf-manifest.json: one optimization
// contract per hot-set function, plus the allocation budgets the
// AllocsPerRun tests assert. It is a ratchet, regenerated with
// -write-manifest from the observed state and reviewed like any diff —
// the gate then fails any build where the compiler does worse than the
// committed promise (a lost inline, a new param escape, an extra heap
// allocation or bounds check inside a data loop).
type Manifest struct {
	// Toolchain records the gc version the contracts were observed
	// under. Inlining budgets and escape analysis change across
	// releases; the checker reports (never gates) a mismatch so a
	// toolchain upgrade prompts a regenerate instead of a false failure.
	Toolchain string `json:"toolchain"`
	// Functions maps lint full names to contracts.
	Functions map[string]*Contract `json:"functions"`
	// AllocBudgets maps predict-path names ("forest/serial", ...) to the
	// allocation budgets internal/ml's perf tests assert with
	// testing.AllocsPerRun. The generator carries them over verbatim;
	// they are maintained by review, not observation.
	AllocBudgets map[string]*AllocBudget `json:"allocBudgets,omitempty"`
}

// Contract is one function's committed optimization promises.
type Contract struct {
	// File locates the function (module-root relative) for reports.
	File string `json:"file"`
	// Entry is the hot-set entry point that reaches the function, and
	// PerIter whether it runs once per served instance (provenance for
	// reviewers; not checked).
	Entry   string `json:"entry,omitempty"`
	PerIter bool   `json:"perIter,omitempty"`
	// Inline is "must" when the compiler proved the function inlinable
	// and the gate should keep it that way, "any" when inlining is not
	// promised (large kernels are never inlinable and never need to be).
	Inline string `json:"inline"`
	// NoEscapeParams are parameters (receiver included) the escape
	// analysis proved heap-clean; any of them escaping later is a
	// regression (a new allocation per call).
	NoEscapeParams []string `json:"noEscapeParams,omitempty"`
	// MaxLoopAllocs bounds heap-allocation sites inside the function's
	// data loops; MaxBoundsChecks bounds surviving bounds checks there.
	// Zero is the common (and strictest) promise for kernels.
	MaxLoopAllocs   int `json:"maxLoopAllocs"`
	MaxBoundsChecks int `json:"maxBoundsChecks"`
	// BoundsProvable promises the SSA + value-range analysis (the layer
	// behind spatial-kernelcheck) proved every non-load-derived index in
	// the function's data loops within bounds; ChaseFree promises those
	// loops perform no load-dependent loads (linked traversals,
	// nested-slice element loads). Observation sets each only when the
	// function has the corresponding work to promise about — indexes for
	// BoundsProvable, data loops for ChaseFree — and a later build that
	// breaks either fails the static gate before any benchmark moves.
	BoundsProvable bool `json:"boundsProvable,omitempty"`
	ChaseFree      bool `json:"chaseFree,omitempty"`
}

// AllocBudget is one predict path's allocation ceiling, asserted by
// internal/ml's TestPredictAllocBudgets via testing.AllocsPerRun.
type AllocBudget struct {
	// Func names the kernel the budget polices (manifest key form).
	Func string `json:"func"`
	// MaxAllocsPerOp is the ceiling per predict call (serial paths) or
	// per batch call (batched paths).
	MaxAllocsPerOp float64 `json:"maxAllocsPerOp"`
	Note           string  `json:"note,omitempty"`
}

// LoadManifest reads a committed manifest.
func LoadManifest(path string) (*Manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("perfgate: %s: %w", path, err)
	}
	if m.Functions == nil {
		m.Functions = make(map[string]*Contract)
	}
	return &m, nil
}

// Save writes the manifest with sorted keys, two-space indent, and a
// trailing newline — repeated generation on the same toolchain is
// byte-identical (encoding/json sorts map keys; every slice field is
// sorted by the generator).
func (m *Manifest) Save(path string) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Generate builds a manifest from the observed state: every observed
// promise becomes a contract at exactly the observed level (inlinable →
// must-inline, clean params → must-stay-clean, N loop allocations → at
// most N). prev, when non-nil, contributes the hand-maintained
// AllocBudgets section, which observation cannot produce.
func Generate(obs []Observation, toolchain string, prev *Manifest) *Manifest {
	m := &Manifest{
		Toolchain: toolchain,
		Functions: make(map[string]*Contract, len(obs)),
	}
	if prev != nil && len(prev.AllocBudgets) > 0 {
		m.AllocBudgets = prev.AllocBudgets
	}
	for _, o := range obs {
		c := &Contract{
			File:            o.Profile.File,
			Entry:           o.Profile.Entry,
			PerIter:         o.Profile.PerIter,
			Inline:          "any",
			MaxLoopAllocs:   len(o.LoopAllocs),
			MaxBoundsChecks: len(o.LoopBounds),
		}
		if o.CanInline {
			c.Inline = "must"
		}
		k := o.Profile.Kernel
		c.BoundsProvable = k.LoopIndexes > 0 && k.UnprovenIndexes == 0
		c.ChaseFree = len(o.Profile.Loops) > 0 && k.PointerChases == 0
		var clean []string
		escaping := make(map[string]bool, len(o.EscapingParams))
		for _, p := range o.EscapingParams {
			escaping[p] = true
		}
		for _, p := range o.Profile.Params {
			if !escaping[p] {
				clean = append(clean, p)
			}
		}
		sort.Strings(clean)
		c.NoEscapeParams = clean
		m.Functions[o.Profile.Full] = c
	}
	return m
}
