package perfgate

import (
	"regexp"
	"strings"
)

// Observation is what the compiler actually did to one hot function:
// the join of its FuncProfile with the harvested diagnostics.
type Observation struct {
	Profile FuncProfile
	// CanInline reports a canInlineFunction verdict at the declaration;
	// InlineReason carries the cannotInlineFunction message otherwise.
	CanInline    bool
	InlineReason string
	// EscapingParams are declared parameters (receiver included) the
	// escape analysis says reach the heap.
	EscapingParams []string
	// LoopAllocs are heap-allocation sites (escape verdicts) inside the
	// function's data loops; LoopBounds are bounds checks the compiler
	// could not eliminate inside those loops.
	LoopAllocs []Diag
	LoopBounds []Diag
	// FuncAllocs and FuncBounds count the same events anywhere in the
	// function, loops or not (reported, not gated by default).
	FuncAllocs int
	FuncBounds int
}

var (
	// "parameter x leaks to {heap} with derefs=0" — the caller's argument
	// escapes. Leaks to results ("~r0") or to non-escaping storage are
	// not heap escapes and are not matched.
	reParamLeaksHeap = regexp.MustCompile(`^parameter (\S+) leaks to \{heap\}`)
	// "x escapes to heap" / "moved to heap: x" — escape verdicts that
	// name a value; when the name is a declared parameter, the parameter
	// escapes.
	reEscapesToHeap = regexp.MustCompile(`^(\S+) escapes to heap$`)
	reMovedToHeap   = regexp.MustCompile(`^moved to heap: (\S+)$`)
)

// Observe joins profiles with diagnostics. Every diagnostic is assigned
// to the narrowest profile span containing it, so a function literal's
// diagnostics do not double-count against its enclosing declaration.
func Observe(profiles []FuncProfile, diags *DiagSet) []Observation {
	// Index profiles per file for containment lookup.
	byFile := make(map[string][]*FuncProfile)
	obs := make([]Observation, len(profiles))
	for i := range profiles {
		obs[i].Profile = profiles[i]
		byFile[profiles[i].File] = append(byFile[profiles[i].File], &profiles[i])
	}
	idx := make(map[*FuncProfile]*Observation, len(profiles))
	for i := range obs {
		idx[&profiles[i]] = &obs[i]
	}

	// gc emits two records per escape site: "escapes" carrying the
	// message and a bare "escape" marker at the same position. Count each
	// position once or every allocation site doubles.
	type pos struct {
		file      string
		line, col int
	}
	seenAlloc := make(map[pos]bool)

	for file, ds := range diags.ByFile {
		owners := byFile[file]
		if len(owners) == 0 {
			continue
		}
		for _, d := range ds {
			p := narrowestOwner(owners, d.Line)
			if p == nil {
				continue
			}
			o := idx[p]
			switch d.Code {
			case CodeCanInline:
				if d.Line == p.DeclLine {
					o.CanInline = true
				}
			case CodeCannotInline:
				if d.Line == p.DeclLine {
					o.InlineReason = d.Message
				}
			case CodeLeak:
				if m := reParamLeaksHeap.FindStringSubmatch(d.Message); m != nil && hasParam(p, m[1]) {
					o.EscapingParams = appendUnique(o.EscapingParams, m[1])
				}
			case CodeEscape, CodeEscapes:
				if m := reEscapesToHeap.FindStringSubmatch(d.Message); m != nil && hasParam(p, m[1]) {
					o.EscapingParams = appendUnique(o.EscapingParams, m[1])
				}
				if m := reMovedToHeap.FindStringSubmatch(d.Message); m != nil && hasParam(p, m[1]) {
					o.EscapingParams = appendUnique(o.EscapingParams, m[1])
				}
				at := pos{file, d.Line, d.Col}
				if seenAlloc[at] {
					break
				}
				seenAlloc[at] = true
				o.FuncAllocs++
				if inLoop(p, d.Line) {
					o.LoopAllocs = append(o.LoopAllocs, d)
				}
			case CodeIsInBounds, CodeIsSliceIn:
				o.FuncBounds++
				if inLoop(p, d.Line) {
					o.LoopBounds = append(o.LoopBounds, d)
				}
			}
		}
	}
	return obs
}

// narrowestOwner picks the profile whose span contains line and is the
// tightest such span (function literals over their enclosing decls).
func narrowestOwner(owners []*FuncProfile, line int) *FuncProfile {
	var best *FuncProfile
	for _, p := range owners {
		if line < p.DeclLine || line > p.EndLine {
			continue
		}
		if best == nil || (p.EndLine-p.DeclLine) < (best.EndLine-best.DeclLine) {
			best = p
		}
	}
	return best
}

// inLoop reports whether line falls in any of p's data-loop spans.
func inLoop(p *FuncProfile, line int) bool {
	for _, s := range p.Loops {
		if line >= s.StartLine && line <= s.EndLine {
			return true
		}
	}
	return false
}

// hasParam reports whether name is one of p's declared parameters.
// Escape messages occasionally qualify names ("&f.x"); match the bare
// identifier only.
func hasParam(p *FuncProfile, name string) bool {
	name = strings.TrimPrefix(name, "&")
	for _, q := range p.Params {
		if q == name {
			return true
		}
	}
	return false
}

func appendUnique(list []string, s string) []string {
	for _, v := range list {
		if v == s {
			return list
		}
	}
	return append(list, s)
}
