package perfgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// fixture: one file, one kernel function spanning lines 10-40 with a
// data loop at 20-30, and a literal nested at 32-36.
func fixtureProfiles() []FuncProfile {
	return []FuncProfile{
		{
			Full: "repro/internal/ml.Kernel", Name: "ml.Kernel",
			File: "internal/ml/kernel.go", DeclLine: 10, EndLine: 40,
			Params: []string{"m", "x"},
			Loops:  []lint.Span{{File: "internal/ml/kernel.go", StartLine: 20, EndLine: 30}},
		},
		{
			Full: "repro/internal/ml.Kernel$1", Name: "ml.Kernel$1",
			File: "internal/ml/kernel.go", DeclLine: 32, EndLine: 36,
		},
		{
			Full: "repro/internal/ml.Helper", Name: "ml.Helper",
			File: "internal/ml/kernel.go", DeclLine: 44, EndLine: 48,
			Params: []string{"v"},
		},
	}
}

func fixtureDiags() *DiagSet {
	f := "internal/ml/kernel.go"
	return &DiagSet{
		Toolchain: "go1.24.0",
		ByFile: map[string][]Diag{
			f: {
				{File: f, Line: 10, Code: CodeCannotInline, Message: "function too complex: cost 200 exceeds budget 80"},
				{File: f, Line: 12, Code: CodeLeak, Message: "parameter m leaks to ~r0 with derefs=1"}, // result leak: not an escape
				{File: f, Line: 13, Code: CodeLeak, Message: "parameter x leaks to {heap} with derefs=0"},
				// gc emits both records for one site; Observe must count one.
				{File: f, Line: 22, Col: 9, Code: CodeEscapes, Message: "make([]float64, k) escapes to heap"},
				{File: f, Line: 22, Col: 9, Code: CodeEscape},
				{File: f, Line: 25, Code: CodeIsInBounds},
				{File: f, Line: 26, Code: CodeIsInBounds},
				{File: f, Line: 34, Code: CodeEscape, Message: "acc escapes to heap"}, // inside the literal, not the kernel
				{File: f, Line: 44, Code: CodeCanInline, Message: "can inline Helper with cost 12"},
				{File: f, Line: 46, Code: CodeIsInBounds}, // outside any loop
			},
		},
	}
}

func obsByName(t *testing.T, obs []Observation, full string) Observation {
	t.Helper()
	for _, o := range obs {
		if o.Profile.Full == full {
			return o
		}
	}
	t.Fatalf("observation %q missing", full)
	return Observation{}
}

func TestObserveJoinsDiagnostics(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	k := obsByName(t, obs, "repro/internal/ml.Kernel")
	if k.CanInline || !strings.Contains(k.InlineReason, "cost 200") {
		t.Fatalf("inline verdict wrong: %+v", k)
	}
	if len(k.EscapingParams) != 1 || k.EscapingParams[0] != "x" {
		t.Fatalf("want only x escaping (m leaks to result, which is fine): %v", k.EscapingParams)
	}
	if len(k.LoopAllocs) != 1 || k.LoopAllocs[0].Line != 22 {
		t.Fatalf("loop allocs wrong: %+v", k.LoopAllocs)
	}
	if len(k.LoopBounds) != 2 {
		t.Fatalf("want 2 loop bounds checks, got %+v", k.LoopBounds)
	}

	// The literal's diagnostics must not leak into the enclosing decl.
	lit := obsByName(t, obs, "repro/internal/ml.Kernel$1")
	if len(lit.LoopAllocs) != 0 || lit.FuncAllocs != 1 {
		t.Fatalf("literal attribution wrong: %+v", lit)
	}
	if k.FuncAllocs != 1 {
		t.Fatalf("kernel saw the literal's alloc: %+v", k)
	}

	h := obsByName(t, obs, "repro/internal/ml.Helper")
	if !h.CanInline {
		t.Fatalf("helper inline verdict lost: %+v", h)
	}
	if len(h.LoopBounds) != 0 || h.FuncBounds != 1 {
		t.Fatalf("loop-vs-function bounds attribution wrong: %+v", h)
	}
}

func TestGenerateCheckRoundTrip(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	m := Generate(obs, "go1.24.0", nil)

	// A manifest generated from the observations must verify cleanly.
	vs := CheckManifest(m, obs, "go1.24.0")
	if Gating(vs) != 0 {
		t.Fatalf("fresh manifest should check clean, got %+v", vs)
	}

	c := m.Functions["repro/internal/ml.Kernel"]
	if c == nil || c.Inline != "any" || c.MaxLoopAllocs != 1 || c.MaxBoundsChecks != 2 {
		t.Fatalf("kernel contract wrong: %+v", c)
	}
	if len(c.NoEscapeParams) != 1 || c.NoEscapeParams[0] != "m" {
		t.Fatalf("kernel noEscapeParams wrong: %+v", c.NoEscapeParams)
	}
	if h := m.Functions["repro/internal/ml.Helper"]; h == nil || h.Inline != "must" {
		t.Fatalf("helper contract wrong: %+v", h)
	}
}

func TestCheckManifestViolations(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	m := Generate(obs, "go1.24.0", nil)

	// Seed regressions: the kernel loses its alloc budget, the helper
	// loses its inline, param m starts escaping.
	bad := fixtureDiags()
	f := "internal/ml/kernel.go"
	bad.ByFile[f] = append(bad.ByFile[f],
		Diag{File: f, Line: 24, Code: CodeEscape, Message: "new([]float64) escapes to heap"},
		Diag{File: f, Line: 12, Code: CodeLeak, Message: "parameter m leaks to {heap} with derefs=0"},
	)
	for i, d := range bad.ByFile[f] {
		if d.Code == CodeCanInline && d.Line == 44 {
			bad.ByFile[f][i] = Diag{File: f, Line: 44, Code: CodeCannotInline, Message: "function too complex: cost 90 exceeds budget 80"}
		}
	}
	vs := CheckManifest(m, Observe(fixtureProfiles(), bad), "go1.24.0")
	kinds := map[string]int{}
	for _, v := range vs {
		if v.Gating {
			kinds[v.Kind]++
		}
	}
	if kinds["loop-alloc"] != 1 || kinds["param-escape"] != 1 || kinds["must-inline"] != 1 {
		t.Fatalf("want one each of loop-alloc/param-escape/must-inline, got %v (%+v)", kinds, vs)
	}
}

func TestCheckManifestKernelContracts(t *testing.T) {
	provable := fixtureProfiles()
	provable[0].Kernel = lint.KernelFacts{LoopIndexes: 3}
	obs := Observe(provable, fixtureDiags())
	m := Generate(obs, "go1.24.0", nil)
	c := m.Functions["repro/internal/ml.Kernel"]
	if c == nil || !c.BoundsProvable || !c.ChaseFree {
		t.Fatalf("kernel contract should promise boundsProvable+chaseFree: %+v", c)
	}
	if h := m.Functions["repro/internal/ml.Helper"]; h == nil || h.BoundsProvable || h.ChaseFree {
		t.Fatalf("helper (no loops, no indexes) must promise neither: %+v", h)
	}

	// The fresh check gates clean but carries the advisory
	// cross-validation: the range analysis proves all three indexes while
	// gc kept two checks in the loop — a disagreement worth a look.
	vs := CheckManifest(m, obs, "go1.24.0")
	if Gating(vs) != 0 {
		t.Fatalf("fresh manifest should gate clean, got %+v", vs)
	}
	xval := 0
	for _, v := range vs {
		if v.Kind == "bounds-xval" {
			xval++
			if v.Gating {
				t.Fatalf("bounds-xval must stay advisory: %+v", v)
			}
		}
	}
	if xval != 1 {
		t.Fatalf("want one bounds-xval advisory, got %+v", vs)
	}

	// Regressions: one index loses its proof, two chases appear.
	broken := fixtureProfiles()
	broken[0].Kernel = lint.KernelFacts{LoopIndexes: 3, UnprovenIndexes: 1, PointerChases: 2}
	vs = CheckManifest(m, Observe(broken, fixtureDiags()), "go1.24.0")
	kinds := map[string]int{}
	for _, v := range vs {
		if v.Gating {
			kinds[v.Kind]++
		}
	}
	if kinds["bounds-provable"] != 1 || kinds["pointer-chase"] != 1 {
		t.Fatalf("want bounds-provable+pointer-chase gates, got %v (%+v)", kinds, vs)
	}
}

func TestCheckManifestMissingAndStale(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	m := Generate(obs, "go1.24.0", nil)

	// Remove one contract -> missing-contract; add a phantom -> stale.
	delete(m.Functions, "repro/internal/ml.Helper")
	m.Functions["repro/internal/ml.Gone"] = &Contract{File: "internal/ml/kernel.go", Inline: "any"}
	vs := CheckManifest(m, obs, "go1.24.0")
	kinds := map[string]int{}
	for _, v := range vs {
		kinds[v.Kind]++
	}
	if kinds["missing-contract"] != 1 || kinds["stale-contract"] != 1 {
		t.Fatalf("want missing+stale, got %v", kinds)
	}
}

func TestCheckManifestToolchainDrift(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	m := Generate(obs, "go1.23.0", nil)
	vs := CheckManifest(m, obs, "go1.24.0")
	sawDrift := false
	for _, v := range vs {
		if v.Kind == "toolchain" {
			sawDrift = true
			if v.Gating {
				t.Fatalf("toolchain drift must not gate: %+v", v)
			}
		}
	}
	if !sawDrift {
		t.Fatal("toolchain drift not reported")
	}

	// Under a drifted toolchain even real contract breaks are advisory:
	// a different gc release decides inlining and escapes differently,
	// so the fix is a reviewed regenerate, not a red build.
	delete(m.Functions, "repro/internal/ml.Helper")
	vs = CheckManifest(m, obs, "go1.24.0")
	if len(vs) < 2 {
		t.Fatalf("expected drift + missing-contract, got %+v", vs)
	}
	if Gating(vs) != 0 {
		t.Fatalf("violations under a drifted toolchain must not gate: %+v", vs)
	}
}

func TestManifestSaveDeterministic(t *testing.T) {
	obs := Observe(fixtureProfiles(), fixtureDiags())
	prev := &Manifest{AllocBudgets: map[string]*AllocBudget{
		"forest/serial": {Func: "repro/internal/ml.Kernel", MaxAllocsPerOp: 1},
	}}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	if err := Generate(obs, "go1.24.0", prev).Save(p1); err != nil {
		t.Fatal(err)
	}
	if err := Generate(obs, "go1.24.0", prev).Save(p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatal("repeated generation is not byte-identical")
	}

	// Round trip through Load preserves the budgets section.
	m, err := LoadManifest(p1)
	if err != nil {
		t.Fatal(err)
	}
	if m.AllocBudgets["forest/serial"] == nil || m.AllocBudgets["forest/serial"].MaxAllocsPerOp != 1 {
		t.Fatalf("alloc budgets lost: %+v", m.AllocBudgets)
	}
}
