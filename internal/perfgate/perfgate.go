// Package perfgate verifies the serving hot path's performance
// contracts statically, from the compiler's own optimization decisions,
// and gates measured throughput against the committed benchmark
// baseline.
//
// The static half harvests the gc compiler's LSP-style JSON diagnostics
// (`go build -gcflags=<pkg>=-json=0,<dir>`): escape-analysis verdicts,
// inlining decisions, and surviving bounds checks. It then reuses
// internal/lint's interprocedural call graph to compute the hot set —
// every function reachable from the serving Predict* entry points and
// the ml batch kernels — and checks each hot function against a
// committed .perf-manifest.json contract: must-inline, params
// must-not-escape, at most N heap allocations inside data loops, at
// most N un-eliminated bounds checks in kernel inner loops. A function
// that loses an optimization the manifest promised (a new escape, a
// lost inline, a fresh bounds check) fails the build before any
// benchmark could measure the regression.
//
// The measured half is a benchstat-style comparator over the committed
// BENCH_serving.json snapshot: Mann-Whitney U when both sides carry
// enough -count samples, a configurable noise threshold otherwise, and
// machine-identity checks so a laptop run never gates against a CI
// baseline recorded on different silicon.
package perfgate

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Diag is one compiler optimization diagnostic, positions 1-based (the
// gc -json emitter matches token.Position, not raw LSP).
type Diag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Diagnostic codes the gate consumes (go1.22-go1.24 emit these names).
const (
	CodeCanInline    = "canInlineFunction"
	CodeCannotInline = "cannotInlineFunction"
	CodeInlineCall   = "inlineCall"
	CodeEscape       = "escape"  // value escapes to heap (allocation site)
	CodeEscapes      = "escapes" // older spelling of the same verdict
	CodeLeak         = "leak"    // parameter leaks (to heap, result, ...)
	CodeIsInBounds   = "isInBounds"
	CodeIsSliceIn    = "isSliceInBounds"
)

// DiagSet is one harvest: every optimization diagnostic for the built
// packages, grouped by module-root-relative file path, plus the
// toolchain that produced them (contracts are toolchain-scoped — a
// compiler upgrade may legitimately change inlining costs, and the
// manifest records which gc version its promises were made against).
type DiagSet struct {
	Toolchain string
	ByFile    map[string][]Diag
}

// lspRecord is the on-disk shape of one gc -json diagnostic line.
type lspRecord struct {
	// Header fields (first line of each per-source-file .json).
	Version   *int   `json:"version,omitempty"`
	SourceTop string `json:"file,omitempty"`
	GCVersion string `json:"gc_version,omitempty"`
	// Diagnostic fields.
	Range struct {
		Start struct {
			Line      int `json:"line"`
			Character int `json:"character"`
		} `json:"start"`
	} `json:"range"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Harvest compiles pkgs (package patterns relative to modRoot, e.g.
// "./internal/ml") with -json optimization logging and parses the
// result. A fresh temp directory per call changes the flag value, which
// defeats the build cache — every harvest reflects the sources on disk,
// not a stale cached object.
func Harvest(modRoot string, pkgs []string) (*DiagSet, error) {
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("perfgate: no packages to harvest")
	}
	tmp, err := os.MkdirTemp("", "perfgate-diag-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	args := []string{"build"}
	for _, p := range pkgs {
		args = append(args, fmt.Sprintf("-gcflags=%s=-json=0,%s", p, tmp))
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("perfgate: go build failed: %v\n%s", err, stderr.String())
	}
	return parseDiagDir(tmp, modRoot)
}

// parseDiagDir walks a -json output directory (one subdirectory per
// package, one .json per source file) and collects every diagnostic.
func parseDiagDir(dir, modRoot string) (*DiagSet, error) {
	set := &DiagSet{ByFile: make(map[string][]Diag)}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		srcFile := ""
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec lspRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return fmt.Errorf("perfgate: %s: %w", path, err)
			}
			if rec.Version != nil { // header line
				if *rec.Version != 0 {
					return fmt.Errorf("perfgate: %s: unsupported -json version %d", path, *rec.Version)
				}
				srcFile = rec.SourceTop
				if rel, err := filepath.Rel(modRoot, srcFile); err == nil && !strings.HasPrefix(rel, "..") {
					srcFile = filepath.ToSlash(rel)
				}
				if rec.GCVersion != "" {
					set.Toolchain = rec.GCVersion
				}
				continue
			}
			if srcFile == "" {
				return fmt.Errorf("perfgate: %s: diagnostic before header", path)
			}
			set.ByFile[srcFile] = append(set.ByFile[srcFile], Diag{
				File:    srcFile,
				Line:    rec.Range.Start.Line,
				Col:     rec.Range.Start.Character,
				Code:    rec.Code,
				Message: rec.Message,
			})
		}
		return sc.Err()
	})
	if err != nil {
		return nil, err
	}
	for _, ds := range set.ByFile {
		sortDiags(ds)
	}
	return set, nil
}

// sortDiags orders diagnostics deterministically (the walk order of the
// output directory is already stable, but the contract generator must
// not depend on it).
func sortDiags(ds []Diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}
