package perfgate

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// FuncProfile locates one hot-set function in the sources: where it is,
// which lines are its data loops, which parameters it declares, and how
// it is reached from the serving entry points. Profiles are the join key
// between the call graph (what runs per served instance) and the
// compiler diagnostics (what the optimizer did about it).
type FuncProfile struct {
	// Full is the manifest key: types.Func.FullName for declarations,
	// with a "$n" suffix for function literals.
	Full string
	// Name is the short display name ("ml.(*Forest).PredictProbaBatch").
	Name string
	// File is module-root-relative; DeclLine..EndLine spans the whole
	// declaration (or literal), 1-based inclusive.
	File     string
	DeclLine int
	EndLine  int
	// Params are the declared parameter names, receiver first when there
	// is one. Unnamed and blank parameters are omitted (they cannot
	// escape by name).
	Params []string
	// Loops are the data-loop line spans inside the body (nested
	// literals excluded — they profile separately).
	Loops []lint.Span
	// PerIter and Entry carry the hot-set context: does the function run
	// once per served instance, and which entry point reaches it.
	PerIter bool
	Entry   string
	// PkgPath is the import path the function lives in.
	PkgPath string
	// Kernel summarizes the SSA + value-range shape of the body's data
	// loops — how many index expressions they carry, how many of those
	// the analysis could not prove in bounds, and how many load-dependent
	// loads (pointer chases) they perform. These static facts back the
	// manifest's boundsProvable/chaseFree contract kinds.
	Kernel lint.KernelFacts
}

// DefaultEntry is the gate's entry predicate: the serving tier's
// exported Predict* handlers, the ml batch kernels themselves (the
// kernels are also reachable via CHA from serving, but naming them
// directly keeps the gate meaningful even if the serving tier's
// dispatch changes shape), and the cluster tier's routing hot paths
// (ring lookup and replica pick, which run once per proxied request).
func DefaultEntry(n *lint.Node) bool {
	return lint.ServingEntry(n) || lint.KernelEntry(n) || lint.ClusterEntry(n)
}

// ProfileOptions configures hot-profile construction.
type ProfileOptions struct {
	// Packages restricts profiles to functions living in import paths
	// with one of these suffixes — the packages whose diagnostics are
	// harvested. Hot functions elsewhere (telemetry counters, registry
	// lookups) stay out of the manifest.
	Packages []string
	// Entry selects the hot-set roots (DefaultEntry when nil).
	Entry func(*lint.Node) bool
}

// BuildProfiles loads the module rooted at modRoot, builds the
// interprocedural call graph, computes the hot set, and returns one
// profile per hot function inside the harvested packages, sorted by
// Full name.
func BuildProfiles(modRoot string, opts ProfileOptions) ([]FuncProfile, error) {
	loader := &lint.Loader{Dir: modRoot}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		return nil, err
	}
	prog := lint.BuildProgram(loader.Fset(), pkgs)
	entry := opts.Entry
	if entry == nil {
		entry = DefaultEntry
	}
	hot := prog.HotSet(entry)
	if len(hot.Entries) == 0 {
		return nil, fmt.Errorf("perfgate: no hot-set entry points found (is the serving tier loadable?)")
	}

	inScope := func(path string) bool {
		if len(opts.Packages) == 0 {
			return true
		}
		for _, p := range opts.Packages {
			if strings.HasSuffix(path, strings.TrimPrefix(p, "./")) {
				return true
			}
		}
		return false
	}

	var out []FuncProfile
	for _, hf := range hot.Funcs() {
		n := hf.Node
		if n.Body() == nil || !inScope(n.Pkg.Path) {
			continue
		}
		start := prog.Fset.Position(n.Pos())
		end := prog.Fset.Position(n.Body().End())
		file := start.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		p := FuncProfile{
			Full:     n.FullName(),
			Name:     n.Name,
			File:     file,
			DeclLine: start.Line,
			EndLine:  end.Line,
			Params:   paramNames(n),
			Loops:    prog.DataLoopSpans(n),
			PerIter:  hf.PerIter,
			Entry:    hf.Entry.Name,
			PkgPath:  n.Pkg.Path,
			Kernel:   prog.KernelReport(n),
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Full < out[j].Full })
	return out, nil
}

// paramNames lists the declared receiver and parameter names.
func paramNames(n *lint.Node) []string {
	ft := n.FuncType()
	if ft == nil {
		return nil
	}
	var out []string
	if n.Decl != nil && n.Decl.Recv != nil {
		for _, f := range n.Decl.Recv.List {
			for _, name := range f.Names {
				if name.Name != "_" {
					out = append(out, name.Name)
				}
			}
		}
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if name.Name != "_" {
					out = append(out, name.Name)
				}
			}
		}
	}
	return out
}
