package perfgate

import (
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestBuildProfilesSelf loads the real module and checks the hot set
// contains the serving kernels with sane spans. Skipped in -short: it
// type-checks the whole module.
func TestBuildProfilesSelf(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	modRoot, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := BuildProfiles(modRoot, ProfileOptions{
		Packages: []string{"./internal/ml", "./internal/serving", "./internal/mat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	byFull := make(map[string]FuncProfile, len(profiles))
	for _, p := range profiles {
		byFull[p.Full] = p
		if p.DeclLine <= 0 || p.EndLine < p.DeclLine {
			t.Fatalf("bad span: %+v", p)
		}
		if strings.Contains(p.File, "..") || strings.HasPrefix(p.File, "/") {
			t.Fatalf("file not module-relative: %+v", p)
		}
	}

	// The batch kernels must be in the hot set, flagged per-iteration
	// work must reach the tree traversal, and the kernels must have
	// recorded data loops.
	for _, want := range []string{
		"(*repro/internal/ml.Forest).PredictProbaBatch",
		"(*repro/internal/ml.GBDT).PredictProbaBatch",
		"(*repro/internal/ml.Forest).PredictProba",
	} {
		p, ok := byFull[want]
		if !ok {
			keys := make([]string, 0, len(byFull))
			for k := range byFull {
				keys = append(keys, k)
			}
			t.Fatalf("kernel %s missing from hot set; have %v", want, keys)
		}
		if len(p.Loops) == 0 {
			t.Errorf("%s: no data loops recorded", want)
		}
		if len(p.Params) == 0 {
			t.Errorf("%s: no params recorded", want)
		}
		// The batch kernels were brought to kernel grade by the self-run:
		// every index proven, no pointer chases. The profile must carry
		// those facts so Generate can promise them.
		if p.Kernel.LoopIndexes == 0 {
			t.Errorf("%s: no data-loop indexes recorded in kernel facts", want)
		}
		if p.Kernel.UnprovenIndexes != 0 || p.Kernel.PointerChases != 0 {
			t.Errorf("%s: kernel facts show regressions: %+v", want, p.Kernel)
		}
	}

	// Out-of-scope hot functions (telemetry, registry) must be excluded.
	for full := range byFull {
		p := byFull[full]
		if !strings.Contains(p.PkgPath, "internal/ml") &&
			!strings.Contains(p.PkgPath, "internal/serving") &&
			!strings.Contains(p.PkgPath, "internal/mat") {
			t.Fatalf("profile outside harvest scope: %+v", p)
		}
	}
}
