package perfgate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Report is the machine-readable outcome of a perfgate run, uploaded as
// a CI artifact next to the SARIF lint findings.
type Report struct {
	Tool      string `json:"tool"`
	Toolchain string `json:"toolchain,omitempty"`
	// Functions counts profiled hot-set functions; Contracts the
	// manifest entries they were checked against.
	Functions int `json:"functions,omitempty"`
	Contracts int `json:"contracts,omitempty"`
	// Violations are the static contract breaks (empty on a clean run).
	Violations []Violation `json:"violations"`
	// Bench is the baseline comparison when one ran.
	Bench *BenchComparison `json:"bench,omitempty"`
	// Pass is the overall gate verdict.
	Pass bool `json:"pass"`
}

// Write renders the report as indented JSON at path.
func (r *Report) Write(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Print renders a human summary to w.
func (r *Report) Print(w io.Writer) {
	if r.Functions > 0 || r.Contracts > 0 {
		fmt.Fprintf(w, "perfgate: %d hot-set functions, %d contracts (%s)\n", r.Functions, r.Contracts, r.Toolchain)
	}
	for _, v := range r.Violations {
		tag := "FAIL"
		if !v.Gating {
			tag = "note"
		}
		fmt.Fprintf(w, "  %s %s\n", tag, v)
	}
	if r.Bench != nil {
		if !r.Bench.Comparable {
			fmt.Fprintf(w, "perfgate: bench baseline not comparable: %s\n", r.Bench.Reason)
		}
		for _, row := range r.Bench.Rows {
			switch row.Verdict {
			case "ok":
				fmt.Fprintf(w, "  ok   %-34s %10.0f -> %10.0f ns/op (%+.1f%%)\n", row.Name, row.OldNs, row.NewNs, 100*row.Delta)
			case "new", "vanished":
				fmt.Fprintf(w, "  %-4s %-34s\n", row.Verdict, row.Name)
			default:
				note := row.Note
				if note != "" {
					note = " — " + note
				}
				p := ""
				if row.P >= 0 {
					p = fmt.Sprintf(" p=%.3f", row.P)
				}
				fmt.Fprintf(w, "  %-4s %-34s %10.0f -> %10.0f ns/op (%+.1f%%)%s%s\n",
					verdictTag(row.Verdict), row.Name, row.OldNs, row.NewNs, 100*row.Delta, p, note)
			}
		}
	}
	if r.Pass {
		fmt.Fprintln(w, "perfgate: PASS")
	} else {
		fmt.Fprintln(w, "perfgate: FAIL")
	}
}

func verdictTag(v string) string {
	switch v {
	case "regression", "alloc-regression":
		return "FAIL"
	case "improved":
		return "good"
	default:
		return "warn"
	}
}
