package perfgate

import (
	"math"
	"sort"
)

// This file is the stdlib-only statistics kernel of the benchmark
// comparator: a two-sided Mann-Whitney U test (normal approximation
// with tie correction and continuity correction) and order statistics.
// The normal approximation is accurate enough from ~4 samples per side
// for a gate whose decision threshold also includes a relative noise
// band; callers with fewer samples fall back to threshold-only
// comparison and say so in the report.

// minSamplesForU is the per-side sample floor below which the U test is
// not attempted.
const minSamplesForU = 4

// MannWhitneyU returns the two-sided p-value for the hypothesis that a
// and b are drawn from the same distribution. ok is false when either
// side has fewer than minSamplesForU samples or all values are tied
// (no decision possible).
func MannWhitneyU(a, b []float64) (p float64, ok bool) {
	n1, n2 := len(a), len(b)
	if n1 < minSamplesForU || n2 < minSamplesForU {
		return 0, false
	}
	// Rank the pooled samples, mid-ranks for ties.
	type obs struct {
		v     float64
		group int
	}
	pool := make([]obs, 0, n1+n2)
	for _, v := range a {
		pool = append(pool, obs{v, 0})
	}
	for _, v := range b {
		pool = append(pool, obs{v, 1})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	ranks := make([]float64, len(pool))
	var tieTerm float64 // sum of t^3 - t over tie groups
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}

	var r1 float64
	for i, o := range pool {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u := math.Min(u1, u2)

	nn := float64(n1 + n2)
	mean := float64(n1*n2) / 2
	variance := float64(n1*n2) / 12 * (nn + 1 - tieTerm/(nn*(nn-1)))
	if variance <= 0 {
		return 0, false // every value tied
	}
	// Continuity correction pulls |z| toward zero.
	z := (math.Abs(u-mean) - 0.5) / math.Sqrt(variance)
	if z < 0 {
		z = 0
	}
	return 2 * normalSurvival(z), true
}

// normalSurvival is P(Z > z) for the standard normal.
func normalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// median returns the middle order statistic (mean of the two middle
// values for even lengths). The input is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
