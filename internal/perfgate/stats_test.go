package perfgate

import (
	"math"
	"testing"
)

func TestMannWhitneyUSeparated(t *testing.T) {
	// Fully separated samples: p must be small.
	a := []float64{10, 11, 12, 13, 14, 15}
	b := []float64{20, 21, 22, 23, 24, 25}
	p, ok := MannWhitneyU(a, b)
	if !ok {
		t.Fatal("test declined with 6 samples per side")
	}
	if p > 0.01 {
		t.Fatalf("separated samples: p=%v, want < 0.01", p)
	}
}

func TestMannWhitneyUIdenticalDistributions(t *testing.T) {
	// Interleaved samples from the same values: p must be large.
	a := []float64{10, 12, 14, 16, 18}
	b := []float64{11, 13, 15, 17, 19}
	p, ok := MannWhitneyU(a, b)
	if !ok {
		t.Fatal("test declined")
	}
	if p < 0.3 {
		t.Fatalf("interleaved samples: p=%v, want >= 0.3", p)
	}
}

func TestMannWhitneyUReference(t *testing.T) {
	// Hand-checked normal approximation with continuity correction:
	// R1=20 so U=min(5,20)=5, mean=12.5, var=25*11/12, z=7/sqrt(22.9167)
	// =1.4623, p=2*P(Z>1.4623)≈0.1437 (matches scipy's asymptotic mode).
	a := []float64{1, 2, 3, 4, 10}
	b := []float64{5, 6, 7, 8, 9}
	p, ok := MannWhitneyU(a, b)
	if !ok {
		t.Fatal("test declined")
	}
	if math.Abs(p-0.1437) > 0.005 {
		t.Fatalf("reference case: p=%v, want ~0.1437", p)
	}
}

func TestMannWhitneyUSmallSamples(t *testing.T) {
	if _, ok := MannWhitneyU([]float64{1, 2, 3}, []float64{4, 5, 6, 7}); ok {
		t.Fatal("3 samples per side should decline the test")
	}
	if _, ok := MannWhitneyU([]float64{1, 1, 1, 1}, []float64{1, 1, 1, 1}); ok {
		t.Fatal("all-tied samples should decline the test")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	in := []float64{9, 1}
	_ = median(in)
	if in[0] != 9 {
		t.Fatal("median mutated its input")
	}
}
