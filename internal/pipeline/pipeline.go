// Package pipeline models the paper's AI model-construction pipeline
// (Fig. 4): data collection → cleaning → labelling → training → evaluation
// → deployment → monitoring. Every stage boundary is a hook point where AI
// sensors can be instrumented, which is how SPATIAL gauges trustworthy
// properties "in every step of the AI pipeline".
package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"

	"repro/internal/clock"
)

// Stage names one pipeline step.
type Stage string

// The standard stages, in canonical order.
const (
	StageCollect  Stage = "collect"
	StageClean    Stage = "clean"
	StageLabel    Stage = "label"
	StageTrain    Stage = "train"
	StageEvaluate Stage = "evaluate"
	StageDeploy   Stage = "deploy"
	StageMonitor  Stage = "monitor"
)

// State is the mutable context threaded through the stages.
type State struct {
	// Raw is the collected dataset; Train/Test are produced by the
	// labelling/split stage.
	Raw   *dataset.Table
	Train *dataset.Table
	Test  *dataset.Table
	// Model and Metrics are produced by the training and evaluation
	// stages.
	Model   ml.Classifier
	Metrics ml.Metrics
	// Values carries arbitrary stage outputs (clean reports, deploy
	// targets, ...).
	Values map[string]any
}

// StageFunc executes one stage against the shared state.
type StageFunc func(ctx context.Context, s *State) error

// Hook observes a stage after it completes — the instrumentation point for
// AI sensors. A hook error aborts the pipeline: a sensor that cannot
// measure a mandated property is a compliance failure, not a soft warning.
type Hook func(ctx context.Context, stage Stage, s *State) error

// StageResult records one executed stage.
type StageResult struct {
	Stage    Stage         `json:"stage"`
	Duration time.Duration `json:"durationNs"`
}

// Report summarizes a pipeline run.
type Report struct {
	Stages []StageResult `json:"stages"`
	Wall   time.Duration `json:"wallNs"`
}

// Pipeline is an ordered list of stages with attached hooks.
type Pipeline struct {
	stages []stageEntry
	hooks  []Hook
}

type stageEntry struct {
	stage Stage
	fn    StageFunc
}

// New returns an empty pipeline.
func New() *Pipeline { return &Pipeline{} }

// AddStage appends a stage. Stages run in insertion order.
func (p *Pipeline) AddStage(stage Stage, fn StageFunc) error {
	if stage == "" {
		return fmt.Errorf("pipeline: empty stage name")
	}
	if fn == nil {
		return fmt.Errorf("pipeline: stage %q has nil function", stage)
	}
	p.stages = append(p.stages, stageEntry{stage: stage, fn: fn})
	return nil
}

// AddHook attaches a hook invoked after every stage.
func (p *Pipeline) AddHook(h Hook) error {
	if h == nil {
		return fmt.Errorf("pipeline: nil hook")
	}
	p.hooks = append(p.hooks, h)
	return nil
}

// Run executes the pipeline. The returned state is valid up to the point
// of failure.
func (p *Pipeline) Run(ctx context.Context) (*State, Report, error) {
	if len(p.stages) == 0 {
		return nil, Report{}, fmt.Errorf("pipeline: no stages")
	}
	state := &State{Values: make(map[string]any)}
	var rep Report
	start := clock.Real().Now()
	for _, e := range p.stages {
		if err := ctx.Err(); err != nil {
			return state, rep, err
		}
		stageStart := clock.Real().Now()
		if err := e.fn(ctx, state); err != nil {
			return state, rep, fmt.Errorf("stage %q: %w", e.stage, err)
		}
		rep.Stages = append(rep.Stages, StageResult{Stage: e.stage, Duration: clock.Real().Since(stageStart)})
		for _, h := range p.hooks {
			if err := h(ctx, e.stage, state); err != nil {
				return state, rep, fmt.Errorf("hook after stage %q: %w", e.stage, err)
			}
		}
	}
	rep.Wall = clock.Real().Since(start)
	return state, rep, nil
}

// Standard builds the paper's standard pipeline for a supervised task:
// collect via the supplied loader, clean, stratified split (the "label"
// stage — labels are already present in the synthetic corpora), train the
// named algorithm, and evaluate. Deployment and monitoring are left to the
// caller (SPATIAL's core wires those).
func Standard(load func(ctx context.Context) (*dataset.Table, error), algorithm string, trainFrac float64, seed int64) (*Pipeline, error) {
	if load == nil {
		return nil, fmt.Errorf("pipeline: nil loader")
	}
	p := New()
	if err := p.AddStage(StageCollect, func(ctx context.Context, s *State) error {
		t, err := load(ctx)
		if err != nil {
			return err
		}
		s.Raw = t
		return nil
	}); err != nil {
		return nil, err
	}
	if err := p.AddStage(StageClean, func(_ context.Context, s *State) error {
		rep := dataset.Clean(s.Raw)
		s.Values["cleanReport"] = rep
		return s.Raw.Validate()
	}); err != nil {
		return nil, err
	}
	if err := p.AddStage(StageLabel, func(_ context.Context, s *State) error {
		rng := newRand(seed)
		train, test, err := s.Raw.StratifiedSplit(rng, trainFrac)
		if err != nil {
			return err
		}
		s.Train, s.Test = train, test
		return nil
	}); err != nil {
		return nil, err
	}
	if err := p.AddStage(StageTrain, func(_ context.Context, s *State) error {
		model, err := ml.NewByName(algorithm, seed)
		if err != nil {
			return err
		}
		if err := model.Fit(s.Train); err != nil {
			return err
		}
		s.Model = model
		return nil
	}); err != nil {
		return nil, err
	}
	if err := p.AddStage(StageEvaluate, func(_ context.Context, s *State) error {
		m, err := ml.Evaluate(s.Model, s.Test)
		if err != nil {
			return err
		}
		s.Metrics = m
		return nil
	}); err != nil {
		return nil, err
	}
	return p, nil
}
