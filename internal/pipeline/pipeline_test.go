package pipeline

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func loader(n int) func(ctx context.Context) (*dataset.Table, error) {
	return func(context.Context) (*dataset.Table, error) {
		rng := rand.New(rand.NewSource(1))
		tb := dataset.New("toy", []string{"f0", "f1"}, []string{"a", "b"})
		for i := 0; i < n; i++ {
			y := i % 2
			_ = tb.Append([]float64{float64(y)*4 + rng.NormFloat64(), rng.NormFloat64()}, y)
		}
		// One dirty row for the clean stage to fix.
		tb.X = append(tb.X, []float64{math.NaN(), 0})
		tb.Y = append(tb.Y, 0)
		return tb, nil
	}
}

func TestStandardPipelineEndToEnd(t *testing.T) {
	p, err := Standard(loader(200), "dt", 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	var stagesSeen []Stage
	if err := p.AddHook(func(_ context.Context, stage Stage, s *State) error {
		stagesSeen = append(stagesSeen, stage)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	state, rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state.Model == nil {
		t.Fatal("no model trained")
	}
	if state.Metrics.Accuracy < 0.9 {
		t.Fatalf("pipeline model accuracy %.3f", state.Metrics.Accuracy)
	}
	want := []Stage{StageCollect, StageClean, StageLabel, StageTrain, StageEvaluate}
	if len(stagesSeen) != len(want) {
		t.Fatalf("hook saw %v", stagesSeen)
	}
	for i := range want {
		if stagesSeen[i] != want[i] {
			t.Fatalf("stage order %v", stagesSeen)
		}
	}
	if len(rep.Stages) != 5 || rep.Wall <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if _, ok := state.Values["cleanReport"].(dataset.CleanReport); !ok {
		t.Fatal("clean report missing from state values")
	}
}

func TestStageErrorAborts(t *testing.T) {
	p := New()
	_ = p.AddStage(StageCollect, func(context.Context, *State) error { return nil })
	boom := errors.New("boom")
	_ = p.AddStage(StageTrain, func(context.Context, *State) error { return boom })
	ran := false
	_ = p.AddStage(StageEvaluate, func(context.Context, *State) error { ran = true; return nil })
	_, rep, err := p.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
	if ran {
		t.Fatal("stage after failure executed")
	}
	if len(rep.Stages) != 1 {
		t.Fatalf("report should contain only completed stages: %+v", rep)
	}
}

func TestHookErrorAborts(t *testing.T) {
	p := New()
	_ = p.AddStage(StageCollect, func(context.Context, *State) error { return nil })
	boom := errors.New("sensor down")
	_ = p.AddHook(func(context.Context, Stage, *State) error { return boom })
	_, _, err := p.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("error %v", err)
	}
}

func TestRunHonorsContext(t *testing.T) {
	p := New()
	_ = p.AddStage(StageCollect, func(context.Context, *State) error { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.Run(ctx); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestValidationErrors(t *testing.T) {
	p := New()
	if err := p.AddStage("", func(context.Context, *State) error { return nil }); err == nil {
		t.Fatal("expected empty-stage error")
	}
	if err := p.AddStage(StageCollect, nil); err == nil {
		t.Fatal("expected nil-func error")
	}
	if err := p.AddHook(nil); err == nil {
		t.Fatal("expected nil-hook error")
	}
	if _, _, err := New().Run(context.Background()); err == nil {
		t.Fatal("expected no-stages error")
	}
	if _, err := Standard(nil, "dt", 0.8, 1); err == nil {
		t.Fatal("expected nil-loader error")
	}
}

func TestStandardPipelineUnknownAlgorithm(t *testing.T) {
	p, err := Standard(loader(50), "quantum", 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = p.Run(context.Background())
	if err == nil {
		t.Fatal("expected unknown-algorithm failure at train stage")
	}
}
