package pipeline

import "math/rand"

// newRand isolates the pipeline's randomness behind a seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
