package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

// DPLogRegConfig configures differentially-private multinomial logistic
// regression (DP-SGD: per-sample gradient clipping + Gaussian noise).
type DPLogRegConfig struct {
	LearningRate    float64 `json:"learningRate"`
	Epochs          int     `json:"epochs"`
	BatchSize       int     `json:"batchSize"`
	ClipNorm        float64 `json:"clipNorm"`
	NoiseMultiplier float64 `json:"noiseMultiplier"`
	Seed            int64   `json:"seed"`
}

// DefaultDPLogRegConfig returns a moderate-privacy configuration.
func DefaultDPLogRegConfig() DPLogRegConfig {
	return DPLogRegConfig{
		LearningRate: 0.1, Epochs: 40, BatchSize: 32,
		ClipNorm: 1.0, NoiseMultiplier: 1.0, Seed: 1,
	}
}

// DPLogReg is the differentially-private variant of ml.LogReg. Per-sample
// gradients are L2-clipped to ClipNorm and batch sums are perturbed with
// Gaussian noise of scale NoiseMultiplier·ClipNorm before the update.
type DPLogReg struct {
	Cfg DPLogRegConfig

	// W is (classes)×(features+1); the last column is the bias.
	W       *mat.Dense
	classes int
	dim     int
	steps   int
	samples int
}

var _ ml.Classifier = (*DPLogReg)(nil)

// NewDPLogReg constructs an untrained model.
func NewDPLogReg(cfg DPLogRegConfig) *DPLogReg { return &DPLogReg{Cfg: cfg} }

// Name implements ml.Classifier.
func (m *DPLogReg) Name() string { return "dp-lr" }

// NumClasses implements ml.Classifier.
func (m *DPLogReg) NumClasses() int { return m.classes }

// Fit implements ml.Classifier with DP-SGD.
func (m *DPLogReg) Fit(t *dataset.Table) error {
	if t.Len() == 0 {
		return fmt.Errorf("dp-lr fit: empty dataset")
	}
	if m.Cfg.Epochs <= 0 || m.Cfg.LearningRate <= 0 {
		return fmt.Errorf("dp-lr fit: invalid config %+v", m.Cfg)
	}
	if m.Cfg.ClipNorm <= 0 {
		return fmt.Errorf("dp-lr fit: ClipNorm must be positive")
	}
	if m.Cfg.NoiseMultiplier < 0 {
		return fmt.Errorf("dp-lr fit: NoiseMultiplier must be non-negative")
	}
	m.classes = t.NumClasses()
	m.dim = t.NumFeatures()
	m.samples = t.Len()
	m.steps = 0
	m.W = mat.NewDense(m.classes, m.dim+1)
	rng := rand.New(rand.NewSource(m.Cfg.Seed))

	batch := m.Cfg.BatchSize
	if batch <= 0 || batch > t.Len() {
		batch = t.Len()
	}
	n := t.Len()
	order := rng.Perm(n)
	logits := make([]float64, m.classes)
	probs := make([]float64, m.classes)
	sampleGrad := mat.NewDense(m.classes, m.dim+1)
	batchGrad := mat.NewDense(m.classes, m.dim+1)
	noiseStd := m.Cfg.NoiseMultiplier * m.Cfg.ClipNorm

	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			for r := 0; r < m.classes; r++ {
				row := batchGrad.Row(r)
				for j := range row {
					row[j] = 0
				}
			}
			for _, idx := range order[start:end] {
				m.sampleGradient(t.X[idx], t.Y[idx], logits, probs, sampleGrad)
				clipInto(sampleGrad, batchGrad, m.Cfg.ClipNorm)
			}
			// Gaussian mechanism on the summed clipped gradients.
			scale := m.Cfg.LearningRate / float64(end-start)
			for r := 0; r < m.classes; r++ {
				wrow := m.W.Row(r)
				grow := batchGrad.Row(r)
				for j := range wrow {
					noisy := grow[j]
					if noiseStd > 0 {
						noisy += rng.NormFloat64() * noiseStd
					}
					wrow[j] -= scale * noisy
				}
			}
			m.steps++
		}
	}
	return nil
}

// sampleGradient computes one sample's gradient into dst.
func (m *DPLogReg) sampleGradient(x []float64, y int, logits, probs []float64, dst *mat.Dense) {
	for k := 0; k < m.classes; k++ {
		row := m.W.Row(k)
		s := row[m.dim]
		for j, v := range x {
			s += row[j] * v
		}
		logits[k] = s
	}
	mat.Softmax(logits, probs)
	for k := 0; k < m.classes; k++ {
		delta := probs[k]
		if k == y {
			delta -= 1
		}
		drow := dst.Row(k)
		for j, v := range x {
			drow[j] = delta * v
		}
		drow[m.dim] = delta
	}
}

// clipInto L2-clips src to clipNorm and accumulates it into dst.
func clipInto(src, dst *mat.Dense, clipNorm float64) {
	var norm2 float64
	for r := 0; r < src.Rows(); r++ {
		for _, v := range src.Row(r) {
			norm2 += v * v
		}
	}
	scale := 1.0
	if norm := math.Sqrt(norm2); norm > clipNorm {
		scale = clipNorm / norm
	}
	for r := 0; r < src.Rows(); r++ {
		srow, drow := src.Row(r), dst.Row(r)
		for j, v := range srow {
			drow[j] += v * scale
		}
	}
}

// PredictProba implements ml.Classifier.
func (m *DPLogReg) PredictProba(x []float64) []float64 {
	if m.W == nil {
		panic(ml.ErrNotTrained)
	}
	logits := make([]float64, m.classes)
	for k := 0; k < m.classes; k++ {
		// Reslice hints: W is classes x (dim+1) with the bias last.
		row := m.W.Row(k)[:m.dim+1]
		s := row[m.dim]
		w := row[:len(x)]
		for j, v := range x {
			s += w[j] * v
		}
		logits[k] = s
	}
	return mat.Softmax(logits, nil)
}

// Epsilon reports the approximate (ε, δ)-DP budget spent by the last Fit.
func (m *DPLogReg) Epsilon(delta float64) (float64, error) {
	if m.steps == 0 {
		return 0, fmt.Errorf("dp-lr: model not trained")
	}
	if m.Cfg.NoiseMultiplier == 0 {
		return math.Inf(1), nil
	}
	batch := m.Cfg.BatchSize
	if batch <= 0 || batch > m.samples {
		batch = m.samples
	}
	q := float64(batch) / float64(m.samples)
	return ApproxEpsilon(m.Cfg.NoiseMultiplier, q, m.steps, delta)
}
