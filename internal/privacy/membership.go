// Package privacy implements the privacy side of SPATIAL's trustworthy
// properties: a membership-inference attack (the confidentiality threat of
// Fig. 1 — "its output predictions leak information that can be used to
// ... reconstruct its training data") used as a measurable privacy sensor,
// and differentially-private training as the corresponding mitigation.
package privacy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// MembershipResult quantifies how well a confidence-threshold attacker
// (Yeom et al. style) separates training members from non-members.
type MembershipResult struct {
	// Advantage is TPR − FPR at the attacker's best threshold, in
	// [0, 1]; 0 means the model leaks nothing.
	Advantage float64 `json:"advantage"`
	// AttackAccuracy is the attacker's best balanced accuracy.
	AttackAccuracy float64 `json:"attackAccuracy"`
	// Threshold is the confidence cut the attacker would deploy.
	Threshold float64 `json:"threshold"`
	// MeanMemberConf / MeanNonMemberConf expose the raw gap.
	MeanMemberConf    float64 `json:"meanMemberConf"`
	MeanNonMemberConf float64 `json:"meanNonMemberConf"`
}

// MembershipInference runs the confidence-threshold attack: the model's
// confidence in the true label is computed for known members (training
// rows) and non-members (held-out rows), and the attacker picks the
// threshold maximizing balanced accuracy. Models that overfit assign
// visibly higher confidence to members and yield a positive advantage.
func MembershipInference(model ml.Classifier, members, nonMembers *dataset.Table) (MembershipResult, error) {
	if model == nil {
		return MembershipResult{}, fmt.Errorf("privacy: nil model")
	}
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return MembershipResult{}, fmt.Errorf("privacy: need both member and non-member samples")
	}
	confidences := func(t *dataset.Table) []float64 {
		out := make([]float64, t.Len())
		for i, x := range t.X {
			out[i] = model.PredictProba(x)[t.Y[i]]
		}
		return out
	}
	memberConf := confidences(members)
	nonMemberConf := confidences(nonMembers)

	res := MembershipResult{
		MeanMemberConf:    mean(memberConf),
		MeanNonMemberConf: mean(nonMemberConf),
	}

	// Sweep candidate thresholds (every observed confidence).
	candidates := make([]float64, 0, len(memberConf)+len(nonMemberConf))
	candidates = append(candidates, memberConf...)
	candidates = append(candidates, nonMemberConf...)
	sort.Float64s(candidates)

	best := -1.0
	for _, thr := range candidates {
		tpr := fracAtLeast(memberConf, thr)
		fpr := fracAtLeast(nonMemberConf, thr)
		adv := tpr - fpr
		if adv > best {
			best = adv
			res.Threshold = thr
		}
	}
	if best < 0 {
		best = 0
	}
	res.Advantage = best
	res.AttackAccuracy = 0.5 + best/2
	return res, nil
}

func fracAtLeast(vals []float64, thr float64) float64 {
	n := 0
	for _, v := range vals {
		if v >= thr {
			n++
		}
	}
	return float64(n) / float64(len(vals))
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// PrivacyScore converts an attack advantage into a [0, 1] sensor value
// (1 = no measurable leakage), the normalization SPATIAL's privacy sensor
// publishes.
func PrivacyScore(advantage float64) float64 {
	if advantage <= 0 {
		return 1
	}
	if advantage >= 1 {
		return 0
	}
	return 1 - advantage
}

// ApproxEpsilon estimates the (ε, δ)-DP budget of DP-SGD-style training
// with the given noise multiplier, sampling rate and number of steps,
// using the strong-composition-style bound
//
//	ε ≈ q·steps^(1/2) · sqrt(2·ln(1/δ)) / σ
//
// This is a coarse, documented approximation (the reproduction does not
// ship a moments accountant); it is monotone in the right directions —
// more noise → smaller ε, more steps or higher sampling rate → larger ε —
// which is what the privacy sensor needs.
func ApproxEpsilon(noiseMultiplier, samplingRate float64, steps int, delta float64) (float64, error) {
	if noiseMultiplier <= 0 {
		return 0, fmt.Errorf("privacy: noise multiplier must be positive")
	}
	if samplingRate <= 0 || samplingRate > 1 {
		return 0, fmt.Errorf("privacy: sampling rate %v outside (0,1]", samplingRate)
	}
	if steps <= 0 {
		return 0, fmt.Errorf("privacy: steps must be positive")
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("privacy: delta %v outside (0,1)", delta)
	}
	return samplingRate * math.Sqrt(float64(steps)) * math.Sqrt(2*math.Log(1/delta)) / noiseMultiplier, nil
}
