package privacy

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// noisyBlobs builds a two-class task with enough overlap that an
// overfitting model memorizes rather than generalizes.
func noisyBlobs(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("noisy", []string{"f0", "f1", "f2", "f3"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		row := []float64{
			float64(y)*1.2 + rng.NormFloat64(),
			rng.NormFloat64(),
			rng.NormFloat64(),
			rng.NormFloat64(),
		}
		_ = tb.Append(row, y)
	}
	return tb
}

func TestMembershipInferenceDetectsOverfitting(t *testing.T) {
	data := noisyBlobs(1, 400)
	rng := rand.New(rand.NewSource(1))
	train, test, err := data.StratifiedSplit(rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// An unconstrained tree memorizes its training set perfectly.
	overfit := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: 1})
	if err := overfit.Fit(train); err != nil {
		t.Fatal(err)
	}
	res, err := MembershipInference(overfit, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage < 0.2 {
		t.Fatalf("overfit model advantage %.3f too low", res.Advantage)
	}
	if res.MeanMemberConf <= res.MeanNonMemberConf {
		t.Fatal("members should have higher confidence")
	}
	if res.AttackAccuracy < 0.5 || res.AttackAccuracy > 1 {
		t.Fatalf("attack accuracy %.3f out of range", res.AttackAccuracy)
	}
}

func TestMembershipInferenceLowOnGeneralizingModel(t *testing.T) {
	data := noisyBlobs(2, 400)
	rng := rand.New(rand.NewSource(2))
	train, test, err := data.StratifiedSplit(rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lr := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	res, err := MembershipInference(lr, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage > 0.15 {
		t.Fatalf("generalizing model advantage %.3f suspiciously high", res.Advantage)
	}
}

func TestMembershipInferenceValidation(t *testing.T) {
	data := noisyBlobs(3, 10)
	empty := dataset.New("e", data.FeatureNames, data.ClassNames)
	m := ml.NewTree(ml.DefaultTreeConfig())
	if err := m.Fit(data); err != nil {
		t.Fatal(err)
	}
	if _, err := MembershipInference(nil, data, data); err == nil {
		t.Fatal("expected nil-model error")
	}
	if _, err := MembershipInference(m, empty, data); err == nil {
		t.Fatal("expected empty-members error")
	}
}

func TestPrivacyScore(t *testing.T) {
	if PrivacyScore(0) != 1 || PrivacyScore(-1) != 1 {
		t.Fatal("no leakage should score 1")
	}
	if PrivacyScore(1) != 0 || PrivacyScore(2) != 0 {
		t.Fatal("total leakage should score 0")
	}
	if math.Abs(PrivacyScore(0.3)-0.7) > 1e-12 {
		t.Fatal("linear mapping broken")
	}
}

func TestDPLogRegLearnsWithModerateNoise(t *testing.T) {
	data := noisyBlobs(4, 600)
	rng := rand.New(rand.NewSource(4))
	train, test, err := data.StratifiedSplit(rng, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDPLogRegConfig()
	cfg.NoiseMultiplier = 0.5
	m := NewDPLogReg(cfg)
	if err := m.Fit(train); err != nil {
		t.Fatal(err)
	}
	metrics, err := ml.Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Accuracy < 0.6 {
		t.Fatalf("dp-lr accuracy %.3f too low", metrics.Accuracy)
	}
}

func TestDPLogRegNoiseDegradesGracefully(t *testing.T) {
	data := noisyBlobs(5, 600)
	accWithNoise := func(noise float64) float64 {
		cfg := DefaultDPLogRegConfig()
		cfg.NoiseMultiplier = noise
		m := NewDPLogReg(cfg)
		if err := m.Fit(data); err != nil {
			t.Fatal(err)
		}
		metrics, err := ml.Evaluate(m, data)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Accuracy
	}
	clean := accWithNoise(0)
	veryNoisy := accWithNoise(50)
	if veryNoisy >= clean {
		t.Fatalf("extreme noise should hurt: %.3f vs %.3f", veryNoisy, clean)
	}
}

func TestDPLogRegEpsilonMonotonicity(t *testing.T) {
	data := noisyBlobs(6, 200)
	epsAt := func(noise float64) float64 {
		cfg := DefaultDPLogRegConfig()
		cfg.NoiseMultiplier = noise
		m := NewDPLogReg(cfg)
		if err := m.Fit(data); err != nil {
			t.Fatal(err)
		}
		eps, err := m.Epsilon(1e-5)
		if err != nil {
			t.Fatal(err)
		}
		return eps
	}
	if epsAt(2) >= epsAt(0.5) {
		t.Fatal("more noise must give smaller epsilon")
	}
}

func TestDPLogRegEpsilonUntrained(t *testing.T) {
	m := NewDPLogReg(DefaultDPLogRegConfig())
	if _, err := m.Epsilon(1e-5); err == nil {
		t.Fatal("expected not-trained error")
	}
}

func TestDPLogRegValidation(t *testing.T) {
	data := noisyBlobs(7, 50)
	bad := DefaultDPLogRegConfig()
	bad.ClipNorm = 0
	if err := NewDPLogReg(bad).Fit(data); err == nil {
		t.Fatal("expected clip error")
	}
	bad2 := DefaultDPLogRegConfig()
	bad2.NoiseMultiplier = -1
	if err := NewDPLogReg(bad2).Fit(data); err == nil {
		t.Fatal("expected noise error")
	}
	empty := dataset.New("e", data.FeatureNames, data.ClassNames)
	if err := NewDPLogReg(DefaultDPLogRegConfig()).Fit(empty); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestApproxEpsilonValidation(t *testing.T) {
	if _, err := ApproxEpsilon(0, 0.1, 10, 1e-5); err == nil {
		t.Fatal("expected noise error")
	}
	if _, err := ApproxEpsilon(1, 0, 10, 1e-5); err == nil {
		t.Fatal("expected rate error")
	}
	if _, err := ApproxEpsilon(1, 0.1, 0, 1e-5); err == nil {
		t.Fatal("expected steps error")
	}
	if _, err := ApproxEpsilon(1, 0.1, 10, 2); err == nil {
		t.Fatal("expected delta error")
	}
	eps, err := ApproxEpsilon(1, 0.1, 100, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Fatalf("epsilon %v", eps)
	}
}

// TestDPReducesMembershipAdvantage is the end-to-end privacy story: the
// same data, a non-private overfitting model vs the DP model, attacked
// with membership inference.
func TestDPReducesMembershipAdvantage(t *testing.T) {
	data := noisyBlobs(8, 500)
	rng := rand.New(rand.NewSource(8))
	train, test, err := data.StratifiedSplit(rng, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	overfit := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: 1})
	if err := overfit.Fit(train); err != nil {
		t.Fatal(err)
	}
	leaky, err := MembershipInference(overfit, train, test)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultDPLogRegConfig()
	cfg.NoiseMultiplier = 1.0
	dp := NewDPLogReg(cfg)
	if err := dp.Fit(train); err != nil {
		t.Fatal(err)
	}
	private, err := MembershipInference(dp, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if private.Advantage >= leaky.Advantage {
		t.Fatalf("DP training did not reduce leakage: %.3f vs %.3f", private.Advantage, leaky.Advantage)
	}
}
