// Package resilience implements the paper's two resilience metrics:
//
//   - Impact quantifies the extent of an attack's effect on the model —
//     performance drift for poisoning attacks, misclassification gain for
//     evasion attacks. Higher impact means a more vulnerable model.
//   - Complexity quantifies the effort an attacker needs — crafting cost
//     per adversarial sample for evasion, poisoned-data fraction for
//     poisoning. Higher complexity means a harder attack.
package resilience

import (
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"
)

// Report is the resilience assessment of one (model, attack) pair.
type Report struct {
	// Impact is in [0, 1]: 0 = the attack achieved nothing.
	Impact float64 `json:"impact"`
	// Complexity is the attacker-effort measure; its unit is in
	// ComplexityUnit ("us/sample" for evasion, "poison-fraction" for
	// poisoning).
	Complexity     float64 `json:"complexity"`
	ComplexityUnit string  `json:"complexityUnit"`
	// BaselineAccuracy and AttackedAccuracy give the drift context.
	BaselineAccuracy float64 `json:"baselineAccuracy"`
	AttackedAccuracy float64 `json:"attackedAccuracy"`
}

// PoisonImpact measures relative performance drift: (base − poisoned)/base
// on the given metric values, clamped to [0, 1]. Poisoning that improves
// the model reports zero impact.
func PoisonImpact(baseline, poisoned float64) float64 {
	if baseline <= 0 {
		return 0
	}
	imp := (baseline - poisoned) / baseline
	if imp < 0 {
		return 0
	}
	if imp > 1 {
		return 1
	}
	return imp
}

// Poisoning builds the resilience report for a poisoning attack from the
// baseline and poisoned evaluation metrics and the poison rate, which is
// the attack's complexity measure (the attacker must control that fraction
// of the training data).
func Poisoning(baseline, poisoned ml.Metrics, rate float64) (Report, error) {
	if rate < 0 || rate > 1 {
		return Report{}, fmt.Errorf("resilience: poison rate %v outside [0,1]", rate)
	}
	return Report{
		Impact:           PoisonImpact(baseline.Accuracy, poisoned.Accuracy),
		Complexity:       rate,
		ComplexityUnit:   "poison-fraction",
		BaselineAccuracy: baseline.Accuracy,
		AttackedAccuracy: poisoned.Accuracy,
	}, nil
}

// Evasion builds the resilience report for an evasion attack: impact is
// the fraction of originally-correct predictions flipped by the
// adversarial inputs (misclassification gain), and complexity is the
// measured crafting cost per sample in microseconds.
func Evasion(victim ml.Classifier, clean, adversarial *dataset.Table, craftCost time.Duration) (Report, error) {
	if clean.Len() == 0 || clean.Len() != adversarial.Len() {
		return Report{}, fmt.Errorf("resilience: clean/adversarial size mismatch %d vs %d", clean.Len(), adversarial.Len())
	}
	var correctBefore, flipped int
	for i := range clean.X {
		before := ml.Predict(victim, clean.X[i])
		if before != clean.Y[i] {
			continue
		}
		correctBefore++
		if ml.Predict(victim, adversarial.X[i]) != clean.Y[i] {
			flipped++
		}
	}
	var impact float64
	if correctBefore > 0 {
		impact = float64(flipped) / float64(correctBefore)
	}
	baseMetrics, err := ml.Evaluate(victim, clean)
	if err != nil {
		return Report{}, fmt.Errorf("evasion baseline eval: %w", err)
	}
	advMetrics, err := ml.Evaluate(victim, adversarial)
	if err != nil {
		return Report{}, fmt.Errorf("evasion attacked eval: %w", err)
	}
	return Report{
		Impact:           impact,
		Complexity:       float64(craftCost.Nanoseconds()) / 1e3,
		ComplexityUnit:   "us/sample",
		BaselineAccuracy: baseMetrics.Accuracy,
		AttackedAccuracy: advMetrics.Accuracy,
	}, nil
}
