package resilience

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/ml"
)

func TestPoisonImpact(t *testing.T) {
	cases := []struct {
		base, poisoned, want float64
	}{
		{1.0, 0.5, 0.5},
		{0.9, 0.9, 0},
		{0.8, 0.9, 0}, // improvement clamps to zero
		{0, 0.5, 0},   // degenerate baseline
		{0.5, -1, 1},  // clamp to 1
	}
	for _, c := range cases {
		if got := PoisonImpact(c.base, c.poisoned); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("PoisonImpact(%v,%v) = %v, want %v", c.base, c.poisoned, got, c.want)
		}
	}
}

func TestPoisoningReport(t *testing.T) {
	base := ml.Metrics{Accuracy: 0.96}
	poisoned := ml.Metrics{Accuracy: 0.72}
	rep, err := Poisoning(base, poisoned, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComplexityUnit != "poison-fraction" || rep.Complexity != 0.3 {
		t.Fatalf("complexity %+v", rep)
	}
	if math.Abs(rep.Impact-0.25) > 1e-12 {
		t.Fatalf("impact %v, want 0.25", rep.Impact)
	}
	if _, err := Poisoning(base, poisoned, 1.5); err == nil {
		t.Fatal("expected rate error")
	}
}

func TestEvasionReport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < 300; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y)
	}
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	res, err := attack.FGSM(m, tb, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evasion(m, tb, res.Adversarial, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Impact <= 0 {
		t.Fatalf("strong FGSM should have positive impact, got %v", rep.Impact)
	}
	if rep.Impact > 1 {
		t.Fatalf("impact %v > 1", rep.Impact)
	}
	if math.Abs(rep.Complexity-50) > 1e-9 || rep.ComplexityUnit != "us/sample" {
		t.Fatalf("complexity %v %s", rep.Complexity, rep.ComplexityUnit)
	}
	if rep.BaselineAccuracy <= rep.AttackedAccuracy {
		t.Fatalf("attacked accuracy %v should be below baseline %v", rep.AttackedAccuracy, rep.BaselineAccuracy)
	}
}

func TestEvasionSizeMismatch(t *testing.T) {
	tb := dataset.New("x", []string{"f"}, []string{"a", "b"})
	_ = tb.Append([]float64{1}, 0)
	other := dataset.New("y", []string{"f"}, []string{"a", "b"})
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	_ = tb.Append([]float64{2}, 1)
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	if _, err := Evasion(m, tb, other, 0); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestEvasionZeroImpactOnNoopAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := dataset.New("sep", []string{"f0"}, []string{"a", "b"})
	for i := 0; i < 100; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*6 - 3 + rng.NormFloat64()*0.3}, y)
	}
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	rep, err := Evasion(m, tb, tb.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Impact != 0 {
		t.Fatalf("identical adversarial set should have zero impact, got %v", rep.Impact)
	}
}
