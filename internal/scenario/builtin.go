package scenario

import "time"

// dur is shorthand for Duration literals in the built-in library.
func dur(d time.Duration) Duration { return Duration(d) }

// The built-in scenario library. The paper's two evaluation stories are
// the first two entries; the rest generalize them across the traffic
// shapes, faults, and adversarial actions the engine composes. Every
// entry is Smoke (deterministic under clock.Fake with a fixed seed), so
// CI replays the whole library and diffs byte-identical scorecards.
func init() {
	// Use case 1 (fall detection, UniMiB-style): a label-flip poison
	// wave hits the training feedback stream under steady traffic. The
	// poison sensor (prediction/label disagreement) and the drift sensor
	// watch the stream; the scorecard's detection delay is the time from
	// wave start to the first alert.
	mustRegister(defaultLibrary, Scenario{
		Name:        "uc1-fall-poison",
		Description: "Paper use case 1: label-flip poisoning of the fall-detection stream under steady traffic.",
		UseCase:     "uc1",
		Workload:    WorkloadFall,
		Seed:        1,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(150 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
			{Name: "poison-wave", Duration: dur(10 * time.Second),
				Shape:       Shape{Kind: ShapeSteady, BaseRPS: 40},
				Adversarial: &Adversarial{Kind: AdvPoisonWave, Rate: 0.3, Target: -1}},
			{Name: "recovery", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
		},
	})

	// Use case 2 (network-traffic classification): an FGSM burst crafts
	// white-box evasion samples against the live model. Detection comes
	// from the poison sensor (prediction/label agreement collapses on
	// evasive inputs) and the drift sensor (the ±eps perturbation shifts
	// every feature's distribution).
	mustRegister(defaultLibrary, Scenario{
		Name:        "uc2-net-fgsm",
		Description: "Paper use case 2: FGSM evasion burst against the network-traffic classifier.",
		UseCase:     "uc2",
		Workload:    WorkloadNetTraffic,
		Seed:        2,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(150 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
			{Name: "fgsm-burst", Duration: dur(8 * time.Second),
				Shape:       Shape{Kind: ShapeSteady, BaseRPS: 40},
				Adversarial: &Adversarial{Kind: AdvFGSMBurst, Eps: 0.8}},
			{Name: "recovery", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
		},
	})

	// The capacity-load study: traffic ramps past the serving tier's
	// admission watermark. A healthy stack sheds (429) with a flat
	// latency profile instead of collapsing; the scorecard separates
	// sheds from SLO-violation seconds exactly like the paper's fig-8
	// reading.
	mustRegister(defaultLibrary, Scenario{
		Name:        "capacity-ramp",
		Description: "Paper capacity study: ramp through saturation, score sheds vs latency collapse, then recover.",
		UseCase:     "capacity",
		Workload:    WorkloadSynthetic,
		Seed:        3,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(200 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "warmup", Duration: dur(5 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 30}},
			{Name: "ramp", Duration: dur(20 * time.Second),
				Shape: Shape{Kind: ShapeRamp, BaseRPS: 30, PeakRPS: 400}},
			{Name: "cooldown", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
		},
	})

	// Flash crowd plus a poison wave timed to hide inside it: the
	// spike stresses admission control while the wave corrupts the
	// stream, probing whether detection delay survives overload.
	mustRegister(defaultLibrary, Scenario{
		Name:        "flash-crowd-poison",
		Description: "Flash-crowd spike with a poison wave hidden inside it; detection must survive overload.",
		UseCase:     "composed",
		Workload:    WorkloadFall,
		Seed:        4,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(200 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
			{Name: "crowd-poison", Duration: dur(10 * time.Second),
				Shape:       Shape{Kind: ShapeFlashCrowd, BaseRPS: 40, PeakRPS: 300, PeakAt: 0.3, PeakWidth: 0.4},
				Adversarial: &Adversarial{Kind: AdvPoisonWave, Rate: 0.35, Target: -1}},
			{Name: "recovery", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
		},
	})

	// A compressed day/night cycle with an induced-latency fault through
	// the chaos proxy during the second crest: scored on SLO-violation
	// seconds during the fault and recovery time after it clears.
	mustRegister(defaultLibrary, Scenario{
		Name:        "diurnal-latency-chaos",
		Description: "Diurnal traffic with an induced-latency fault at the crest; scored on SLO burn and recovery.",
		UseCase:     "chaos",
		Workload:    WorkloadSynthetic,
		Seed:        5,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(150 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "cycle-1", Duration: dur(10 * time.Second),
				Shape: Shape{Kind: ShapeDiurnal, BaseRPS: 20, PeakRPS: 80, Period: dur(10 * time.Second)}},
			{Name: "cycle-2-slow", Duration: dur(10 * time.Second),
				Shape: Shape{Kind: ShapeDiurnal, BaseRPS: 20, PeakRPS: 80, Period: dur(10 * time.Second)},
				Fault: &Fault{Kind: FaultLatency, Latency: dur(250 * time.Millisecond), Jitter: dur(50 * time.Millisecond), Rate: 0.7}},
			{Name: "cycle-3", Duration: dur(10 * time.Second),
				Shape: Shape{Kind: ShapeDiurnal, BaseRPS: 20, PeakRPS: 80, Period: dur(10 * time.Second)}},
		},
	})

	// An upstream error burst behind steady traffic: the gateway's
	// breaker and the SLO error-rate bound absorb it; the scorecard's
	// recovery time measures how fast the error rate returns under the
	// bound once the burst ends.
	mustRegister(defaultLibrary, Scenario{
		Name:        "error-burst-breaker",
		Description: "Upstream error burst via the chaos proxy; scored on error-rate SLO burn and recovery time.",
		UseCase:     "chaos",
		Workload:    WorkloadSynthetic,
		Seed:        6,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(150 * time.Millisecond), MaxErrorRate: 0.05},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 50}},
			{Name: "error-burst", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 50},
				Fault: &Fault{Kind: FaultErrorBurst, Rate: 0.5, Code: 503}},
			{Name: "recovery", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 50}},
		},
	})

	// The cluster tier's failover story: a flash crowd builds, the shard
	// owner is killed at its peak, traffic reroutes to ring successors
	// (counted in Faults.Rerouted) while the crowd is still up, and the
	// replica restarts before the cooldown. Scored on recovery time
	// after the restart and on the rerouted-request count — both
	// deterministic under the fake clock.
	mustRegister(defaultLibrary, Scenario{
		Name:        "cluster-failover",
		Description: "Kill the shard owner mid-flash-crowd; score rerouted traffic and post-restart recovery.",
		UseCase:     "cluster",
		Workload:    WorkloadSynthetic,
		Seed:        8,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(250 * time.Millisecond), MaxErrorRate: 0.02},
		Cluster:     &ClusterSpec{Replicas: 3},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
			{Name: "crowd-builds", Duration: dur(4 * time.Second),
				Shape: Shape{Kind: ShapeRamp, BaseRPS: 40, PeakRPS: 140}},
			{Name: "owner-killed", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 140},
				Fault: &Fault{Kind: FaultReplicaKill}},
			{Name: "owner-restarts", Duration: dur(4 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 80},
				Fault: &Fault{Kind: FaultReplicaRestart}},
			{Name: "cooldown", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 40}},
		},
	})

	// Heavy-tailed arrivals with a covariate-shift ramp underneath: the
	// drift detector must separate a slow distribution shift from bursty
	// load noise.
	mustRegister(defaultLibrary, Scenario{
		Name:        "heavy-tail-drift",
		Description: "Heavy-tailed bursts over a covariate-shift ramp; drift detection under load noise.",
		UseCase:     "drift",
		Workload:    WorkloadNetTraffic,
		Seed:        7,
		Smoke:       true,
		SLO:         SLO{LatencyP95: dur(250 * time.Millisecond), MaxErrorRate: 0.02},
		Phases: []Phase{
			{Name: "baseline", Duration: dur(8 * time.Second),
				Shape: Shape{Kind: ShapeHeavyTail, BaseRPS: 30, PeakRPS: 200, Alpha: 1.5}},
			{Name: "shift-ramp", Duration: dur(12 * time.Second),
				Shape:       Shape{Kind: ShapeHeavyTail, BaseRPS: 30, PeakRPS: 200, Alpha: 1.5},
				Adversarial: &Adversarial{Kind: AdvCovariateShift, Magnitude: 2.5}},
			{Name: "settled", Duration: dur(6 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 30}},
		},
	})
}
