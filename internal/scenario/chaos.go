package scenario

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// ErrInjectedReset is the transport error the client-side chaos
// transport returns for FaultReset/FaultDown decisions — the in-process
// stand-in for a TCP RST.
var ErrInjectedReset = errors.New("scenario: injected connection reset")

// ChaosStats counts the faults a proxy or transport actually injected.
type ChaosStats struct {
	Delayed int64 `json:"delayed"`
	Errored int64 `json:"errored"`
	Reset   int64 `json:"reset"`
	Passed  int64 `json:"passed"`
	// Rerouted counts requests the virtual cluster served off their
	// shard owner after a replica kill (zero for single-target runs).
	Rerouted int64 `json:"rerouted"`
}

// chaosCore is the fault decision engine shared by the server-side proxy
// and the client-side transport: a settable Fault plus a seeded RNG so a
// fixed seed reproduces the same per-request decisions.
type chaosCore struct {
	clk clock.Clock

	mu    sync.Mutex
	fault *Fault
	rng   *rand.Rand

	delayed atomic.Int64
	errored atomic.Int64
	reset   atomic.Int64
	passed  atomic.Int64
}

func newChaosCore(clk clock.Clock, seed int64) *chaosCore {
	if clk == nil {
		clk = clock.Real()
	}
	return &chaosCore{clk: clk, rng: rand.New(rand.NewSource(seed))}
}

// SetFault installs (or, with nil, clears) the active fault. The
// executor calls this at phase boundaries.
func (c *chaosCore) SetFault(f *Fault) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f == nil {
		c.fault = nil
		return
	}
	cp := *f
	c.fault = &cp
}

// ActiveFault returns a copy of the installed fault, or nil.
func (c *chaosCore) ActiveFault() *Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fault == nil {
		return nil
	}
	cp := *c.fault
	return &cp
}

// Stats snapshots the injection counters.
func (c *chaosCore) Stats() ChaosStats {
	return ChaosStats{
		Delayed: c.delayed.Load(),
		Errored: c.errored.Load(),
		Reset:   c.reset.Load(),
		Passed:  c.passed.Load(),
	}
}

// decision is the resolved fate of one request.
type decision struct {
	delay time.Duration
	code  int  // > 0: answer with this status
	reset bool // abort the connection
}

// decide rolls the installed fault for one request.
func (c *chaosCore) decide() decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.fault
	if f == nil {
		c.passed.Add(1)
		return decision{}
	}
	if f.Kind == FaultDown {
		// A downed service refuses everything, no roll.
		c.reset.Add(1)
		return decision{reset: true}
	}
	if c.rng.Float64() >= f.rate() {
		c.passed.Add(1)
		return decision{}
	}
	switch f.Kind {
	case FaultLatency:
		d := f.Latency.D()
		if j := f.Jitter.D(); j > 0 {
			d += time.Duration(c.rng.Int63n(int64(2*j))) - j
		}
		if d < 0 {
			d = 0
		}
		c.delayed.Add(1)
		return decision{delay: d}
	case FaultErrorBurst:
		code := f.Code
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		c.errored.Add(1)
		return decision{code: code}
	case FaultReset:
		c.reset.Add(1)
		return decision{reset: true}
	default:
		c.passed.Add(1)
		return decision{}
	}
}

// ChaosProxy is the in-process misbehaving-upstream proxy inserted
// between the gateway and a service: it forwards requests to the target
// untouched until a Fault is installed, then injects latency, error
// bursts, connection resets, or a full outage without the upstream's
// cooperation. It is an http.Handler — mount it on a listener and point
// the gateway route at that listener instead of the service.
type ChaosProxy struct {
	*chaosCore
	proxy *httputil.ReverseProxy
}

// NewChaosProxy builds a proxy forwarding to the target base URL. The
// clock paces injected latency (tests pass clock.Fake); seed fixes the
// per-request fault rolls.
func NewChaosProxy(target string, clk clock.Clock, seed int64) (*ChaosProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("scenario: chaos target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("scenario: chaos target %q must be an absolute URL", target)
	}
	return &ChaosProxy{
		chaosCore: newChaosCore(clk, seed),
		proxy:     httputil.NewSingleHostReverseProxy(u),
	}, nil
}

// ServeHTTP applies the active fault, then (unless the request was
// consumed by it) forwards to the target.
func (p *ChaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d := p.decide()
	if d.reset {
		// http.ErrAbortHandler makes net/http drop the connection
		// without a response — the closest in-process stand-in for a
		// mid-flight TCP reset; the gateway's reverse proxy sees a
		// transport error and feeds its circuit breaker.
		panic(http.ErrAbortHandler)
	}
	if d.delay > 0 {
		select {
		case <-p.clk.After(d.delay):
		case <-r.Context().Done():
			return
		}
	}
	if d.code > 0 {
		http.Error(w, "injected fault", d.code)
		return
	}
	p.proxy.ServeHTTP(w, r)
}

// chaosTransport is the client-side form of the same fault engine: an
// http.RoundTripper wrapper the scenario executor installs into the
// load generator's HTTP client, so a campaign can degrade the network
// path itself without a second listener.
type chaosTransport struct {
	*chaosCore
	base http.RoundTripper
}

// NewChaosTransport wraps base (http.DefaultTransport when nil) with the
// fault engine and returns both the transport and the shared control
// handle for SetFault/Stats.
func NewChaosTransport(base http.RoundTripper, clk clock.Clock, seed int64) (http.RoundTripper, *ChaosControl) {
	if base == nil {
		base = http.DefaultTransport
	}
	core := newChaosCore(clk, seed)
	return &chaosTransport{chaosCore: core, base: base}, &ChaosControl{core}
}

// ChaosControl is the shared fault-control handle of a chaos transport.
type ChaosControl struct{ *chaosCore }

// RoundTrip implements http.RoundTripper.
func (t *chaosTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	d := t.decide()
	if d.reset {
		return nil, ErrInjectedReset
	}
	if d.delay > 0 {
		select {
		case <-t.clk.After(d.delay):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if d.code > 0 {
		return syntheticResponse(r, d.code), nil
	}
	return t.base.RoundTrip(r)
}

// syntheticResponse fabricates the error response an injecting middlebox
// would have produced.
func syntheticResponse(r *http.Request, code int) *http.Response {
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode: code,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"X-Chaos": []string{"injected"}},
		Body:       http.NoBody,
		Request:    r,
	}
}
