package scenario

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestChaosProxyFaultKinds(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer backend.Close()

	chaos, err := NewChaosProxy(backend.URL, clock.Real(), 42)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(chaos)
	defer front.Close()

	get := func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, front.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		return front.Client().Do(req)
	}

	// No fault: pass-through.
	resp, err := get()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pass-through: resp=%v err=%v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("pass-through body: %q", body)
	}

	// Error burst at rate 1 answers without the upstream.
	chaos.SetFault(&Fault{Kind: FaultErrorBurst, Code: http.StatusBadGateway})
	resp, err = get()
	if err != nil || resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("error burst: resp=%v err=%v", resp, err)
	}
	_ = resp.Body.Close()

	// Reset aborts the connection: the client sees a transport error.
	chaos.SetFault(&Fault{Kind: FaultReset})
	if resp, err := get(); err == nil {
		_ = resp.Body.Close()
		t.Fatal("reset: expected transport error")
	}

	// Down refuses everything regardless of rate.
	chaos.SetFault(&Fault{Kind: FaultDown, Rate: 0.000001})
	if resp, err := get(); err == nil {
		_ = resp.Body.Close()
		t.Fatal("down: expected transport error")
	}

	// Clearing restores pass-through.
	chaos.SetFault(nil)
	resp, err = get()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cleared: resp=%v err=%v", resp, err)
	}
	_ = resp.Body.Close()

	st := chaos.Stats()
	if st.Errored != 1 || st.Reset != 2 || st.Passed < 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestChaosProxyLatencyFault(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	chaos, err := NewChaosProxy(backend.URL, clock.Real(), 7)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(chaos)
	defer front.Close()

	chaos.SetFault(&Fault{Kind: FaultLatency, Latency: Duration(30 * time.Millisecond)})
	start := time.Now()
	resp, err := front.Client().Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency fault not applied: %v", elapsed)
	}
	if st := chaos.Stats(); st.Delayed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestChaosTransport(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer backend.Close()

	rt, ctl := NewChaosTransport(nil, clock.Real(), 3)
	client := &http.Client{Transport: rt, Timeout: 5 * time.Second}

	resp, err := client.Get(backend.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pass-through: resp=%v err=%v", resp, err)
	}
	_ = resp.Body.Close()

	// Injected status comes from the transport, not the server.
	ctl.SetFault(&Fault{Kind: FaultErrorBurst})
	resp, err = client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("X-Chaos") != "injected" {
		t.Fatalf("injected response: %+v", resp)
	}
	_ = resp.Body.Close()

	// Reset surfaces ErrInjectedReset through the client wrapper.
	ctl.SetFault(&Fault{Kind: FaultReset})
	resp, err = client.Get(backend.URL)
	if err == nil {
		_ = resp.Body.Close()
	}
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset: err=%v", err)
	}

	if f := ctl.ActiveFault(); f == nil || f.Kind != FaultReset {
		t.Fatalf("active fault: %+v", f)
	}
}

func TestChaosDeterministicDecisions(t *testing.T) {
	roll := func() []decision {
		core := newChaosCore(clock.Real(), 11)
		core.SetFault(&Fault{Kind: FaultErrorBurst, Rate: 0.5})
		out := make([]decision, 40)
		for i := range out {
			out[i] = core.decide()
		}
		return out
	}
	a, b := roll(), roll()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewChaosProxyRejectsBadTarget(t *testing.T) {
	if _, err := NewChaosProxy("not-a-url", clock.Real(), 1); err == nil {
		t.Fatal("relative target accepted")
	}
	if _, err := NewChaosProxy("://", clock.Real(), 1); err == nil {
		t.Fatal("garbage target accepted")
	}
}
