package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/loadgen"
	"repro/internal/sensor"
	"repro/internal/telemetry"
)

// FaultInjector is anything that can install a phase's fault: the chaos
// proxy, the chaos transport control, or the virtual target.
type FaultInjector interface {
	SetFault(*Fault)
}

// faultStats is implemented by injectors that count what they injected.
type faultStats interface {
	Stats() ChaosStats
}

// VirtualSampler is the deterministic service model a virtual run drives:
// the single closed-form VirtualTarget or the sharded VirtualCluster.
type VirtualSampler interface {
	// Sample resolves one request at the given offered load.
	Sample(offeredRPS float64) (time.Duration, error)
	// SetFault installs (or clears, with nil) the phase fault.
	SetFault(*Fault)
}

// Env wires a scenario run to its world. Exactly one of Virtual and
// Sampler must be set: Virtual runs the deterministic service model
// (requires clock.Fake — the executor owns the timeline), Sampler drives
// real requests (an HTTPSampler through the chaos-proxied client against
// the live stack).
type Env struct {
	// Clock paces the timeline; clock.Real() when nil. A *clock.Fake is
	// advanced tick-by-tick by the executor itself.
	Clock clock.Clock
	// Virtual is the deterministic target of smoke runs: a
	// *VirtualTarget or, for sharded scenarios, a *VirtualCluster.
	Virtual VirtualSampler
	// Sampler is the live-mode target.
	Sampler loadgen.Sampler
	// Injector receives each phase's fault; defaults to Virtual. In
	// live mode pass the ChaosProxy or ChaosControl.
	Injector FaultInjector
	// Stream, when set, emits (possibly adversarial) data batches on
	// the sensor cadence.
	Stream *Stream
	// Sensors, when set, is polled synchronously on the sensor cadence
	// (CollectOnce, never Start) so readings land on the scenario
	// timeline even under the fake clock. Its clock must be Env.Clock.
	Sensors *sensor.Manager
	// Telemetry, when set, receives scenario progress metrics and is
	// snapshotted into the record at the end of the run.
	Telemetry *telemetry.Registry
	// MaxConcurrent bounds live-mode in-flight requests (default 64).
	MaxConcurrent int
}

// PhaseMark records one executed phase's window on the run timeline.
type PhaseMark struct {
	Name        string       `json:"name"`
	Start       time.Time    `json:"start"`
	End         time.Time    `json:"end"`
	Fault       *Fault       `json:"fault,omitempty"`
	Adversarial *Adversarial `json:"adversarial,omitempty"`
}

// Record is everything a run produced; Score reduces it to a Scorecard.
type Record struct {
	Scenario Scenario
	Start    time.Time
	End      time.Time
	Results  *loadgen.Results
	Readings []sensor.Reading
	Marks    []PhaseMark
	// Chaos counts faults the injector actually delivered.
	Chaos ChaosStats
	// SensorErrors counts failed collections (they do not abort a run).
	SensorErrors int
	// Families is the telemetry snapshot taken at run end (nil without
	// Env.Telemetry); the scorer mines it for stack-side counters such
	// as the gateway shed total.
	Families []telemetry.Family
}

// runMetrics are the executor's own telemetry handles.
type runMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	phase    *telemetry.Gauge
}

func newRunMetrics(reg *telemetry.Registry, scenarioName string) *runMetrics {
	return &runMetrics{
		requests: reg.Counter("spatial_scenario_requests_total",
			"Requests issued by the scenario executor.", "scenario").With(scenarioName), //lint:ignore telemetry-cardinality scenario names are the bounded registered library
		errors: reg.Counter("spatial_scenario_errors_total",
			"Scenario requests that failed (including sheds).", "scenario").With(scenarioName), //lint:ignore telemetry-cardinality scenario names are the bounded registered library
		phase: reg.Gauge("spatial_scenario_phase",
			"Index of the phase the executor is in, per scenario.", "scenario").With(scenarioName), //lint:ignore telemetry-cardinality scenario names are the bounded registered library
	}
}

// Run executes the scenario timeline against the environment and returns
// the full run record. Under clock.Fake the virtual timeline is advanced
// by the executor, so a 30-second scenario completes in milliseconds and
// two runs with the same seed produce identical records.
func Run(ctx context.Context, sc Scenario, env Env) (*Record, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	clk := env.Clock
	if clk == nil {
		clk = clock.Real()
	}
	fake, isFake := clk.(*clock.Fake)
	if (env.Virtual == nil) == (env.Sampler == nil) {
		return nil, fmt.Errorf("scenario: set exactly one of Env.Virtual and Env.Sampler")
	}
	if env.Virtual != nil && !isFake {
		return nil, fmt.Errorf("scenario: the virtual target requires clock.Fake (the executor owns the timeline)")
	}
	injector := env.Injector
	if injector == nil && env.Virtual != nil {
		injector = env.Virtual
	}
	var met *runMetrics
	if env.Telemetry != nil {
		met = newRunMetrics(env.Telemetry, sc.Name)
	}
	maxConc := env.MaxConcurrent
	if maxConc <= 0 {
		maxConc = 64
	}

	var sensorNames []string
	if env.Sensors != nil {
		sensorNames = env.Sensors.Names()
		sort.Strings(sensorNames)
	}

	rng := rand.New(rand.NewSource(sc.Seed))
	tick := sc.tick()
	sensorEvery := sc.sensorEvery()

	rec := &Record{Scenario: sc, Start: clk.Now()}
	// Virtual mode appends to inline; live-mode goroutines append to
	// spawned under mu. Separate slices, merged at the end, so neither
	// path aliases the other's backing array.
	var (
		mu      sync.Mutex
		inline  []loadgen.Sample
		spawned []loadgen.Sample
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, maxConc)
	nextSensor := rec.Start.Add(sensorEvery)

	for pi, phase := range sc.Phases {
		if ctx.Err() != nil {
			break
		}
		if met != nil {
			met.phase.Set(float64(pi))
		}
		if injector != nil {
			injector.SetFault(phase.Fault)
		}
		mark := PhaseMark{
			Name:        phase.Name,
			Start:       clk.Now(),
			Fault:       phase.Fault,
			Adversarial: phase.Adversarial,
		}
		phaseDur := phase.Duration.D()
		acc := 0.0
		for elapsed := time.Duration(0); elapsed < phaseDur; elapsed += tick {
			if ctx.Err() != nil {
				break
			}
			// One uniform draw per tick keeps the seed stream aligned
			// across shapes; only heavy-tail consumes it.
			burstU := rng.Float64()
			rps := phase.Shape.RPS(elapsed, phaseDur, burstU)
			acc += rps * tick.Seconds()
			n := int(acc)
			acc -= float64(n)
			tickStart := clk.Now()

			if env.Virtual != nil {
				for i := 0; i < n; i++ {
					lat, err := env.Virtual.Sample(rps)
					s := loadgen.Sample{
						// Spread arrivals across the tick so SLO
						// windows see a smooth series.
						Start:   tickStart.Add(time.Duration(i) * tick / time.Duration(n)),
						Latency: lat,
						Err:     err,
					}
					inline = append(inline, s)
					if met != nil {
						met.requests.Inc()
						if err != nil {
							met.errors.Inc()
						}
					}
				}
			} else {
				for i := 0; i < n; i++ {
					select {
					case sem <- struct{}{}:
					case <-ctx.Done():
					}
					if ctx.Err() != nil {
						break
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { <-sem }()
						s := loadgen.Sample{
							Start:   clk.Now(),
							TraceID: telemetry.NewTraceID(),
						}
						s.Err = env.Sampler.Sample(telemetry.ContextWithTrace(ctx, s.TraceID, ""))
						s.Latency = clk.Since(s.Start)
						mu.Lock()
						spawned = append(spawned, s)
						mu.Unlock()
						if met != nil {
							met.requests.Inc()
							if s.Err != nil {
								met.errors.Inc()
							}
						}
					}()
				}
			}

			// Sensor cadence: emit the next stream batch, then poll the
			// sensors synchronously so readings carry this timeline's
			// timestamps.
			tickEnd := tickStart.Add(tick)
			for !nextSensor.After(tickEnd) {
				progress := float64(elapsed+tick) / float64(phaseDur)
				if env.Stream != nil {
					if err := env.Stream.Emit(phase.Adversarial, progress); err != nil {
						return nil, err
					}
				}
				for _, name := range sensorNames {
					r, err := env.Sensors.CollectOnce(ctx, name)
					if err != nil {
						rec.SensorErrors++
						continue
					}
					rec.Readings = append(rec.Readings, r)
				}
				nextSensor = nextSensor.Add(sensorEvery)
			}

			if isFake {
				fake.Advance(tick)
			} else {
				select {
				case <-clk.After(tick - clk.Since(tickStart)):
				case <-ctx.Done():
				}
			}
		}
		mark.End = clk.Now()
		rec.Marks = append(rec.Marks, mark)
	}
	if injector != nil {
		injector.SetFault(nil)
	}
	wg.Wait()
	rec.End = clk.Now()
	rec.Results = &loadgen.Results{Samples: append(inline, spawned...), Wall: rec.End.Sub(rec.Start)}
	sort.SliceStable(rec.Results.Samples, func(i, j int) bool {
		return rec.Results.Samples[i].Start.Before(rec.Results.Samples[j].Start)
	})
	if st, ok := injector.(faultStats); ok && injector != nil {
		rec.Chaos = st.Stats()
	}
	if env.Telemetry != nil {
		rec.Families = env.Telemetry.Gather()
	}
	if err := ctx.Err(); err != nil {
		return rec, err
	}
	return rec, nil
}
