package scenario

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/clock"
)

// fixtureScenario is a short campaign exercising every moving part:
// traffic shape change, a fault phase, and an adversarial phase.
func fixtureScenario() Scenario {
	return Scenario{
		Name:     "executor-fixture",
		Workload: WorkloadSynthetic,
		Seed:     21,
		SLO:      SLO{LatencyP95: Duration(150 * time.Millisecond), MaxErrorRate: 0.05},
		Phases: []Phase{
			{Name: "baseline", Duration: Duration(2 * time.Second),
				Shape: Shape{Kind: ShapeSteady, BaseRPS: 30}},
			{Name: "burst", Duration: Duration(2 * time.Second),
				Shape: Shape{Kind: ShapeRamp, BaseRPS: 30, PeakRPS: 120},
				Fault: &Fault{Kind: FaultErrorBurst, Rate: 0.4}},
			{Name: "shift", Duration: Duration(2 * time.Second),
				Shape:       Shape{Kind: ShapeSteady, BaseRPS: 30},
				Adversarial: &Adversarial{Kind: AdvCovariateShift, Magnitude: 3}},
		},
	}
}

func TestRunVirtualProducesFullRecord(t *testing.T) {
	rec, err := RunVirtual(context.Background(), fixtureScenario())
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.End.Sub(rec.Start); got != 6*time.Second {
		t.Fatalf("virtual duration: %v", got)
	}
	if len(rec.Marks) != 3 {
		t.Fatalf("marks: %+v", rec.Marks)
	}
	if len(rec.Results.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	if len(rec.Readings) == 0 {
		t.Fatal("no sensor readings recorded")
	}
	if rec.Chaos.Errored == 0 {
		t.Fatal("error-burst fault injected nothing")
	}
	if rec.Families == nil {
		t.Fatal("no telemetry snapshot")
	}

	card := Score(rec)
	if card.Requests != len(rec.Results.Samples) {
		t.Fatalf("scorecard requests: %d vs %d samples", card.Requests, len(rec.Results.Samples))
	}
	if !card.Detected {
		t.Fatal("covariate shift not detected")
	}
	if card.FirstAlertSensor != SensorDrift {
		t.Fatalf("first alert sensor: %q", card.FirstAlertSensor)
	}
}

// TestRunVirtualByteIdenticalScorecards is the determinism contract of
// the whole engine: same scenario, same seed, fake clock -> the JSON
// scorecard reproduces bit for bit.
func TestRunVirtualByteIdenticalScorecards(t *testing.T) {
	render := func() []byte {
		rec, err := RunVirtual(context.Background(), fixtureScenario())
		if err != nil {
			t.Fatal(err)
		}
		buf, err := Score(rec).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("scorecards diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

func TestRunEnvValidation(t *testing.T) {
	sc := fixtureScenario()
	ctx := context.Background()

	// Neither Virtual nor Sampler.
	if _, err := Run(ctx, sc, Env{Clock: clock.NewFake(Epoch)}); err == nil {
		t.Fatal("empty env accepted")
	}
	// Virtual without a fake clock.
	if _, err := Run(ctx, sc, Env{Virtual: NewVirtualTarget(0, 0, 1)}); err == nil {
		t.Fatal("virtual target on the real clock accepted")
	}
	// Invalid scenario.
	if _, err := Run(ctx, Scenario{}, Env{}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunVirtual(ctx, fixtureScenario())
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// TestBuiltinSmokeSubsetRuns executes every Smoke-tagged library
// scenario end to end in the virtual world — the same thing CI does —
// and sanity-checks the headline scorecard numbers.
func TestBuiltinSmokeSubsetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builtin smoke runs train one model per workload; skipped in -short")
	}
	for _, sc := range Default().Smoke() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rec, err := RunVirtual(context.Background(), sc)
			if err != nil {
				t.Fatal(err)
			}
			card := Score(rec)
			if card.Requests == 0 {
				t.Fatal("no traffic")
			}
			if card.Verdict == "" {
				t.Fatal("no verdict")
			}
			switch sc.Name {
			case "uc1-fall-poison", "uc2-net-fgsm", "flash-crowd-poison", "heavy-tail-drift":
				if !card.Detected {
					t.Error("adversarial campaign not detected")
				}
				if card.Verdict == "fail" {
					t.Errorf("verdict fail: %v", card.Reasons)
				}
			case "capacity-ramp":
				if card.Shed == 0 {
					t.Error("capacity ramp shed nothing")
				}
				if card.Verdict != "pass" {
					t.Errorf("verdict: %s (%v)", card.Verdict, card.Reasons)
				}
			}
		})
	}
}
