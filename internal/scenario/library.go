package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Library is a named, growing collection of scenarios. The package-level
// default library holds the Go-registered built-ins; JSON-loaded
// scenarios join the same namespace so the runner treats both uniformly.
type Library struct {
	mu        sync.Mutex
	scenarios map[string]Scenario
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{scenarios: make(map[string]Scenario)}
}

// Register validates and adds a scenario; duplicate names are rejected so
// a JSON file cannot silently shadow a built-in.
func (l *Library) Register(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.scenarios[sc.Name]; dup {
		return fmt.Errorf("scenario: %q already registered", sc.Name)
	}
	l.scenarios[sc.Name] = sc
	return nil
}

// Get looks up a scenario by name.
func (l *Library) Get(name string) (Scenario, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sc, ok := l.scenarios[name]
	return sc, ok
}

// Names lists registered scenario names, sorted.
func (l *Library) Names() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.scenarios))
	for n := range l.scenarios {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every scenario, name-sorted.
func (l *Library) All() []Scenario {
	names := l.Names()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Scenario, 0, len(names))
	for _, n := range names {
		out = append(out, l.scenarios[n])
	}
	return out
}

// Smoke returns the deterministic CI subset, name-sorted.
func (l *Library) Smoke() []Scenario {
	var out []Scenario
	for _, sc := range l.All() {
		if sc.Smoke {
			out = append(out, sc)
		}
	}
	return out
}

// LoadJSON registers every scenario in a JSON array read from r,
// returning the names added. On any invalid entry nothing before it is
// rolled back — load errors are configuration errors and abort the run
// anyway.
func (l *Library) LoadJSON(r io.Reader) ([]string, error) {
	var scs []Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&scs); err != nil {
		return nil, fmt.Errorf("scenario: decode library: %w", err)
	}
	names := make([]string, 0, len(scs))
	for _, sc := range scs {
		if err := l.Register(sc); err != nil {
			return names, err
		}
		names = append(names, sc.Name)
	}
	return names, nil
}

// defaultLibrary holds the Go-registered built-ins.
var defaultLibrary = NewLibrary()

// Default returns the package-level library seeded with the built-in
// scenarios.
func Default() *Library { return defaultLibrary }

// mustRegister panics on an invalid built-in: the library is compiled
// in, so a bad entry is a programming error a test catches immediately.
func mustRegister(l *Library, sc Scenario) {
	if err := l.Register(sc); err != nil {
		panic(err)
	}
}
