package scenario

import (
	"strings"
	"testing"
	"time"
)

func validScenario(name string) Scenario {
	return Scenario{
		Name: name,
		SLO:  SLO{LatencyP95: Duration(100 * time.Millisecond)},
		Phases: []Phase{
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 10}},
		},
	}
}

func TestLibraryRegisterAndLookup(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Register(validScenario("one")); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(validScenario("one")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := lib.Register(Scenario{Name: "broken"}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, ok := lib.Get("one"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := lib.Get("two"); ok {
		t.Fatal("phantom scenario")
	}
}

func TestLibraryLoadJSON(t *testing.T) {
	lib := NewLibrary()
	doc := `[
	  {
	    "name": "from-json",
	    "workload": "synthetic",
	    "seed": 9,
	    "slo": {"latencyP95": "150ms", "maxErrorRate": 0.02},
	    "phases": [
	      {"name": "warm", "duration": "2s", "shape": {"kind": "steady", "baseRps": 20}},
	      {"name": "burst", "duration": "3s",
	       "shape": {"kind": "flash-crowd", "baseRps": 20, "peakRps": 200},
	       "fault": {"kind": "latency", "rate": 0.5, "latency": "50ms"},
	       "adversarial": {"kind": "poison-wave", "rate": 0.25, "target": -1}}
	    ]
	  }
	]`
	names, err := lib.LoadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "from-json" {
		t.Fatalf("names: %v", names)
	}
	sc, ok := lib.Get("from-json")
	if !ok {
		t.Fatal("loaded scenario missing")
	}
	if sc.Phases[1].Fault.Latency.D() != 50*time.Millisecond {
		t.Fatalf("fault latency: %v", sc.Phases[1].Fault.Latency.D())
	}
	if sc.Phases[1].Adversarial.Rate != 0.25 {
		t.Fatalf("adversarial rate: %v", sc.Phases[1].Adversarial.Rate)
	}

	// Unknown fields are configuration typos, not extensions.
	if _, err := lib.LoadJSON(strings.NewReader(`[{"name":"x","typo":1}]`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestBuiltinLibraryShape(t *testing.T) {
	lib := Default()
	all := lib.All()
	if len(all) < 6 {
		t.Fatalf("library has %d scenarios, want >= 6", len(all))
	}
	for _, must := range []string{"uc1-fall-poison", "uc2-net-fgsm", "flash-crowd-poison", "error-burst-breaker"} {
		if _, ok := lib.Get(must); !ok {
			t.Errorf("missing built-in %q", must)
		}
	}
	uc1, _ := lib.Get("uc1-fall-poison")
	if uc1.UseCase != "uc1" || uc1.Workload != WorkloadFall {
		t.Errorf("uc1 scenario misconfigured: usecase=%q workload=%q", uc1.UseCase, uc1.Workload)
	}
	uc2, _ := lib.Get("uc2-net-fgsm")
	if uc2.UseCase != "uc2" || uc2.Workload != WorkloadNetTraffic {
		t.Errorf("uc2 scenario misconfigured: usecase=%q workload=%q", uc2.UseCase, uc2.Workload)
	}
	if len(lib.Smoke()) < 6 {
		t.Errorf("smoke subset has %d scenarios, want >= 6", len(lib.Smoke()))
	}
	// Every built-in must be executable as declared.
	for _, sc := range all {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %q invalid: %v", sc.Name, err)
		}
	}
}
