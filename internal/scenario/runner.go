package scenario

import (
	"context"
	"time"

	"repro/internal/clock"
	"repro/internal/sensor"
	"repro/internal/telemetry"
)

// Epoch is the fixed virtual start time of deterministic runs. Pinning it
// makes whole Records — not just scorecards — reproduce across machines.
var Epoch = time.Date(2024, 7, 1, 0, 0, 0, 0, time.UTC)

// RunVirtual executes the scenario end to end against the deterministic
// world: fake clock at Epoch, virtual target, workload stream, stream
// sensors, and a fresh telemetry registry — everything seeded from
// sc.Seed. Two calls with the same scenario produce identical records,
// which is what the smoke tests pin down to byte-identical scorecards.
func RunVirtual(ctx context.Context, sc Scenario) (*Record, error) {
	fake := clock.NewFake(Epoch)
	var virtual VirtualSampler
	if c := sc.Cluster; c != nil {
		virtual = NewVirtualCluster(c.Replicas, c.BaseLatency.D(), c.CapacityRPS, sc.Seed, sc.Workload)
	} else {
		virtual = NewVirtualTarget(0, 0, sc.Seed)
	}

	stream, err := BuildWorkload(sc.Workload, sc.Seed)
	if err != nil {
		return nil, err
	}
	mgr := sensor.NewManager(nil)
	mgr.UseClock(fake)
	if err := stream.RegisterSensors(mgr, Duration(sc.sensorEvery())); err != nil {
		return nil, err
	}

	return Run(ctx, sc, Env{
		Clock:     fake,
		Virtual:   virtual,
		Stream:    stream,
		Sensors:   mgr,
		Telemetry: telemetry.NewRegistry(),
	})
}
