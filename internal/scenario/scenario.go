// Package scenario is the declarative chaos + attack + drift campaign
// engine. The paper's evaluation is two fixed stories — poisoning/evasion
// detection on two use cases and a JMeter capacity-load study — but the
// monitoring stack is only trustworthy if it keeps detecting under every
// traffic shape, fault, and adversary an operator can imagine. Following
// the scenario-oriented AIOps benchmark idea, this package turns those
// stories into entries of a growing scenario library: a Scenario is a
// named timeline of phases, each combining a traffic shape (steady, ramp,
// diurnal, flash-crowd, heavy-tail), an optional injected fault (induced
// latency, error bursts, connection resets, a downed service), and an
// optional adversarial action reusing internal/attack and internal/drift
// (label-flip poison wave, FGSM burst, covariate-shift ramp). The
// executor drives internal/loadgen through the timeline on internal/clock
// — so every scenario also runs deterministically under clock.Fake — and
// the scorer reduces the run to a machine-readable scorecard (detection
// delay, sheds, SLO-violation seconds, error-budget burn, recovery time)
// read from the telemetry the run produced, not from prose.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("2s", "150ms") and unmarshals from either that form or integer
// nanoseconds, so scenario JSON stays hand-editable while Go-registered
// scenarios stay type-checked.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "2s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch v := v.(type) {
	case string:
		parsed, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", v, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(v))
	default:
		return fmt.Errorf("scenario: duration must be a string or nanosecond count, got %T", v)
	}
	return nil
}

// ShapeKind names a traffic shape.
type ShapeKind string

// Traffic shapes. All are open-loop arrival-rate curves over the phase
// duration; the executor converts the instantaneous rate to a per-tick
// request count with a fractional-carry accumulator so low rates are not
// rounded away.
const (
	// ShapeSteady holds BaseRPS for the whole phase.
	ShapeSteady ShapeKind = "steady"
	// ShapeRamp interpolates linearly from BaseRPS to PeakRPS — the
	// paper's capacity study (threads ramp toward saturation).
	ShapeRamp ShapeKind = "ramp"
	// ShapeDiurnal follows a raised cosine between BaseRPS (trough) and
	// PeakRPS (crest) with the given Period — a compressed day/night
	// cycle.
	ShapeDiurnal ShapeKind = "diurnal"
	// ShapeFlashCrowd holds BaseRPS, then spikes to PeakRPS for the
	// window [PeakAt, PeakAt+PeakWidth] (fractions of the phase), then
	// returns to BaseRPS — a thundering herd.
	ShapeFlashCrowd ShapeKind = "flash-crowd"
	// ShapeHeavyTail draws a Pareto(Alpha) burst multiplier per tick on
	// top of BaseRPS, capped at PeakRPS — bursty heavy-tailed arrivals.
	ShapeHeavyTail ShapeKind = "heavy-tail"
)

// Shape is one phase's traffic curve.
type Shape struct {
	Kind    ShapeKind `json:"kind"`
	BaseRPS float64   `json:"baseRps"`
	// PeakRPS is the ramp target / diurnal crest / flash-crowd spike /
	// heavy-tail cap. Unused by steady.
	PeakRPS float64 `json:"peakRps,omitempty"`
	// Period is the diurnal cycle length (default: the phase duration).
	Period Duration `json:"period,omitempty"`
	// PeakAt and PeakWidth locate the flash-crowd window as fractions of
	// the phase duration (defaults 0.4 and 0.2).
	PeakAt    float64 `json:"peakAt,omitempty"`
	PeakWidth float64 `json:"peakWidth,omitempty"`
	// Alpha is the heavy-tail Pareto shape (default 1.5; smaller =
	// heavier tail).
	Alpha float64 `json:"alpha,omitempty"`
}

// RPS evaluates the shape at elapsed time into a phase of the given
// duration. burstU is a uniform(0,1] draw consumed only by heavy-tail
// (the executor feeds it from the scenario's seeded stream so fake-clock
// runs reproduce bit-for-bit).
func (s Shape) RPS(elapsed, phaseDur time.Duration, burstU float64) float64 {
	if phaseDur <= 0 {
		return s.BaseRPS
	}
	frac := float64(elapsed) / float64(phaseDur)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch s.Kind {
	case ShapeRamp:
		return s.BaseRPS + (s.PeakRPS-s.BaseRPS)*frac
	case ShapeDiurnal:
		period := s.Period.D()
		if period <= 0 {
			period = phaseDur
		}
		// Trough at phase start, crest half a period in.
		cyc := float64(elapsed) / float64(period)
		w := (1 - math.Cos(2*math.Pi*cyc)) / 2
		return s.BaseRPS + (s.PeakRPS-s.BaseRPS)*w
	case ShapeFlashCrowd:
		at, width := s.PeakAt, s.PeakWidth
		if at <= 0 {
			at = 0.4
		}
		if width <= 0 {
			width = 0.2
		}
		if frac >= at && frac < at+width {
			return s.PeakRPS
		}
		return s.BaseRPS
	case ShapeHeavyTail:
		alpha := s.Alpha
		if alpha <= 0 {
			alpha = 1.5
		}
		if burstU <= 0 {
			burstU = 1
		}
		// Pareto with x_m = 1: multiplier in [1, inf).
		mult := math.Pow(burstU, -1/alpha)
		rps := s.BaseRPS * mult
		if s.PeakRPS > 0 && rps > s.PeakRPS {
			rps = s.PeakRPS
		}
		return rps
	default: // ShapeSteady
		return s.BaseRPS
	}
}

func (s Shape) validate() error {
	switch s.Kind {
	case ShapeSteady, ShapeRamp, ShapeDiurnal, ShapeFlashCrowd, ShapeHeavyTail:
	default:
		return fmt.Errorf("unknown traffic shape %q", s.Kind)
	}
	if s.BaseRPS < 0 || s.PeakRPS < 0 {
		return fmt.Errorf("shape %q: negative rate", s.Kind)
	}
	if s.Kind == ShapeSteady && s.BaseRPS <= 0 {
		return fmt.Errorf("steady shape needs baseRps > 0")
	}
	if (s.Kind == ShapeRamp || s.Kind == ShapeDiurnal || s.Kind == ShapeFlashCrowd) && s.PeakRPS <= 0 {
		return fmt.Errorf("shape %q needs peakRps > 0", s.Kind)
	}
	if s.PeakAt < 0 || s.PeakAt > 1 || s.PeakWidth < 0 || s.PeakWidth > 1 {
		return fmt.Errorf("flash-crowd window fractions outside [0,1]")
	}
	return nil
}

// FaultKind names an injected infrastructure fault.
type FaultKind string

// Fault kinds the chaos proxy can inject between gateway and upstream.
const (
	// FaultLatency adds Latency (±Jitter) to affected requests.
	FaultLatency FaultKind = "latency"
	// FaultErrorBurst answers affected requests with Code (default 503)
	// without touching the upstream.
	FaultErrorBurst FaultKind = "error-burst"
	// FaultReset aborts the connection of affected requests — the client
	// sees a transport error, the breaker sees an upstream failure.
	FaultReset FaultKind = "reset"
	// FaultDown refuses every request for the fault window — a killed
	// service; clearing the fault is the restart.
	FaultDown FaultKind = "down"
	// FaultReplicaKill kills one replica of the virtual cluster tier
	// (Fault.Replica, or the shard owner when empty). Unlike the other
	// kinds the kill persists past the phase — only FaultReplicaRestart
	// revives it — so a campaign can measure rerouted traffic across
	// several phases before scoring the recovery. Requires
	// Scenario.Cluster.
	FaultReplicaKill FaultKind = "replica-kill"
	// FaultReplicaRestart revives a previously killed replica (or all of
	// them when Fault.Replica is empty). Requires Scenario.Cluster.
	FaultReplicaRestart FaultKind = "replica-restart"
)

// Fault configures one phase's fault injection.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// Rate is the fraction of requests affected in [0,1] (default 1).
	Rate float64 `json:"rate,omitempty"`
	// Latency and Jitter apply to FaultLatency.
	Latency Duration `json:"latency,omitempty"`
	Jitter  Duration `json:"jitter,omitempty"`
	// Code is the FaultErrorBurst status (default 503).
	Code int `json:"code,omitempty"`
	// Replica targets FaultReplicaKill/FaultReplicaRestart at one member
	// of the virtual cluster ("replica-0"...). Empty means the shard
	// owner for a kill and every downed member for a restart.
	Replica string `json:"replica,omitempty"`
}

// clusterFault reports whether the kind targets the replica tier.
func (f Fault) clusterFault() bool {
	return f.Kind == FaultReplicaKill || f.Kind == FaultReplicaRestart
}

// rate returns the effective affected fraction.
func (f Fault) rate() float64 {
	if f.Rate <= 0 || f.Rate > 1 {
		return 1
	}
	return f.Rate
}

func (f Fault) validate() error {
	switch f.Kind {
	case FaultLatency, FaultErrorBurst, FaultReset, FaultDown,
		FaultReplicaKill, FaultReplicaRestart:
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	if f.Rate < 0 || f.Rate > 1 {
		return fmt.Errorf("fault %q: rate %v outside [0,1]", f.Kind, f.Rate)
	}
	if f.Kind == FaultLatency && f.Latency.D() <= 0 {
		return fmt.Errorf("latency fault needs latency > 0")
	}
	if f.Code != 0 && (f.Code < 400 || f.Code > 599) {
		return fmt.Errorf("fault %q: code %d outside 4xx/5xx", f.Kind, f.Code)
	}
	if f.Replica != "" && !f.clusterFault() {
		return fmt.Errorf("fault %q: replica target only applies to replica faults", f.Kind)
	}
	return nil
}

// AdvKind names an adversarial action against the model's data plane.
type AdvKind string

// Adversarial actions, reusing internal/attack and internal/drift.
const (
	// AdvPoisonWave flips a fraction Rate of the labels in each emitted
	// batch (attack.LabelFlip; Target >= 0 switches to TargetedFlip) —
	// use case 1's black-box poisoning as a live wave.
	AdvPoisonWave AdvKind = "poison-wave"
	// AdvFGSMBurst perturbs each batch with FGSM at Eps against the
	// white-box model — use case 2's evasion attack as a burst.
	AdvFGSMBurst AdvKind = "fgsm-burst"
	// AdvCovariateShift adds a feature-space offset that ramps from 0 to
	// Magnitude (in per-feature standard deviations) over the phase —
	// the slow drift the KS/PSI detector exists for.
	AdvCovariateShift AdvKind = "covariate-shift"
)

// Adversarial configures one phase's attack.
type Adversarial struct {
	Kind AdvKind `json:"kind"`
	// Rate is the poison-wave flip fraction in [0,1].
	Rate float64 `json:"rate,omitempty"`
	// Target selects the targeted-flip class; negative = untargeted.
	Target int `json:"target,omitempty"`
	// Eps is the FGSM perturbation budget.
	Eps float64 `json:"eps,omitempty"`
	// Magnitude is the covariate-shift endpoint in feature std-devs.
	Magnitude float64 `json:"magnitude,omitempty"`
}

func (a Adversarial) validate() error {
	switch a.Kind {
	case AdvPoisonWave:
		if a.Rate <= 0 || a.Rate > 1 {
			return fmt.Errorf("poison-wave rate %v outside (0,1]", a.Rate)
		}
	case AdvFGSMBurst:
		if a.Eps <= 0 {
			return fmt.Errorf("fgsm-burst needs eps > 0")
		}
	case AdvCovariateShift:
		if a.Magnitude <= 0 {
			return fmt.Errorf("covariate-shift needs magnitude > 0")
		}
	default:
		return fmt.Errorf("unknown adversarial kind %q", a.Kind)
	}
	return nil
}

// ClusterSpec sizes the virtual replica tier a scenario runs against.
// When set, RunVirtual swaps the single VirtualTarget for a
// VirtualCluster: shard-aware routing over N replicas, so replica-kill
// and replica-restart faults become meaningful and the scorecard's
// Faults.Rerouted counts failover traffic.
type ClusterSpec struct {
	// Replicas is the member count (>= 2; there is nothing to fail over
	// to with one).
	Replicas int `json:"replicas"`
	// CapacityRPS is each replica's admission watermark (default 150).
	CapacityRPS float64 `json:"capacityRps,omitempty"`
	// BaseLatency is each replica's unloaded latency (default 20ms).
	BaseLatency Duration `json:"baseLatency,omitempty"`
}

func (c ClusterSpec) validate() error {
	if c.Replicas < 2 {
		return fmt.Errorf("cluster needs >= 2 replicas, got %d", c.Replicas)
	}
	if c.CapacityRPS < 0 || c.BaseLatency.D() < 0 {
		return fmt.Errorf("cluster capacity/latency must be non-negative")
	}
	return nil
}

// Phase is one segment of a scenario timeline.
type Phase struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	Shape    Shape    `json:"shape"`
	// Fault, when set, is installed on the chaos proxy (or the virtual
	// target) for the phase and cleared at its end.
	Fault *Fault `json:"fault,omitempty"`
	// Adversarial, when set, perturbs the data stream for the phase.
	Adversarial *Adversarial `json:"adversarial,omitempty"`
}

// SLO is the service-level objective a scenario is scored against.
type SLO struct {
	// LatencyP95 is the per-window p95 latency bound.
	LatencyP95 Duration `json:"latencyP95"`
	// MaxErrorRate is the per-window non-shed error-rate bound.
	MaxErrorRate float64 `json:"maxErrorRate"`
	// Window is the evaluation bucket (default 1s).
	Window Duration `json:"window,omitempty"`
	// ErrorBudget is the fraction of the run allowed to violate the SLO
	// before the budget is fully burned (default 0.01).
	ErrorBudget float64 `json:"errorBudget,omitempty"`
}

// window returns the effective bucket width.
func (s SLO) window() time.Duration {
	if w := s.Window.D(); w > 0 {
		return w
	}
	return time.Second
}

// budget returns the effective error-budget fraction.
func (s SLO) budget() float64 {
	if s.ErrorBudget > 0 {
		return s.ErrorBudget
	}
	return 0.01
}

// Scenario is one named campaign: a timeline of phases plus the SLO and
// workload it is scored against.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// UseCase anchors library entries to the paper ("uc1", "uc2",
	// "capacity", ...); free-form for new scenarios.
	UseCase string `json:"useCase,omitempty"`
	// Workload names the data/model pair the adversarial stream runs
	// against: "fall" (use case 1), "nettraffic" (use case 2), or
	// "synthetic" (a small separable table). Default "synthetic".
	Workload string `json:"workload,omitempty"`
	// Seed drives every stochastic choice (heavy-tail bursts, fault
	// sampling, attack perturbations); fixed seed + fake clock =>
	// byte-identical scorecards.
	Seed int64 `json:"seed"`
	// Tick is the executor quantum (default 100ms).
	Tick Duration `json:"tick,omitempty"`
	// SensorEvery is the sensor sampling period (default 500ms).
	SensorEvery Duration `json:"sensorEvery,omitempty"`
	SLO         SLO      `json:"slo"`
	// Cluster, when set, runs the scenario against a virtual replica
	// tier instead of a single virtual target (see ClusterSpec).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	Phases  []Phase      `json:"phases"`
	// Smoke marks the scenario as a member of the deterministic
	// CI-runnable subset.
	Smoke bool `json:"smoke,omitempty"`
}

// tick returns the effective executor quantum.
func (sc Scenario) tick() time.Duration {
	if t := sc.Tick.D(); t > 0 {
		return t
	}
	return 100 * time.Millisecond
}

// sensorEvery returns the effective sensor sampling period.
func (sc Scenario) sensorEvery() time.Duration {
	if t := sc.SensorEvery.D(); t > 0 {
		return t
	}
	return 500 * time.Millisecond
}

// SensorPeriod is the effective sensor sampling period (exported for
// runners assembling their own Env outside this package).
func (sc Scenario) SensorPeriod() time.Duration { return sc.sensorEvery() }

// Duration sums the phase durations.
func (sc Scenario) Duration() time.Duration {
	var total time.Duration
	for _, p := range sc.Phases {
		total += p.Duration.D()
	}
	return total
}

// Validate checks the scenario is executable.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(sc.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", sc.Name)
	}
	if sc.SLO.LatencyP95.D() <= 0 {
		return fmt.Errorf("scenario %q: SLO latencyP95 must be positive", sc.Name)
	}
	if sc.SLO.MaxErrorRate < 0 || sc.SLO.MaxErrorRate > 1 {
		return fmt.Errorf("scenario %q: SLO maxErrorRate outside [0,1]", sc.Name)
	}
	switch sc.Workload {
	case "", WorkloadSynthetic, WorkloadFall, WorkloadNetTraffic:
	default:
		return fmt.Errorf("scenario %q: unknown workload %q", sc.Name, sc.Workload)
	}
	if sc.Cluster != nil {
		if err := sc.Cluster.validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	seen := make(map[string]bool, len(sc.Phases))
	for i, p := range sc.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario %q: phase %d missing name", sc.Name, i)
		}
		if seen[p.Name] {
			return fmt.Errorf("scenario %q: duplicate phase name %q", sc.Name, p.Name)
		}
		seen[p.Name] = true
		if p.Duration.D() <= 0 {
			return fmt.Errorf("scenario %q: phase %q duration must be positive", sc.Name, p.Name)
		}
		if err := p.Shape.validate(); err != nil {
			return fmt.Errorf("scenario %q: phase %q: %w", sc.Name, p.Name, err)
		}
		if p.Fault != nil {
			if err := p.Fault.validate(); err != nil {
				return fmt.Errorf("scenario %q: phase %q: %w", sc.Name, p.Name, err)
			}
			if p.Fault.clusterFault() && sc.Cluster == nil {
				return fmt.Errorf("scenario %q: phase %q: fault %q needs a cluster spec", sc.Name, p.Name, p.Fault.Kind)
			}
		}
		if p.Adversarial != nil {
			if err := p.Adversarial.validate(); err != nil {
				return fmt.Errorf("scenario %q: phase %q: %w", sc.Name, p.Name, err)
			}
		}
	}
	return nil
}
