package scenario

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestDurationJSONRoundTrip(t *testing.T) {
	d := Duration(2500 * time.Millisecond)
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"2.5s"` {
		t.Fatalf("marshal: got %s", b)
	}
	var back Duration
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip: got %v, want %v", back.D(), d.D())
	}
	// Numeric nanoseconds are accepted too (hand-written JSON).
	if err := json.Unmarshal([]byte(`1500000000`), &back); err != nil {
		t.Fatal(err)
	}
	if back.D() != 1500*time.Millisecond {
		t.Fatalf("numeric: got %v", back.D())
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &back); err == nil {
		t.Fatal("expected error for bogus duration string")
	}
}

func TestShapeRPS(t *testing.T) {
	phase := 10 * time.Second

	steady := Shape{Kind: ShapeSteady, BaseRPS: 40}
	if got := steady.RPS(3*time.Second, phase, 0.5); got != 40 {
		t.Fatalf("steady: got %v", got)
	}

	ramp := Shape{Kind: ShapeRamp, BaseRPS: 10, PeakRPS: 110}
	if got := ramp.RPS(0, phase, 0.5); got != 10 {
		t.Fatalf("ramp start: got %v", got)
	}
	if got := ramp.RPS(5*time.Second, phase, 0.5); math.Abs(got-60) > 1e-9 {
		t.Fatalf("ramp mid: got %v", got)
	}

	di := Shape{Kind: ShapeDiurnal, BaseRPS: 20, PeakRPS: 80, Period: Duration(phase)}
	if got := di.RPS(0, phase, 0.5); math.Abs(got-20) > 1e-9 {
		t.Fatalf("diurnal trough: got %v", got)
	}
	if got := di.RPS(5*time.Second, phase, 0.5); math.Abs(got-80) > 1e-9 {
		t.Fatalf("diurnal crest: got %v", got)
	}

	fc := Shape{Kind: ShapeFlashCrowd, BaseRPS: 40, PeakRPS: 300, PeakAt: 0.5, PeakWidth: 0.2}
	if got := fc.RPS(time.Second, phase, 0.5); got != 40 {
		t.Fatalf("flash-crowd before spike: got %v", got)
	}
	if got := fc.RPS(5*time.Second, phase, 0.5); got <= 40 {
		t.Fatalf("flash-crowd at spike: got %v", got)
	}

	ht := Shape{Kind: ShapeHeavyTail, BaseRPS: 50, PeakRPS: 500, Alpha: 1.5}
	// burstU near 1 -> multiplier near 1 -> base rate.
	if got := ht.RPS(0, phase, 0.999999); math.Abs(got-50) > 1 {
		t.Fatalf("heavy-tail calm: got %v", got)
	}
	// burstU near 0 -> Pareto blow-up, capped at the peak.
	if got := ht.RPS(0, phase, 1e-12); got != 500 {
		t.Fatalf("heavy-tail burst cap: got %v", got)
	}
}

func TestScenarioValidate(t *testing.T) {
	ok := Scenario{
		Name: "t",
		SLO:  SLO{LatencyP95: Duration(100 * time.Millisecond)},
		Phases: []Phase{
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 10}},
		},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	bad := []Scenario{
		{},                       // no name
		{Name: "x", SLO: ok.SLO}, // no phases
		{Name: "x", SLO: SLO{}, Phases: ok.Phases},                    // no SLO latency
		{Name: "x", SLO: ok.SLO, Workload: "nope", Phases: ok.Phases}, // unknown workload
		{Name: "x", SLO: ok.SLO, Phases: []Phase{ // duplicate phase names
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 1}},
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 1}},
		}},
		{Name: "x", SLO: ok.SLO, Phases: []Phase{ // bad fault kind
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 1},
				Fault: &Fault{Kind: "meteor"}},
		}},
		{Name: "x", SLO: ok.SLO, Phases: []Phase{ // bad adversarial kind
			{Name: "a", Duration: Duration(time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 1},
				Adversarial: &Adversarial{Kind: "meteor"}},
		}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}
