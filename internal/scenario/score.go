package scenario

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"time"

	"repro/internal/loadgen"
)

// Scorecard is the machine-readable verdict of one scenario run. Every
// number is derived from the telemetry the run produced — the recorded
// samples, the sensor readings, and the stack's metric snapshot — so a
// scorecard is evidence, not narrative. Durations are integer
// nanoseconds; -1 marks "not applicable / never happened" so JSON
// consumers need no null handling.
type Scorecard struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	UseCase     string `json:"useCase,omitempty"`
	Workload    string `json:"workload,omitempty"`
	Seed        int64  `json:"seed"`
	DurationNs  int64  `json:"durationNs"`

	// Traffic totals. Errors excludes sheds: a 429 is the admission
	// controller working, not the stack failing.
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Shed          int     `json:"shed"`
	ErrorRate     float64 `json:"errorRate"`
	MeanNs        int64   `json:"meanNs"`
	P50Ns         int64   `json:"p50Ns"`
	P95Ns         int64   `json:"p95Ns"`
	P99Ns         int64   `json:"p99Ns"`
	ThroughputRPS float64 `json:"throughputRps"`

	// SLO accounting over fixed windows (SLO.Window wide).
	SLOViolationSeconds float64 `json:"sloViolationSeconds"`
	// ErrorBudgetBurn is violation time over the run's allowed
	// violation time (SLO.ErrorBudget · duration); > 1 means the budget
	// is blown.
	ErrorBudgetBurn float64 `json:"errorBudgetBurn"`

	// Detection: delay from the first adversarial (or, failing that,
	// fault) phase start to the first sensor alert at or after it.
	Detected         bool   `json:"detected"`
	DetectionDelayNs int64  `json:"detectionDelayNs"`
	FirstAlertSensor string `json:"firstAlertSensor,omitempty"`

	// Recovery: time from the last disruption (fault or adversarial
	// phase) clearing to the end of the first SLO-healthy window after
	// it. -1: never recovered (or nothing to recover from).
	RecoveryNs int64 `json:"recoveryNs"`

	// Faults the injector actually delivered.
	Faults ChaosStats `json:"faults"`
	// GatewayShed mirrors spatial_gateway_upstream_shed_total from the
	// stack's telemetry snapshot when a live run provides one (-1
	// without a registry).
	GatewayShed int64 `json:"gatewayShed"`

	Phases []PhaseScore `json:"phases"`

	// Verdict is "pass", "degraded", or "fail"; Reasons carries the
	// rule hits behind a non-pass verdict.
	Verdict string   `json:"verdict"`
	Reasons []string `json:"reasons,omitempty"`
}

// PhaseScore is the per-phase slice of the totals.
type PhaseScore struct {
	Phase               string  `json:"phase"`
	Requests            int     `json:"requests"`
	Errors              int     `json:"errors"`
	Shed                int     `json:"shed"`
	P95Ns               int64   `json:"p95Ns"`
	SLOViolationSeconds float64 `json:"sloViolationSeconds"`
}

// JSON renders the scorecard with stable formatting (struct field order,
// two-space indent) — the byte-identical artifact CI diffs across runs.
func (c Scorecard) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// window aggregates the samples of one SLO bucket.
type window struct {
	start    time.Time
	lats     []time.Duration
	count    int
	errs     int
	shed     int
	violated bool
}

// Score reduces a run record to its scorecard.
func Score(rec *Record) Scorecard {
	sc := rec.Scenario
	card := Scorecard{
		Scenario:    sc.Name,
		Description: sc.Description,
		UseCase:     sc.UseCase,
		Workload:    sc.Workload,
		Seed:        sc.Seed,
		DurationNs:  rec.End.Sub(rec.Start).Nanoseconds(),
		Faults:      rec.Chaos,
		GatewayShed: -1,
	}

	sum := rec.Results.Summarize()
	card.Requests = sum.Count
	card.Shed = sum.Shed
	card.Errors = sum.Errors - sum.Shed
	if sum.Count > 0 {
		card.ErrorRate = float64(card.Errors) / float64(sum.Count)
	}
	card.MeanNs = sum.Mean.Nanoseconds()
	card.P50Ns = sum.P50.Nanoseconds()
	card.P95Ns = sum.P95.Nanoseconds()
	card.P99Ns = sum.P99.Nanoseconds()
	card.ThroughputRPS = sum.Throughput

	windows := bucketize(rec, sc.SLO)
	var violationSec float64
	for _, w := range windows {
		if w.violated {
			violationSec += sc.SLO.window().Seconds()
		}
	}
	card.SLOViolationSeconds = violationSec
	if dur := rec.End.Sub(rec.Start).Seconds(); dur > 0 {
		card.ErrorBudgetBurn = violationSec / (sc.SLO.budget() * dur)
	}

	card.Detected, card.DetectionDelayNs, card.FirstAlertSensor = detection(rec)
	card.RecoveryNs = recovery(rec, windows, sc.SLO)
	card.Phases = phaseScores(rec, sc.SLO, windows)
	card.GatewayShed = gatewayShed(rec)

	card.Verdict, card.Reasons = verdict(rec, card)
	return card
}

// bucketize folds the samples into SLO windows and marks violations.
func bucketize(rec *Record, slo SLO) []*window {
	width := slo.window()
	byIdx := make(map[int]*window)
	for _, s := range rec.Results.Samples {
		idx := int(s.Start.Sub(rec.Start) / width)
		w, ok := byIdx[idx]
		if !ok {
			w = &window{start: rec.Start.Add(time.Duration(idx) * width)}
			byIdx[idx] = w
		}
		w.count++
		w.lats = append(w.lats, s.Latency)
		if s.Err != nil {
			var se *loadgen.StatusError
			if errors.As(s.Err, &se) && se.Code == http.StatusTooManyRequests {
				w.shed++
			} else {
				w.errs++
			}
		}
	}
	out := make([]*window, 0, len(byIdx))
	for _, w := range byIdx {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	for _, w := range out {
		sort.Slice(w.lats, func(i, j int) bool { return w.lats[i] < w.lats[j] })
		p95 := percentileDur(w.lats, 0.95)
		errRate := float64(w.errs) / float64(w.count)
		w.violated = p95 > slo.LatencyP95.D() || errRate > slo.MaxErrorRate
	}
	return out
}

// percentileDur is the nearest-rank percentile of a sorted slice.
func percentileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// disruptionWindow returns the [start, end) union bounds of the phases
// that inject anything, preferring adversarial phases for the detection
// anchor.
func disruptionWindow(rec *Record) (advStart, anyStart, anyEnd time.Time, hasAdv, hasAny bool) {
	for _, m := range rec.Marks {
		disruptive := m.Fault != nil || m.Adversarial != nil
		if !disruptive {
			continue
		}
		if !hasAny || m.Start.Before(anyStart) {
			anyStart = m.Start
		}
		if !hasAny || m.End.After(anyEnd) {
			anyEnd = m.End
		}
		hasAny = true
		if m.Adversarial != nil && (!hasAdv || m.Start.Before(advStart)) {
			advStart = m.Start
			hasAdv = true
		}
	}
	return advStart, anyStart, anyEnd, hasAdv, hasAny
}

// detection finds the first sensor alert at or after the disruption
// start.
func detection(rec *Record) (bool, int64, string) {
	advStart, anyStart, _, hasAdv, hasAny := disruptionWindow(rec)
	if !hasAny {
		return false, -1, ""
	}
	anchor := anyStart
	if hasAdv {
		anchor = advStart
	}
	for _, r := range rec.Readings {
		if r.Alert && !r.Time.Before(anchor) {
			return true, r.Time.Sub(anchor).Nanoseconds(), r.Sensor
		}
	}
	return false, -1, ""
}

// recovery measures disruption-end to the end of the first healthy
// window after it.
func recovery(rec *Record, windows []*window, slo SLO) int64 {
	_, _, anyEnd, _, hasAny := disruptionWindow(rec)
	if !hasAny {
		return -1
	}
	width := slo.window()
	for _, w := range windows {
		if w.start.Before(anyEnd) || w.violated {
			continue
		}
		return w.start.Add(width).Sub(anyEnd).Nanoseconds()
	}
	return -1
}

// phaseScores slices the totals per phase mark.
func phaseScores(rec *Record, slo SLO, windows []*window) []PhaseScore {
	out := make([]PhaseScore, 0, len(rec.Marks))
	for _, m := range rec.Marks {
		ps := PhaseScore{Phase: m.Name}
		var lats []time.Duration
		for _, s := range rec.Results.Samples {
			if s.Start.Before(m.Start) || !s.Start.Before(m.End) {
				continue
			}
			ps.Requests++
			lats = append(lats, s.Latency)
			if s.Err != nil {
				var se *loadgen.StatusError
				if errors.As(s.Err, &se) && se.Code == http.StatusTooManyRequests {
					ps.Shed++
				} else {
					ps.Errors++
				}
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ps.P95Ns = percentileDur(lats, 0.95).Nanoseconds()
		for _, w := range windows {
			if w.violated && !w.start.Before(m.Start) && w.start.Before(m.End) {
				ps.SLOViolationSeconds += slo.window().Seconds()
			}
		}
		out = append(out, ps)
	}
	return out
}

// gatewayShed extracts the gateway's shed counter from the telemetry
// snapshot, or -1 without one.
func gatewayShed(rec *Record) int64 {
	for _, f := range rec.Families {
		if f.Name != "spatial_gateway_upstream_shed_total" {
			continue
		}
		var total float64
		for _, s := range f.Series {
			total += s.Value
		}
		return int64(total)
	}
	return -1
}

// verdict applies the pass/degraded/fail rules. The rules are
// deliberately few and mechanical: an undetected adversarial phase or a
// blown error budget or a never-recovered stack fails; a detected-but-
// slow or half-burned run degrades; everything else passes.
func verdict(rec *Record, card Scorecard) (string, []string) {
	var reasons []string
	_, _, anyEnd, hasAdv, hasAny := disruptionWindow(rec)
	fail := false
	if hasAdv && !card.Detected {
		fail = true
		reasons = append(reasons, "adversarial phase ran without any sensor alert")
	}
	if card.ErrorBudgetBurn > 1 {
		fail = true
		reasons = append(reasons, "error budget blown")
	}
	if hasAny && card.RecoveryNs < 0 && rec.End.After(anyEnd) {
		fail = true
		reasons = append(reasons, "no SLO-healthy window after the disruption cleared")
	}
	if fail {
		return "fail", reasons
	}
	if card.ErrorBudgetBurn > 0.5 {
		reasons = append(reasons, "more than half the error budget burned")
	}
	if hasAdv && card.Detected && card.DetectionDelayNs > (5*time.Second).Nanoseconds() {
		reasons = append(reasons, "detection slower than 5s")
	}
	if len(reasons) > 0 {
		return "degraded", reasons
	}
	return "pass", nil
}
