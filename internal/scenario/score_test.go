package scenario

import (
	"net/http"
	"testing"
	"time"

	"repro/internal/loadgen"
	"repro/internal/sensor"
)

// buildRecord fabricates a run record with a precisely known layout:
// 9 seconds, three 3s phases (clean / error-burst fault / clean), one
// sample every 100ms at 10ms latency, errors during the fault phase,
// one alert reading 1s into the fault.
func buildRecord() *Record {
	start := Epoch
	sc := Scenario{
		Name: "fixture",
		Seed: 1,
		SLO:  SLO{LatencyP95: Duration(100 * time.Millisecond), MaxErrorRate: 0.1},
		Phases: []Phase{
			{Name: "warm", Duration: Duration(3 * time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 10}},
			{Name: "burst", Duration: Duration(3 * time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 10},
				Fault: &Fault{Kind: FaultErrorBurst, Rate: 0.5}},
			{Name: "cool", Duration: Duration(3 * time.Second), Shape: Shape{Kind: ShapeSteady, BaseRPS: 10}},
		},
	}
	rec := &Record{
		Scenario: sc,
		Start:    start,
		End:      start.Add(9 * time.Second),
		Marks: []PhaseMark{
			{Name: "warm", Start: start, End: start.Add(3 * time.Second)},
			{Name: "burst", Start: start.Add(3 * time.Second), End: start.Add(6 * time.Second),
				Fault: sc.Phases[1].Fault},
			{Name: "cool", Start: start.Add(6 * time.Second), End: start.Add(9 * time.Second)},
		},
	}
	var samples []loadgen.Sample
	for ts := time.Duration(0); ts < 9*time.Second; ts += 100 * time.Millisecond {
		s := loadgen.Sample{Start: start.Add(ts), Latency: 10 * time.Millisecond}
		// Fault phase: every second sample errors (50% error rate, over
		// the 10% SLO) plus one shed that must NOT count as an error.
		if ts >= 3*time.Second && ts < 6*time.Second {
			if int(ts/(100*time.Millisecond))%2 == 0 {
				s.Err = &loadgen.StatusError{Code: http.StatusInternalServerError}
			}
		}
		samples = append(samples, s)
	}
	samples = append(samples, loadgen.Sample{
		Start:   start.Add(3*time.Second + 50*time.Millisecond),
		Latency: 5 * time.Millisecond,
		Err:     &loadgen.StatusError{Code: http.StatusTooManyRequests},
	})
	rec.Results = &loadgen.Results{Samples: samples, Wall: 9 * time.Second}
	rec.Readings = []sensor.Reading{
		{Sensor: SensorDrift, Value: 0.9, Time: start.Add(2 * time.Second)}, // pre-fault, healthy
		{Sensor: SensorAgreement, Value: 0.3, Alert: true, Time: start.Add(4 * time.Second)},
		{Sensor: SensorAgreement, Value: 0.2, Alert: true, Time: start.Add(5 * time.Second)},
	}
	return rec
}

func TestScoreFixture(t *testing.T) {
	card := Score(buildRecord())

	if card.Requests != 91 || card.Shed != 1 {
		t.Fatalf("totals: requests=%d shed=%d", card.Requests, card.Shed)
	}
	if card.Errors != 15 {
		t.Fatalf("errors (shed excluded): %d", card.Errors)
	}
	// Windows 3,4,5 have 50% error rate > 10% -> 3 violated seconds.
	if card.SLOViolationSeconds != 3 {
		t.Fatalf("slo violation seconds: %v", card.SLOViolationSeconds)
	}
	// Budget: 0.01 (default) * 9s = 0.09s allowed; 3s burned.
	if burn := card.ErrorBudgetBurn; burn < 33 || burn > 34 {
		t.Fatalf("error budget burn: %v", burn)
	}
	if !card.Detected || card.FirstAlertSensor != SensorAgreement {
		t.Fatalf("detection: %+v", card)
	}
	// Fault starts at +3s, first alert at +4s.
	if card.DetectionDelayNs != int64(time.Second) {
		t.Fatalf("detection delay: %d", card.DetectionDelayNs)
	}
	// Fault clears at +6s; window [6,7) is healthy; recovery = 1s.
	if card.RecoveryNs != int64(time.Second) {
		t.Fatalf("recovery: %d", card.RecoveryNs)
	}
	if card.Verdict != "fail" {
		t.Fatalf("verdict: %s (reasons %v)", card.Verdict, card.Reasons)
	}
	if len(card.Phases) != 3 || card.Phases[1].Errors != 15 || card.Phases[1].Shed != 1 {
		t.Fatalf("phase scores: %+v", card.Phases)
	}
	if card.Phases[0].SLOViolationSeconds != 0 || card.Phases[1].SLOViolationSeconds != 3 {
		t.Fatalf("phase violations: %+v", card.Phases)
	}
	if card.GatewayShed != -1 {
		t.Fatalf("gateway shed without telemetry: %d", card.GatewayShed)
	}
}

func TestScoreCleanRunPasses(t *testing.T) {
	rec := buildRecord()
	// Strip the fault, the errors, and keep the alerts out: a clean run.
	rec.Marks[1].Fault = nil
	for i := range rec.Results.Samples {
		rec.Results.Samples[i].Err = nil
	}
	rec.Readings = nil
	card := Score(rec)
	if card.Verdict != "pass" {
		t.Fatalf("clean run verdict: %s (%v)", card.Verdict, card.Reasons)
	}
	if card.Detected || card.DetectionDelayNs != -1 || card.RecoveryNs != -1 {
		t.Fatalf("clean run detection/recovery: %+v", card)
	}
}

func TestScoreUndetectedAdversarialFails(t *testing.T) {
	rec := buildRecord()
	rec.Marks[1].Fault = nil
	rec.Marks[1].Adversarial = &Adversarial{Kind: AdvPoisonWave, Rate: 0.3}
	rec.Readings = nil // nobody alerted
	for i := range rec.Results.Samples {
		rec.Results.Samples[i].Err = nil // SLO is clean; detection alone decides
	}
	card := Score(rec)
	if card.Verdict != "fail" {
		t.Fatalf("undetected adversarial verdict: %s (%v)", card.Verdict, card.Reasons)
	}
}

func TestScorecardJSONStable(t *testing.T) {
	card := Score(buildRecord())
	a, err := card.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := card.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("scorecard JSON is not stable")
	}
}
