package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/attack"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/ml"
	"repro/internal/sensor"
)

// Workload names for Scenario.Workload.
const (
	// WorkloadSynthetic is a small separable two-feature table — the
	// cheapest stand-in when a scenario only exercises traffic and
	// faults.
	WorkloadSynthetic = "synthetic"
	// WorkloadFall is the UniMiB-style fall-detection data of use case 1.
	WorkloadFall = "fall"
	// WorkloadNetTraffic is the flow-feature data of use case 2.
	WorkloadNetTraffic = "nettraffic"
)

// Sensor names the stream registers on a sensor.Manager.
const (
	// SensorDrift watches the stream's feature distributions with the
	// KS/PSI detector (value = drift.Score, 1 means no drift).
	SensorDrift = "scenario-drift"
	// SensorAgreement watches prediction/label agreement on the stream
	// (value = agreement fraction; poisoned labels or evasive features
	// both collapse it).
	SensorAgreement = "scenario-agreement"
)

// Alert-threshold calibration. Clean-baseline drift and agreement levels
// differ wildly across workloads (the 151-feature fall table rejects a
// fifth of its features on any 64-row resample; the synthetic table
// almost none), so fixed thresholds either false-alarm or miss. Instead
// NewStream emits calBatches clean probe batches, records the worst
// clean score of each sensor, and sets the alert line that margin below
// it — an alert is then evidence of something the clean baseline never
// does.
const (
	calBatches  = 48
	driftMargin = 0.20
	agreeMargin = 0.10
	alertFloor  = 0.05
)

// Stream is the model's data plane inside a scenario: a clean reference
// distribution plus a generator that emits batches, optionally perturbed
// by the running phase's adversarial action. The drift detector and the
// serving model watch the same batches the executor emits, so detection
// delay is measured against the exact bytes the adversary produced.
type Stream struct {
	reference *dataset.Table
	model     ml.GradientClassifier
	det       *drift.Detector
	batchSize int

	// Calibrated alert lines (see the calibration constants).
	driftAlert float64
	agreeAlert float64

	mu   sync.Mutex
	rng  *rand.Rand
	last *dataset.Table
}

// NewStream fits the drift reference and wires the model. The reference
// table must be standardized (or otherwise scale-homogeneous): the
// covariate-shift action offsets features in standard-deviation units.
func NewStream(reference *dataset.Table, model ml.GradientClassifier, seed int64) (*Stream, error) {
	if model == nil || model.NumClasses() == 0 {
		return nil, fmt.Errorf("scenario: stream needs a trained model")
	}
	// KS alpha and a loose PSI threshold tuned for 64-row batches: at
	// that sample size a 0.2 PSI fires on resampling noise alone.
	det, err := drift.Fit(reference, 0.005, 0.45, 8)
	if err != nil {
		return nil, fmt.Errorf("scenario: fit drift reference: %w", err)
	}
	s := &Stream{
		reference: reference,
		model:     model,
		det:       det,
		batchSize: 64,
		rng:       rand.New(rand.NewSource(seed)),
	}
	if err := s.calibrate(); err != nil {
		return nil, err
	}
	return s, nil
}

// calibrate emits clean probe batches and anchors the alert thresholds
// the configured margins below the worst clean score observed. The
// probes consume the stream's seeded RNG deterministically and the last
// batch is cleared afterwards, so a run starts from a pristine stream.
func (s *Stream) calibrate() error {
	minDrift, minAgree := 1.0, 1.0
	for i := 0; i < calBatches; i++ {
		if err := s.Emit(nil, 0); err != nil {
			return fmt.Errorf("scenario: calibrate stream: %w", err)
		}
		batch := s.lastBatch()
		rep, err := s.det.Detect(batch)
		if err != nil {
			return fmt.Errorf("scenario: calibrate drift: %w", err)
		}
		if v := drift.Score(rep); v < minDrift {
			minDrift = v
		}
		if v := agreement(s.model, batch); v < minAgree {
			minAgree = v
		}
	}
	s.driftAlert = math.Max(alertFloor, minDrift-driftMargin)
	s.agreeAlert = math.Max(alertFloor, minAgree-agreeMargin)
	s.mu.Lock()
	s.last = nil
	s.mu.Unlock()
	return nil
}

// AlertLines reports the calibrated drift and agreement alert
// thresholds.
func (s *Stream) AlertLines() (driftBelow, agreementBelow float64) {
	return s.driftAlert, s.agreeAlert
}

// agreement is the fraction of rows the model predicts to their label.
func agreement(model ml.GradientClassifier, batch *dataset.Table) float64 {
	agree := 0
	for i, x := range batch.X {
		if ml.Predict(model, x) == batch.Y[i] {
			agree++
		}
	}
	return float64(agree) / float64(batch.Len())
}

// Reference exposes the clean reference table (live runners post its
// rows as request bodies).
func (s *Stream) Reference() *dataset.Table { return s.reference }

// Model exposes the trained model backing the stream.
func (s *Stream) Model() ml.GradientClassifier { return s.model }

// Emit generates the next batch: clean rows resampled from the
// reference, then perturbed by adv (nil = clean). progress in [0,1] is
// the position inside the adversarial phase, consumed by ramping
// actions. The batch becomes the one the stream sensors score.
func (s *Stream) Emit(adv *Adversarial, progress float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	batch := dataset.New(s.reference.Name, s.reference.FeatureNames, s.reference.ClassNames)
	n := s.reference.Len()
	for i := 0; i < s.batchSize; i++ {
		src := s.rng.Intn(n)
		row := append([]float64(nil), s.reference.X[src]...)
		if err := batch.Append(row, s.reference.Y[src]); err != nil {
			return fmt.Errorf("scenario: emit batch: %w", err)
		}
	}
	if adv != nil {
		perturbed, err := s.perturbLocked(batch, adv, progress)
		if err != nil {
			return err
		}
		batch = perturbed
	}
	s.last = batch
	return nil
}

// perturbLocked applies one adversarial action to a batch.
func (s *Stream) perturbLocked(batch *dataset.Table, adv *Adversarial, progress float64) (*dataset.Table, error) {
	switch adv.Kind {
	case AdvPoisonWave:
		seed := s.rng.Int63()
		if adv.Target >= 0 {
			return attack.TargetedFlip(batch, adv.Rate, adv.Target, seed)
		}
		return attack.LabelFlip(batch, adv.Rate, seed)
	case AdvFGSMBurst:
		res, err := attack.FGSM(s.model, batch, adv.Eps)
		if err != nil {
			return nil, fmt.Errorf("scenario: fgsm burst: %w", err)
		}
		return res.Adversarial, nil
	case AdvCovariateShift:
		if progress < 0 {
			progress = 0
		}
		if progress > 1 {
			progress = 1
		}
		offset := adv.Magnitude * progress
		out := batch.Clone()
		for _, row := range out.X {
			for j := range row {
				row[j] += offset
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("scenario: unknown adversarial kind %q", adv.Kind)
	}
}

// lastBatch returns the most recently emitted batch, or nil.
func (s *Stream) lastBatch() *dataset.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// DriftCollector scores the last batch with the KS/PSI detector. Before
// the first emission it reports a healthy 1.0.
func (s *Stream) DriftCollector() sensor.Collector {
	return sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
		batch := s.lastBatch()
		if batch == nil {
			return 1, nil, nil
		}
		rep, err := s.det.Detect(batch)
		if err != nil {
			return 0, nil, err
		}
		return drift.Score(rep), map[string]float64{
			"driftedFraction": rep.DriftedFraction,
		}, nil
	})
}

// AgreementCollector scores prediction/label agreement on the last
// batch: label-flip poisoning lowers it through the labels, FGSM through
// the features.
func (s *Stream) AgreementCollector() sensor.Collector {
	return sensor.CollectorFunc(func(ctx context.Context) (float64, map[string]float64, error) {
		batch := s.lastBatch()
		if batch == nil {
			return 1, nil, nil
		}
		return agreement(s.model, batch), nil, nil
	})
}

// RegisterSensors registers the stream's drift and agreement sensors on
// the manager with the given sampling interval and the calibrated alert
// thresholds.
func (s *Stream) RegisterSensors(m *sensor.Manager, interval Duration) error {
	if err := m.Register(&sensor.Sensor{
		Name:      SensorDrift,
		Property:  sensor.PropPerformance,
		Interval:  interval.D(),
		Collector: s.DriftCollector(),
		Threshold: sensor.Threshold{Min: sensor.Float64Ptr(s.driftAlert)},
	}); err != nil {
		return err
	}
	return m.Register(&sensor.Sensor{
		Name:      SensorAgreement,
		Property:  sensor.PropResilience,
		Interval:  interval.D(),
		Collector: s.AgreementCollector(),
		Threshold: sensor.Threshold{Min: sensor.Float64Ptr(s.agreeAlert)},
	})
}

// BuildWorkload constructs the stream for a scenario's named workload:
// generate the dataset, standardize features (so covariate shifts and
// FGSM budgets are in comparable units), train the white-box model, and
// fit the drift reference on a held-out split.
func BuildWorkload(name string, seed int64) (*Stream, error) {
	var table *dataset.Table
	switch name {
	case "", WorkloadSynthetic:
		table = syntheticTable(seed)
	case WorkloadFall:
		cfg := datagen.DefaultUniMiBConfig()
		cfg.Samples = 600
		cfg.Seed = seed
		t, err := datagen.UniMiBBinary(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario: build fall workload: %w", err)
		}
		table = t
	case WorkloadNetTraffic:
		cfg := datagen.DefaultNetTrafficConfig()
		cfg.Seed = seed
		t, _, err := datagen.NetTraffic(cfg)
		if err != nil {
			return nil, fmt.Errorf("scenario: build nettraffic workload: %w", err)
		}
		table = t
	default:
		return nil, fmt.Errorf("scenario: unknown workload %q", name)
	}

	scaler, err := dataset.FitScaler(table)
	if err != nil {
		return nil, fmt.Errorf("scenario: fit scaler: %w", err)
	}
	if err := scaler.Transform(table); err != nil {
		return nil, fmt.Errorf("scenario: scale workload: %w", err)
	}

	cfg := ml.DefaultLogRegConfig()
	cfg.Seed = seed
	model := ml.NewLogReg(cfg)
	if err := model.Fit(table); err != nil {
		return nil, fmt.Errorf("scenario: train workload model: %w", err)
	}
	return NewStream(table, model, seed)
}

// syntheticTable builds the small separable table used by
// traffic/fault-only scenarios. Six features, not two: drift.Score is
// 1 − driftedFraction, so with only two features a single false-positive
// KS rejection on a clean 64-row batch already drops the score to 0.5 —
// under the 0.70 alert line. At six features one flaky feature reads
// 0.83 and stays healthy.
func syntheticTable(seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	t := dataset.New("synthetic", names, []string{"a", "b"})
	for i := 0; i < 360; i++ {
		y := i % 2
		x := []float64{
			float64(y)*4 - 2 + rng.NormFloat64()*0.5,
			math.Sin(float64(i)/7) + rng.NormFloat64()*0.3,
			rng.NormFloat64(),
			float64(y) + rng.NormFloat64()*0.8,
			math.Cos(float64(i)/11) + rng.NormFloat64()*0.4,
			rng.Float64()*2 - 1,
		}
		// Append only rejects shape mismatches, which the fixed literal
		// above cannot produce.
		_ = t.Append(x, y)
	}
	return t
}
