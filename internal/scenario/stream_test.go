package scenario

import (
	"context"
	"testing"
)

func TestBuildWorkloadKinds(t *testing.T) {
	for _, wl := range []string{WorkloadSynthetic, WorkloadFall, WorkloadNetTraffic, ""} {
		s, err := BuildWorkload(wl, 3)
		if err != nil {
			t.Fatalf("%q: %v", wl, err)
		}
		dLine, aLine := s.AlertLines()
		if dLine <= 0 || dLine >= 1 || aLine <= 0 || aLine >= 1 {
			t.Fatalf("%q: calibrated alert lines out of range: drift=%v agree=%v", wl, dLine, aLine)
		}
	}
	if _, err := BuildWorkload("martian", 3); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStreamAdversarialActionsMoveSensors(t *testing.T) {
	s, err := BuildWorkload(WorkloadSynthetic, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	driftLine, agreeLine := s.AlertLines()

	// Clean batches stay above both alert lines.
	for i := 0; i < 5; i++ {
		if err := s.Emit(nil, 0); err != nil {
			t.Fatal(err)
		}
		dv, _, err := s.DriftCollector().Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		av, _, err := s.AgreementCollector().Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if dv < driftLine {
			t.Fatalf("clean batch %d under drift alert line: %v < %v", i, dv, driftLine)
		}
		if av < agreeLine {
			t.Fatalf("clean batch %d under agreement alert line: %v < %v", i, av, agreeLine)
		}
	}

	// A 40% poison wave collapses agreement but not feature drift.
	if err := s.Emit(&Adversarial{Kind: AdvPoisonWave, Rate: 0.4, Target: -1}, 0.5); err != nil {
		t.Fatal(err)
	}
	av, _, err := s.AgreementCollector().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if av >= agreeLine {
		t.Fatalf("poisoned agreement above alert line: %v >= %v", av, agreeLine)
	}

	// A full-magnitude covariate shift collapses the drift score.
	if err := s.Emit(&Adversarial{Kind: AdvCovariateShift, Magnitude: 3}, 1); err != nil {
		t.Fatal(err)
	}
	dv, _, err := s.DriftCollector().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if dv >= driftLine {
		t.Fatalf("shifted drift score above alert line: %v >= %v", dv, driftLine)
	}

	// An FGSM burst at a hostile budget breaks prediction agreement.
	if err := s.Emit(&Adversarial{Kind: AdvFGSMBurst, Eps: 1.5}, 0); err != nil {
		t.Fatal(err)
	}
	av, _, err = s.AgreementCollector().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if av >= agreeLine {
		t.Fatalf("fgsm agreement above alert line: %v >= %v", av, agreeLine)
	}

	// Unknown action kinds are rejected.
	if err := s.Emit(&Adversarial{Kind: "meteor"}, 0); err == nil {
		t.Fatal("unknown adversarial kind accepted")
	}
}

func TestStreamEmitDeterministic(t *testing.T) {
	emit := func() [][]float64 {
		s, err := BuildWorkload(WorkloadSynthetic, 9)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Emit(&Adversarial{Kind: AdvPoisonWave, Rate: 0.3, Target: -1}, 0); err != nil {
			t.Fatal(err)
		}
		return s.lastBatch().X
	}
	a, b := emit(), emit()
	if len(a) != len(b) {
		t.Fatalf("batch sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d feature %d diverged", i, j)
			}
		}
	}
}
