package scenario

import (
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/loadgen"
)

// VirtualTarget is the deterministic service model smoke scenarios run
// against: a closed-form latency/shedding curve standing in for the
// gateway + serving stack, with the same fault surface as the chaos
// proxy. Under clock.Fake with a fixed seed every Sample sequence —
// latencies, sheds, injected faults — reproduces bit-for-bit, which is
// what makes scorecards byte-identical across runs.
type VirtualTarget struct {
	// BaseLatency is the unloaded service latency (default 20ms).
	BaseLatency time.Duration
	// CapacityRPS is the admission watermark: offered load beyond it is
	// shed with 429s while served latency stays flat (default 150).
	CapacityRPS float64

	mu    sync.Mutex
	fault *Fault
	rng   *rand.Rand

	stats ChaosStats
}

// NewVirtualTarget builds the model with the given seed.
func NewVirtualTarget(base time.Duration, capacity float64, seed int64) *VirtualTarget {
	if base <= 0 {
		base = 20 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 150
	}
	return &VirtualTarget{
		BaseLatency: base,
		CapacityRPS: capacity,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// SetFault installs (or clears, with nil) the active fault — the virtual
// equivalent of reconfiguring the chaos proxy.
func (v *VirtualTarget) SetFault(f *Fault) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if f == nil {
		v.fault = nil
		return
	}
	cp := *f
	v.fault = &cp
}

// Stats snapshots the injected-fault counters.
func (v *VirtualTarget) Stats() ChaosStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// Sample resolves one request at the given offered load. The latency
// curve is base · (1 + 4·util³) up to the watermark; past it, admission
// control sheds the excess fraction with 429s and served latency stays
// clamped at 5·base — the "flat latency, rising sheds" signature a
// healthy overloaded stack shows (a collapsing one would instead explode
// the percentiles).
func (v *VirtualTarget) Sample(offeredRPS float64) (time.Duration, error) {
	v.mu.Lock()
	defer v.mu.Unlock()

	// Fault overlay first: a downed or resetting upstream answers
	// before load modeling matters.
	var extra time.Duration
	if f := v.fault; f != nil {
		switch f.Kind {
		case FaultDown:
			v.stats.Reset++
			return v.BaseLatency / 10, ErrInjectedReset
		case FaultReset:
			if v.rng.Float64() < f.rate() {
				v.stats.Reset++
				return v.BaseLatency / 10, ErrInjectedReset
			}
		case FaultErrorBurst:
			if v.rng.Float64() < f.rate() {
				code := f.Code
				if code == 0 {
					code = http.StatusServiceUnavailable
				}
				v.stats.Errored++
				return v.BaseLatency / 2, &loadgen.StatusError{Code: code}
			}
		case FaultLatency:
			if v.rng.Float64() < f.rate() {
				extra = f.Latency.D()
				if j := f.Jitter.D(); j > 0 {
					extra += time.Duration(v.rng.Int63n(int64(2*j))) - j
				}
				if extra < 0 {
					extra = 0
				}
				v.stats.Delayed++
			}
		}
	}

	util := offeredRPS / v.CapacityRPS
	if util > 1 {
		// Shed the excess fraction: P(shed) = 1 - 1/util keeps the
		// served rate at the watermark.
		if v.rng.Float64() < 1-1/util {
			v.stats.Errored++
			return v.BaseLatency / 4, &loadgen.StatusError{Code: http.StatusTooManyRequests}
		}
		util = 1.25 // served requests run at the clamped overload point
	}
	factor := 1 + 4*util*util*util
	if factor > 9 {
		factor = 9
	}
	lat := time.Duration(float64(v.BaseLatency) * factor * math.Exp(0.05*v.rng.NormFloat64()))
	v.stats.Passed++
	return lat + extra, nil
}
