package scenario

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/loadgen"
)

func TestVirtualTargetLoadCurve(t *testing.T) {
	v := NewVirtualTarget(20*time.Millisecond, 100, 1)

	// Light load: latency near base, no errors.
	for i := 0; i < 50; i++ {
		lat, err := v.Sample(10)
		if err != nil {
			t.Fatalf("light load error: %v", err)
		}
		if lat < 10*time.Millisecond || lat > 40*time.Millisecond {
			t.Fatalf("light-load latency out of band: %v", lat)
		}
	}

	// 3x overload: about 2/3 of requests shed with 429, served latency
	// stays clamped (flat-latency-rising-sheds, not collapse).
	sheds, served := 0, 0
	var worst time.Duration
	for i := 0; i < 600; i++ {
		lat, err := v.Sample(300)
		if err != nil {
			var se *loadgen.StatusError
			if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
				t.Fatalf("overload error is not a shed: %v", err)
			}
			sheds++
			continue
		}
		served++
		if lat > worst {
			worst = lat
		}
	}
	if sheds < 300 || sheds > 500 {
		t.Fatalf("sheds at 3x overload: %d of 600", sheds)
	}
	if worst > 250*time.Millisecond {
		t.Fatalf("served latency collapsed under overload: %v", worst)
	}

	st := v.Stats()
	if int(st.Errored) != sheds || int(st.Passed) != 50+served {
		t.Fatalf("stats: %+v (sheds=%d served=%d)", st, sheds, served)
	}
}

func TestVirtualTargetFaults(t *testing.T) {
	v := NewVirtualTarget(20*time.Millisecond, 100, 2)

	v.SetFault(&Fault{Kind: FaultDown})
	if _, err := v.Sample(10); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("down: %v", err)
	}

	v.SetFault(&Fault{Kind: FaultErrorBurst, Code: 500})
	var se *loadgen.StatusError
	if _, err := v.Sample(10); !errors.As(err, &se) || se.Code != 500 {
		t.Fatalf("error burst: %v", err)
	}

	v.SetFault(&Fault{Kind: FaultLatency, Latency: Duration(200 * time.Millisecond)})
	lat, err := v.Sample(10)
	if err != nil || lat < 200*time.Millisecond {
		t.Fatalf("latency fault: lat=%v err=%v", lat, err)
	}

	v.SetFault(nil)
	if lat, err := v.Sample(10); err != nil || lat > 100*time.Millisecond {
		t.Fatalf("cleared fault: lat=%v err=%v", lat, err)
	}
}

func TestVirtualTargetDeterministic(t *testing.T) {
	run := func() []time.Duration {
		v := NewVirtualTarget(20*time.Millisecond, 100, 7)
		out := make([]time.Duration, 100)
		for i := range out {
			lat, _ := v.Sample(150)
			out[i] = lat
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}
