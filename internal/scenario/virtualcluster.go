package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
)

// VirtualCluster is the sharded counterpart of VirtualTarget: N virtual
// replicas behind the same bounded-load consistent-hash ring the real
// internal/cluster tier routes with. Every request for the scenario's
// routing key lands on its shard owner until a replica-kill fault takes
// the owner out, at which point the ring walk reroutes to the next live
// member and the Rerouted counter ticks — the deterministic stand-in
// for the cluster failover the real tier performs. Kills persist across
// SetFault(nil) (phase boundaries) until a replica-restart fault
// revives the member, so a campaign can hold a replica down across
// several phases and score the recovery after the restart.
type VirtualCluster struct {
	key  string
	ids  []string
	ring *cluster.Ring

	mu       sync.Mutex
	replicas []*VirtualTarget
	down     []bool
	rerouted int64
	dead     int64 // requests refused because every replica was down
}

// NewVirtualCluster builds n virtual replicas ("replica-0"...) sharing
// one routing key. base and capacity default per NewVirtualTarget; each
// replica draws from its own seed+index stream so routing decides which
// stream advances and determinism survives failover.
func NewVirtualCluster(n int, base time.Duration, capacity float64, seed int64, key string) *VirtualCluster {
	if n < 2 {
		n = 2
	}
	if key == "" {
		key = "model"
	}
	vc := &VirtualCluster{
		key:      key,
		ids:      make([]string, n),
		replicas: make([]*VirtualTarget, n),
		down:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		vc.ids[i] = fmt.Sprintf("replica-%d", i)
	}
	// Ring.Walk reports indices into the ring's sorted ID list; keep
	// vc.ids in that exact order so the indices line up.
	sort.Strings(vc.ids)
	for i := 0; i < n; i++ {
		vc.replicas[i] = NewVirtualTarget(base, capacity, seed+int64(i))
	}
	vc.ring = cluster.NewRing(vc.ids, 0)
	return vc
}

// Owner returns the live member currently serving the routing key, or
// "" when the whole tier is down.
func (vc *VirtualCluster) Owner() string {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	idx, _ := vc.pickLocked()
	if idx < 0 {
		return ""
	}
	return vc.ids[idx]
}

// pickLocked walks the ring from the shard owner to the first live
// member. rerouted is true when that member is not the owner.
func (vc *VirtualCluster) pickLocked() (idx int, rerouted bool) {
	owner := vc.ring.Owner(vc.key)
	idx = -1
	vc.ring.Walk(vc.key, func(i int) bool {
		if vc.down[i] {
			return true
		}
		idx = i
		return false
	})
	if idx < 0 {
		return -1, false
	}
	return idx, idx != owner
}

// SetFault installs the phase fault. Replica faults mutate the tier's
// membership (and stick until reversed); every other kind — including
// nil at phase end — is forwarded to all replicas so the usual
// latency/error/reset overlays apply to whichever member serves.
func (vc *VirtualCluster) SetFault(f *Fault) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if f != nil && f.clusterFault() {
		switch f.Kind {
		case FaultReplicaKill:
			target := f.Replica
			if target == "" {
				if idx, _ := vc.pickLocked(); idx >= 0 {
					target = vc.ids[idx]
				}
			}
			for i, id := range vc.ids {
				if id == target {
					vc.down[i] = true
				}
			}
		case FaultReplicaRestart:
			for i, id := range vc.ids {
				if f.Replica == "" || id == f.Replica {
					vc.down[i] = false
				}
			}
		}
		// A replica fault replaces the transient overlay for the phase.
		f = nil
	}
	for _, r := range vc.replicas {
		r.SetFault(f)
	}
}

// Sample routes one request through the ring and resolves it on the
// serving replica's latency/shedding model.
func (vc *VirtualCluster) Sample(offeredRPS float64) (time.Duration, error) {
	vc.mu.Lock()
	idx, rerouted := vc.pickLocked()
	if idx < 0 {
		vc.dead++
		base := vc.replicas[0].BaseLatency
		vc.mu.Unlock()
		return base / 10, ErrInjectedReset
	}
	if rerouted {
		vc.rerouted++
	}
	r := vc.replicas[idx]
	vc.mu.Unlock()
	return r.Sample(offeredRPS)
}

// Stats sums the per-replica injection counters and adds the tier-level
// reroute/refusal counts.
func (vc *VirtualCluster) Stats() ChaosStats {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	var out ChaosStats
	for _, r := range vc.replicas {
		s := r.Stats()
		out.Delayed += s.Delayed
		out.Errored += s.Errored
		out.Reset += s.Reset
		out.Passed += s.Passed
	}
	out.Reset += vc.dead
	out.Rerouted = vc.rerouted
	return out
}
