package scenario

import (
	"context"
	"testing"
	"time"
)

// TestVirtualClusterFailover drives the tier directly: killing the shard
// owner reroutes every subsequent request, the kill sticks across phase
// boundaries (SetFault(nil)), and only a restart revives the member.
func TestVirtualClusterFailover(t *testing.T) {
	vc := NewVirtualCluster(3, 20*time.Millisecond, 1000, 1, "model")
	owner := vc.Owner()
	if owner == "" {
		t.Fatal("fresh cluster has no owner")
	}
	if _, err := vc.Sample(10); err != nil {
		t.Fatalf("warm sample: %v", err)
	}
	if got := vc.Stats().Rerouted; got != 0 {
		t.Fatalf("%d reroutes before any kill", got)
	}

	vc.SetFault(&Fault{Kind: FaultReplicaKill})
	next := vc.Owner()
	if next == owner || next == "" {
		t.Fatalf("owner after kill: %q (was %q)", next, owner)
	}
	if _, err := vc.Sample(10); err != nil {
		t.Fatalf("sample after kill: %v", err)
	}
	vc.SetFault(nil) // phase boundary: the kill must persist
	if got := vc.Owner(); got != next {
		t.Fatalf("kill did not survive SetFault(nil): owner %q, want %q", got, next)
	}
	if _, err := vc.Sample(10); err != nil {
		t.Fatal(err)
	}
	if got := vc.Stats().Rerouted; got != 2 {
		t.Fatalf("rerouted = %d after two off-owner samples, want 2", got)
	}

	vc.SetFault(&Fault{Kind: FaultReplicaRestart})
	if got := vc.Owner(); got != owner {
		t.Fatalf("restart did not restore the owner: %q, want %q", got, owner)
	}

	// Killing everything refuses requests with a reset.
	vc.SetFault(&Fault{Kind: FaultReplicaKill, Replica: "replica-0"})
	vc.SetFault(&Fault{Kind: FaultReplicaKill, Replica: "replica-1"})
	vc.SetFault(&Fault{Kind: FaultReplicaKill, Replica: "replica-2"})
	if _, err := vc.Sample(10); err == nil {
		t.Fatal("sample on a fully dead tier succeeded")
	}
	if got := vc.Owner(); got != "" {
		t.Fatalf("dead tier still names owner %q", got)
	}
}

// TestVirtualClusterTransientFaults forwards non-replica faults to the
// serving member like the single-target model.
func TestVirtualClusterTransientFaults(t *testing.T) {
	vc := NewVirtualCluster(2, 20*time.Millisecond, 1000, 1, "model")
	vc.SetFault(&Fault{Kind: FaultDown})
	if _, err := vc.Sample(10); err == nil {
		t.Fatal("down fault did not refuse the request")
	}
	vc.SetFault(nil) // transient faults clear at phase end
	if _, err := vc.Sample(10); err != nil {
		t.Fatalf("sample after clearing transient fault: %v", err)
	}
}

// TestClusterFaultValidation rejects replica faults without a cluster
// spec and misuse of the replica target.
func TestClusterFaultValidation(t *testing.T) {
	base := Scenario{
		Name: "v", Seed: 1,
		SLO: SLO{LatencyP95: dur(100 * time.Millisecond)},
		Phases: []Phase{{
			Name: "p", Duration: dur(time.Second),
			Shape: Shape{Kind: ShapeSteady, BaseRPS: 10},
			Fault: &Fault{Kind: FaultReplicaKill},
		}},
	}
	if err := base.Validate(); err == nil {
		t.Fatal("replica fault without cluster spec validated")
	}
	base.Cluster = &ClusterSpec{Replicas: 3}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid cluster scenario rejected: %v", err)
	}
	base.Cluster.Replicas = 1
	if err := base.Validate(); err == nil {
		t.Fatal("single-replica cluster validated")
	}
	base.Cluster.Replicas = 3
	base.Phases[0].Fault = &Fault{Kind: FaultLatency, Latency: dur(time.Millisecond), Replica: "replica-0"}
	if err := base.Validate(); err == nil {
		t.Fatal("replica target on a non-replica fault validated")
	}
}

// TestClusterFailoverCampaignDeterministic runs the builtin end to end
// twice: the scorecards must be byte-identical, count real reroutes, and
// record a recovery after the restart phase.
func TestClusterFailoverCampaignDeterministic(t *testing.T) {
	sc, ok := Default().Get("cluster-failover")
	if !ok {
		t.Fatal("cluster-failover not in the builtin library")
	}
	run := func() ([]byte, Scorecard) {
		rec, err := RunVirtual(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		card := Score(rec)
		raw, err := card.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw, card
	}
	raw1, card := run()
	raw2, _ := run()
	if string(raw1) != string(raw2) {
		t.Fatalf("cluster-failover scorecards differ across seeded runs:\n%s\n%s", raw1, raw2)
	}
	if card.Faults.Rerouted == 0 {
		t.Fatal("campaign killed the shard owner but counted zero reroutes")
	}
	if card.RecoveryNs < 0 {
		t.Fatalf("no recovery recorded after the restart phase (verdict %s: %v)", card.Verdict, card.Reasons)
	}
	if card.Verdict == "fail" {
		t.Fatalf("cluster-failover verdict %q: %v", card.Verdict, card.Reasons)
	}
}
