package sensor

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestSamplingIntervalBoundsDetectionDelay is the DESIGN.md §5 ablation:
// a sensor can only notice a model compromise at its next sample, so the
// detection delay is bounded by (and grows with) the sampling interval.
// The manager runs on a fake clock, so the delay is asserted exactly on
// a virtual timeline instead of with real sleeps and scheduler slack.
func TestSamplingIntervalBoundsDetectionDelay(t *testing.T) {
	// A monitored value that drops below the alert threshold at a known
	// instant, simulating a model-swap poisoning event.
	detectAfterCompromise := func(interval time.Duration) time.Duration {
		fc := clock.NewFake(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
		var mu sync.Mutex
		compromised := false

		published := make(chan Reading, 16)
		sink := SinkFunc(func(_ context.Context, r Reading) error {
			published <- r
			return nil
		})
		m := NewManager(sink)
		m.UseClock(fc)
		if err := m.Register(&Sensor{
			Name:     "acc",
			Property: PropPerformance,
			Interval: interval,
			Collector: CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				if compromised {
					return 0.4, nil, nil
				}
				return 0.95, nil, nil
			}),
			Threshold: Threshold{Min: Float64Ptr(0.9)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer m.Stop()

		// The run loop collects once at startup; that reading must be
		// healthy. Receiving it also proves the sampling ticker is armed.
		if r := <-published; r.Alert {
			t.Fatalf("interval %v: healthy reading alerted", interval)
		}

		// Compromise the model at the current virtual instant, then step
		// the clock one sampling period at a time until the alert fires.
		mu.Lock()
		compromised = true
		mu.Unlock()
		at := fc.Now()
		for i := 0; i < 5; i++ {
			fc.Advance(interval)
			if r := <-published; r.Alert {
				return r.Time.Sub(at)
			}
		}
		t.Fatalf("interval %v: compromise never detected", interval)
		return 0
	}

	fast := detectAfterCompromise(30 * time.Millisecond)
	slow := detectAfterCompromise(400 * time.Millisecond)

	// On the fake timeline detection lands exactly on the first sample
	// after the compromise: one full sampling period later.
	if fast != 30*time.Millisecond {
		t.Fatalf("30ms sensor detected after %v, want exactly one interval", fast)
	}
	if slow != 400*time.Millisecond {
		t.Fatalf("400ms sensor detected after %v, want exactly one interval", slow)
	}
	if slow <= fast {
		t.Fatalf("slower sampling detected faster: %v vs %v", slow, fast)
	}
}
