package sensor

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSamplingIntervalBoundsDetectionDelay is the DESIGN.md §5 ablation:
// a sensor can only notice a model compromise at its next sample, so the
// detection delay is bounded by (and grows with) the sampling interval.
func TestSamplingIntervalBoundsDetectionDelay(t *testing.T) {
	// A monitored value that drops below the alert threshold at a known
	// instant, simulating a model-swap poisoning event.
	detectAfterCompromise := func(interval time.Duration) time.Duration {
		var mu sync.Mutex
		compromised := false

		alerted := make(chan time.Time, 1)
		sink := SinkFunc(func(_ context.Context, r Reading) error {
			if r.Alert {
				select {
				case alerted <- time.Now():
				default:
				}
			}
			return nil
		})
		m := NewManager(sink)
		if err := m.Register(&Sensor{
			Name:     "acc",
			Property: PropPerformance,
			Interval: interval,
			Collector: CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
				mu.Lock()
				defer mu.Unlock()
				if compromised {
					return 0.4, nil, nil
				}
				return 0.95, nil, nil
			}),
			Threshold: Threshold{Min: Float64Ptr(0.9)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := m.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer m.Stop()

		// Let the sensor settle, then compromise the model.
		time.Sleep(interval + 20*time.Millisecond)
		mu.Lock()
		compromised = true
		at := time.Now()
		mu.Unlock()

		select {
		case detected := <-alerted:
			return detected.Sub(at)
		case <-time.After(10 * interval * 3):
			t.Fatalf("interval %v: compromise never detected", interval)
			return 0
		}
	}

	fast := detectAfterCompromise(30 * time.Millisecond)
	slow := detectAfterCompromise(400 * time.Millisecond)

	// The fast sensor must detect within a few intervals; the slow one
	// cannot beat its sampling period on average. Generous margins keep
	// the test stable on a loaded single-CPU host.
	if fast > 300*time.Millisecond {
		t.Fatalf("30ms sensor took %v to detect", fast)
	}
	if slow < fast {
		t.Fatalf("slower sampling detected faster: %v vs %v", slow, fast)
	}
}
