// Package sensor implements SPATIAL's AI sensors: software probes
// instrumented into an application that periodically quantify one
// trustworthy property of its AI component (performance, explainability,
// resilience, fairness, ...) and publish the measurements toward the AI
// dashboard.
//
// A Sensor wraps a Collector (usually an API call to a metric
// micro-service through the gateway) with a sampling interval and optional
// alert thresholds; a Manager owns the sensors' goroutine lifecycles.
package sensor

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Property names the trustworthy property a sensor gauges.
type Property string

// Trustworthy properties monitored by the reproduction's sensors.
const (
	PropPerformance    Property = "performance"
	PropExplainability Property = "explainability"
	PropResilience     Property = "resilience"
	PropFairness       Property = "fairness"
	PropPrivacy        Property = "privacy"
)

// Reading is one sensor measurement.
type Reading struct {
	Sensor   string             `json:"sensor"`
	Property Property           `json:"property"`
	Value    float64            `json:"value"`
	Detail   map[string]float64 `json:"detail,omitempty"`
	Time     time.Time          `json:"time"`
	Alert    bool               `json:"alert"`
	AlertMsg string             `json:"alertMsg,omitempty"`
}

// Collector produces one measurement. Implementations typically call a
// metric micro-service.
type Collector interface {
	Collect(ctx context.Context) (value float64, detail map[string]float64, err error)
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(ctx context.Context) (float64, map[string]float64, error)

// Collect implements Collector.
func (f CollectorFunc) Collect(ctx context.Context) (float64, map[string]float64, error) {
	return f(ctx)
}

// Threshold bounds acceptable sensor values; readings outside [Min, Max]
// raise an alert. Use nil to leave a side unbounded.
type Threshold struct {
	Min *float64
	Max *float64
}

// check returns an alert message for out-of-range values, or "".
func (t Threshold) check(v float64) string {
	if t.Min != nil && v < *t.Min {
		return fmt.Sprintf("value %.4g below minimum %.4g", v, *t.Min)
	}
	if t.Max != nil && v > *t.Max {
		return fmt.Sprintf("value %.4g above maximum %.4g", v, *t.Max)
	}
	return ""
}

// Sink consumes readings (e.g. the dashboard ingest API).
type Sink interface {
	Publish(ctx context.Context, r Reading) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(ctx context.Context, r Reading) error

// Publish implements Sink.
func (f SinkFunc) Publish(ctx context.Context, r Reading) error { return f(ctx, r) }

// Sensor describes one AI sensor.
type Sensor struct {
	// Name uniquely identifies the sensor within a Manager.
	Name string
	// Property is the trustworthy property being gauged.
	Property Property
	// Interval is the sampling period (default 1s).
	Interval time.Duration
	// Collector produces the measurement.
	Collector Collector
	// Threshold optionally raises alerts.
	Threshold Threshold
}

func (s *Sensor) validate() error {
	if s.Name == "" {
		return fmt.Errorf("sensor: missing name")
	}
	if s.Property == "" {
		return fmt.Errorf("sensor %q: missing property", s.Name)
	}
	if s.Collector == nil {
		return fmt.Errorf("sensor %q: missing collector", s.Name)
	}
	return nil
}

// managerMetrics are the telemetry handles a Manager records into once
// UseTelemetry is called.
type managerMetrics struct {
	collects      *telemetry.CounterVec
	collectErrors *telemetry.CounterVec
	publishErrors *telemetry.CounterVec
	alerts        *telemetry.CounterVec
	duration      *telemetry.HistogramVec
	lastValue     *telemetry.GaugeVec

	mu       sync.Mutex
	bySensor map[string]*sensorMetrics
}

// sensorMetrics are the label-bound handles for one sensor, resolved
// once so the per-collection hot path skips the vec lookups.
type sensorMetrics struct {
	collects      *telemetry.Counter
	collectErrors *telemetry.Counter
	publishErrors *telemetry.Counter
	alerts        *telemetry.Counter
	duration      *telemetry.Histogram
	lastValue     *telemetry.Gauge
}

// forSensor binds (once) the metric handles for the named sensor. The
// "sensor" label space is bounded by configuration: Register rejects
// duplicates and registration closes at Start.
func (t *managerMetrics) forSensor(name string) *sensorMetrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	if sm, ok := t.bySensor[name]; ok {
		return sm
	}
	sm := &sensorMetrics{
		collects:      t.collects.With(name),      //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
		collectErrors: t.collectErrors.With(name), //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
		publishErrors: t.publishErrors.With(name), //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
		alerts:        t.alerts.With(name),        //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
		duration:      t.duration.With(name),      //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
		lastValue:     t.lastValue.With(name),     //lint:ignore telemetry-cardinality sensor names are a fixed registration-time set
	}
	t.bySensor[name] = sm
	return sm
}

// Manager owns a set of sensors and their sampling goroutines.
type Manager struct {
	sink  Sink
	clock clock.Clock

	mu      sync.Mutex
	sensors map[string]*Sensor
	last    map[string]Reading
	errs    map[string]int
	tel     *managerMetrics

	running bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewManager builds a manager publishing to sink (which may be nil when
// callers only need Last/CollectOnce).
func NewManager(sink Sink) *Manager {
	return &Manager{
		sink:    sink,
		clock:   clock.Real(),
		sensors: make(map[string]*Sensor),
		last:    make(map[string]Reading),
		errs:    make(map[string]int),
	}
}

// UseClock overrides the manager's time source (sampling tickers, reading
// timestamps, and collection durations). Call before Start; tests inject
// clock.Fake so detection-delay assertions run on a virtual timeline
// instead of racing the scheduler.
func (m *Manager) UseClock(c clock.Clock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c != nil && !m.running {
		m.clock = c
	}
}

// UseTelemetry makes the manager record per-sensor collection metrics
// (attempts, failures, durations, alerts, publish failures, and the last
// measured value) into the registry. Call before Start.
func (m *Manager) UseTelemetry(reg *telemetry.Registry) {
	tel := &managerMetrics{
		collects: reg.Counter("spatial_sensor_collects_total",
			"Sensor collection attempts.", "sensor"),
		collectErrors: reg.Counter("spatial_sensor_collect_errors_total",
			"Sensor collections that failed.", "sensor"),
		publishErrors: reg.Counter("spatial_sensor_publish_errors_total",
			"Readings that could not be published to the sink.", "sensor"),
		alerts: reg.Counter("spatial_sensor_alerts_total",
			"Readings that crossed an alert threshold.", "sensor"),
		duration: reg.Histogram("spatial_sensor_collect_duration_seconds",
			"Wall-clock duration of one sensor collection.", nil, "sensor"),
		lastValue: reg.Gauge("spatial_sensor_last_value",
			"Most recent measured value, per sensor.", "sensor"),
		bySensor: make(map[string]*sensorMetrics),
	}
	m.mu.Lock()
	m.tel = tel
	m.mu.Unlock()
}

// telemetry returns the metric handles, or nil when UseTelemetry was
// never called.
func (m *Manager) telemetry() *managerMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tel
}

// clk returns the manager's time source under the lock; UseClock may run
// concurrently with public entry points like CollectOnce.
func (m *Manager) clk() clock.Clock {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

// Register adds a sensor. It fails if the manager is running or the name
// is taken.
func (m *Manager) Register(s *Sensor) error {
	if err := s.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return fmt.Errorf("sensor: cannot register %q while running", s.Name)
	}
	if _, dup := m.sensors[s.Name]; dup {
		return fmt.Errorf("sensor: duplicate name %q", s.Name)
	}
	if s.Interval <= 0 {
		s.Interval = time.Second
	}
	m.sensors[s.Name] = s
	return nil
}

// Names lists registered sensors.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sensors))
	for n := range m.sensors {
		out = append(out, n)
	}
	return out
}

// Start launches one sampling goroutine per sensor. Each sensor collects
// immediately and then on its interval until Stop.
func (m *Manager) Start(ctx context.Context) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return fmt.Errorf("sensor: manager already running")
	}
	if len(m.sensors) == 0 {
		return fmt.Errorf("sensor: no sensors registered")
	}
	ctx, m.cancel = context.WithCancel(ctx)
	m.running = true
	for _, s := range m.sensors {
		m.wg.Add(1)
		// Interval is read here, under m.mu, and passed by value so the
		// sampling goroutine never touches sensor fields unguarded.
		go m.run(ctx, s, s.Interval)
	}
	return nil
}

// Stop cancels sampling and waits for all goroutines to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	cancel := m.cancel
	m.mu.Unlock()
	cancel()
	m.wg.Wait()
	m.mu.Lock()
	m.running = false
	m.mu.Unlock()
}

func (m *Manager) run(ctx context.Context, s *Sensor, interval time.Duration) {
	defer m.wg.Done()
	ticker := m.clk().NewTicker(interval)
	defer ticker.Stop()
	m.collect(ctx, s)
	for {
		select {
		case <-ticker.C():
			m.collect(ctx, s)
		case <-ctx.Done():
			return
		}
	}
}

func (m *Manager) collect(ctx context.Context, s *Sensor) {
	r, err := m.CollectOnce(ctx, s.Name)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		m.mu.Lock()
		m.errs[s.Name]++
		m.mu.Unlock()
		log.Printf("sensor %q: collect: %v", s.Name, err)
		return
	}
	if m.sink != nil {
		if err := m.sink.Publish(ctx, r); err != nil && ctx.Err() == nil {
			// Publishing failures must not kill monitoring; the
			// reading stays available via Last.
			if tel := m.telemetry(); tel != nil {
				tel.forSensor(s.Name).publishErrors.Inc()
			}
			log.Printf("sensor %q: publish: %v", s.Name, err)
		}
	}
}

// CollectOnce runs one measurement of the named sensor synchronously and
// records it as the latest reading.
func (m *Manager) CollectOnce(ctx context.Context, name string) (Reading, error) {
	m.mu.Lock()
	s, ok := m.sensors[name]
	m.mu.Unlock()
	if !ok {
		return Reading{}, fmt.Errorf("sensor: unknown sensor %q", name)
	}
	var sm *sensorMetrics
	if tel := m.telemetry(); tel != nil {
		sm = tel.forSensor(s.Name)
	}
	clk := m.clk()
	start := clk.Now()
	value, detail, err := s.Collector.Collect(ctx)
	if sm != nil {
		sm.collects.Inc()
		sm.duration.Observe(clk.Since(start).Seconds())
	}
	if err != nil {
		if sm != nil {
			sm.collectErrors.Inc()
		}
		return Reading{}, fmt.Errorf("collect %q: %w", name, err)
	}
	if sm != nil {
		sm.lastValue.Set(value)
	}
	r := Reading{
		Sensor:   s.Name,
		Property: s.Property,
		Value:    value,
		Detail:   detail,
		Time:     clk.Now(),
	}
	if msg := s.Threshold.check(value); msg != "" {
		r.Alert = true
		r.AlertMsg = msg
		if sm != nil {
			sm.alerts.Inc()
		}
	}
	m.mu.Lock()
	m.last[name] = r
	m.mu.Unlock()
	return r, nil
}

// Last returns the most recent reading of the named sensor.
func (m *Manager) Last(name string) (Reading, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.last[name]
	return r, ok
}

// ErrorCount reports how many collections of the named sensor failed.
func (m *Manager) ErrorCount(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.errs[name]
}

// Float64Ptr is a convenience for building thresholds.
func Float64Ptr(v float64) *float64 { return &v }
