package sensor

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type memSink struct {
	mu       sync.Mutex
	readings []Reading
}

func (m *memSink) Publish(_ context.Context, r Reading) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.readings = append(m.readings, r)
	return nil
}

func (m *memSink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.readings)
}

func constCollector(v float64) Collector {
	return CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
		return v, map[string]float64{"detail": v * 2}, nil
	})
}

func TestRegisterValidation(t *testing.T) {
	m := NewManager(nil)
	if err := m.Register(&Sensor{Property: PropPerformance, Collector: constCollector(1)}); err == nil {
		t.Fatal("expected missing-name error")
	}
	if err := m.Register(&Sensor{Name: "a", Collector: constCollector(1)}); err == nil {
		t.Fatal("expected missing-property error")
	}
	if err := m.Register(&Sensor{Name: "a", Property: PropPerformance}); err == nil {
		t.Fatal("expected missing-collector error")
	}
	ok := &Sensor{Name: "a", Property: PropPerformance, Collector: constCollector(1)}
	if err := m.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(&Sensor{Name: "a", Property: PropPerformance, Collector: constCollector(1)}); err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestCollectOnceRecordsReading(t *testing.T) {
	m := NewManager(nil)
	if err := m.Register(&Sensor{Name: "acc", Property: PropPerformance, Collector: constCollector(0.97)}); err != nil {
		t.Fatal(err)
	}
	r, err := m.CollectOnce(context.Background(), "acc")
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0.97 || r.Property != PropPerformance || r.Alert {
		t.Fatalf("reading %+v", r)
	}
	if r.Detail["detail"] != 1.94 {
		t.Fatalf("detail %v", r.Detail)
	}
	last, ok := m.Last("acc")
	if !ok || last.Value != 0.97 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	if _, err := m.CollectOnce(context.Background(), "ghost"); err == nil {
		t.Fatal("expected unknown-sensor error")
	}
}

func TestThresholdAlerts(t *testing.T) {
	m := NewManager(nil)
	if err := m.Register(&Sensor{
		Name:      "acc",
		Property:  PropPerformance,
		Collector: constCollector(0.42),
		Threshold: Threshold{Min: Float64Ptr(0.9)},
	}); err != nil {
		t.Fatal(err)
	}
	r, err := m.CollectOnce(context.Background(), "acc")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Alert || r.AlertMsg == "" {
		t.Fatalf("expected alert, got %+v", r)
	}

	if err := m.Register(&Sensor{
		Name:      "imp",
		Property:  PropResilience,
		Collector: constCollector(0.8),
		Threshold: Threshold{Max: Float64Ptr(0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	r, err = m.CollectOnce(context.Background(), "imp")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Alert {
		t.Fatal("expected max-threshold alert")
	}
}

func TestManagerPeriodicCollection(t *testing.T) {
	sink := &memSink{}
	m := NewManager(sink)
	if err := m.Register(&Sensor{
		Name:      "fast",
		Property:  PropPerformance,
		Interval:  20 * time.Millisecond,
		Collector: constCollector(1),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sink.count() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d readings published", sink.count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	n := sink.count()
	time.Sleep(50 * time.Millisecond)
	if sink.count() != n {
		t.Fatal("readings published after Stop")
	}
	// Restartable after Stop.
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Stop()
}

func TestManagerStartErrors(t *testing.T) {
	m := NewManager(nil)
	if err := m.Start(context.Background()); err == nil {
		t.Fatal("expected no-sensors error")
	}
	if err := m.Register(&Sensor{Name: "a", Property: PropPerformance, Collector: constCollector(1), Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	if err := m.Start(context.Background()); err == nil {
		t.Fatal("expected already-running error")
	}
	if err := m.Register(&Sensor{Name: "b", Property: PropPerformance, Collector: constCollector(1)}); err == nil {
		t.Fatal("expected cannot-register-while-running error")
	}
}

func TestCollectorErrorsAreCounted(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(nil)
	if err := m.Register(&Sensor{
		Name:     "flaky",
		Property: PropResilience,
		Interval: 10 * time.Millisecond,
		Collector: CollectorFunc(func(context.Context) (float64, map[string]float64, error) {
			calls.Add(1)
			return 0, nil, errors.New("boom")
		}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.ErrorCount("flaky") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("errors not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	if _, ok := m.Last("flaky"); ok {
		t.Fatal("failed collection should not record a reading")
	}
}

func TestThresholdCheck(t *testing.T) {
	none := Threshold{}
	if msg := none.check(123); msg != "" {
		t.Fatalf("unbounded threshold alerted: %s", msg)
	}
	both := Threshold{Min: Float64Ptr(0), Max: Float64Ptr(1)}
	if msg := both.check(0.5); msg != "" {
		t.Fatalf("in-range value alerted: %s", msg)
	}
	if msg := both.check(-1); msg == "" {
		t.Fatal("below-min not alerted")
	}
	if msg := both.check(2); msg == "" {
		t.Fatal("above-max not alerted")
	}
}
