package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/ml"
	"repro/internal/resilience"
	"repro/internal/serving"
)

// Client is the typed HTTP client the AI sensors and examples use to call
// the micro-services, usually through the API gateway. BaseURL addresses
// one service (direct) or the gateway route prefix.
type Client struct {
	// BaseURL is the service root, e.g. "http://gw:8000/shap".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
	// APIKey, when set, is sent as the X-API-Key header (the gateway's
	// auth middleware).
	APIKey string
	// Retry, when set, transparently retries idempotent GETs (on network
	// errors and 5xx) and shed requests (429 from serving admission
	// control, any method — the request was rejected before execution)
	// with exponentially growing, fully jittered back-off. A 429's
	// Retry-After hint, when present, overrides the computed back-off.
	Retry *RetryPolicy
}

// RetryPolicy configures the client's back-off schedule. Delays follow
// "full jitter": attempt i sleeps uniform(0, min(MaxDelay, BaseDelay·2^i)).
type RetryPolicy struct {
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// BaseDelay is the back-off scale of the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Seed makes the jitter sequence deterministic (tests); 0 keeps it
	// deterministic too (a fixed default stream) — vary Seed per client
	// to decorrelate fleets.
	Seed int64
	// Clock drives the back-off sleeps; clock.Real() when nil. Tests
	// inject clock.Fake and assert the exact schedule.
	Clock clock.Clock

	mu  sync.Mutex
	rng *rand.Rand
}

func (p *RetryPolicy) attempts() int {
	if p == nil {
		return 1
	}
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) clk() clock.Clock {
	if p == nil || p.Clock == nil {
		return clock.Real()
	}
	return p.Clock
}

// backoff computes the fully jittered delay of retry i (0-based).
func (p *RetryPolicy) backoff(i int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	limit := p.MaxDelay
	if limit <= 0 {
		limit = 2 * time.Second
	}
	ceil := base << uint(i)
	if ceil > limit || ceil <= 0 {
		ceil = limit
	}
	p.mu.Lock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	d := time.Duration(p.rng.Int63n(int64(ceil) + 1))
	p.mu.Unlock()
	return d
}

// sleep blocks for the attempt's delay (hint, when positive, wins over
// the computed back-off) or until ctx is done.
func (p *RetryPolicy) sleep(ctx context.Context, i int, hint time.Duration) error {
	d := hint
	if d <= 0 {
		d = p.backoff(i)
	}
	select {
	case <-p.clk().After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterHint parses a 429's integer-seconds Retry-After header.
func retryAfterHint(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// assess decides whether an attempt's outcome is retryable and with what
// back-off hint.
func (p *RetryPolicy) assess(method string, resp *http.Response, err error) (bool, time.Duration) {
	if p == nil {
		return false, 0
	}
	if err != nil {
		// Network failure: the request may have executed, so only
		// idempotent GETs retry.
		return method == http.MethodGet, 0
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Shed before execution — safe to retry any method, honoring
		// the server's back-off hint.
		return true, retryAfterHint(resp)
	}
	return method == http.MethodGet && resp.StatusCode >= 500, 0
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// roundTrip sends one logical request, replaying it per the retry policy,
// and returns the final response (caller closes the body).
func (c *Client) roundTrip(ctx context.Context, method, path string, raw []byte) (*http.Response, error) {
	attempts := c.Retry.attempts()
	for i := 0; ; i++ {
		var body io.Reader
		if raw != nil {
			body = bytes.NewReader(raw)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
		if err != nil {
			return nil, fmt.Errorf("build request: %w", err)
		}
		if raw != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.APIKey != "" {
			req.Header.Set("X-API-Key", c.APIKey)
		}
		resp, err := c.httpClient().Do(req)
		retryable, hint := c.Retry.assess(method, resp, err)
		if !retryable || i+1 >= attempts {
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", method, path, err)
			}
			return resp, nil
		}
		if resp != nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		if err := c.Retry.sleep(ctx, i, hint); err != nil {
			return nil, fmt.Errorf("%s %s: %w", method, path, err)
		}
	}
}

// do posts in as JSON to path and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var raw []byte
	if in != nil {
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
	}
	resp, err := c.roundTrip(ctx, method, path, raw)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 400 {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (status %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// Train submits a training job to the ML-pipeline service.
func (c *Client) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	var resp TrainResponse
	err := c.do(ctx, http.MethodPost, "/train", req, &resp)
	return resp, err
}

// Predict requests predictions from the ML-pipeline service.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	var resp PredictResponse
	err := c.do(ctx, http.MethodPost, "/predict", req, &resp)
	return resp, err
}

// FetchModel downloads a stored model envelope and reconstructs it. The
// id accepts every serving-registry reference form ("m0001", "lgbm@2",
// "sha256:...").
func (c *Client) FetchModel(ctx context.Context, id string) (ml.Classifier, error) {
	resp, err := c.roundTrip(ctx, http.MethodGet, "/models/"+id, nil)
	if err != nil {
		return nil, fmt.Errorf("fetch model: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch model %q: status %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read model body: %w", err)
	}
	return ml.UnmarshalModel(raw)
}

// Promote atomically points a model alias at one of its versions.
func (c *Client) Promote(ctx context.Context, req PromoteRequest) (AliasResponse, error) {
	var resp AliasResponse
	err := c.do(ctx, http.MethodPost, "/models/promote", req, &resp)
	return resp, err
}

// Rollback restores a model alias's previously promoted version.
func (c *Client) Rollback(ctx context.Context, name string) (AliasResponse, error) {
	var resp AliasResponse
	err := c.do(ctx, http.MethodPost, "/models/rollback", RollbackRequest{Name: name}, &resp)
	return resp, err
}

// Aliases lists the ML service's model aliases and version histories.
func (c *Client) Aliases(ctx context.Context) ([]serving.AliasInfo, error) {
	var resp []serving.AliasInfo
	err := c.do(ctx, http.MethodGet, "/aliases", nil, &resp)
	return resp, err
}

// SHAP requests a SHAP explanation.
func (c *Client) SHAP(ctx context.Context, req SHAPRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// LIMETabular requests a tabular LIME explanation.
func (c *Client) LIMETabular(ctx context.Context, req LIMETabularRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain/tabular", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// LIMEImage requests an image LIME explanation.
func (c *Client) LIMEImage(ctx context.Context, req LIMEImageRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain/image", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// Occlusion requests an occlusion-sensitivity heatmap.
func (c *Client) Occlusion(ctx context.Context, req OcclusionRequest) (OcclusionResponse, error) {
	var resp OcclusionResponse
	err := c.do(ctx, http.MethodPost, "/explain", req, &resp)
	return resp, err
}

// PoisonImpact requests a poisoning resilience report.
func (c *Client) PoisonImpact(ctx context.Context, req PoisonImpactRequest) (resilience.Report, error) {
	var resp resilience.Report
	err := c.do(ctx, http.MethodPost, "/impact/poisoning", req, &resp)
	return resp, err
}

// EvasionImpact requests an FGSM evasion resilience report.
func (c *Client) EvasionImpact(ctx context.Context, req EvasionImpactRequest) (resilience.Report, error) {
	var resp resilience.Report
	err := c.do(ctx, http.MethodPost, "/impact/evasion", req, &resp)
	return resp, err
}

// Healthz checks the service health endpoint.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// WaitHealthy polls /healthz until it responds or the deadline passes.
// The poll schedule runs on the retry policy's clock, so tests with a
// fake clock can step through it without real sleeps.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	clk := c.Retry.clk()
	deadline := clk.Now().Add(timeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		_, err := c.Healthz(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if clk.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(50 * time.Millisecond):
		}
	}
}
