package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/ml"
	"repro/internal/resilience"
)

// Client is the typed HTTP client the AI sensors and examples use to call
// the micro-services, usually through the API gateway. BaseURL addresses
// one service (direct) or the gateway route prefix.
type Client struct {
	// BaseURL is the service root, e.g. "http://gw:8000/shap".
	BaseURL string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
	// APIKey, when set, is sent as the X-API-Key header (the gateway's
	// auth middleware).
	APIKey string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do posts in as JSON to path and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("%s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 400 {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (status %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	return nil
}

// Train submits a training job to the ML-pipeline service.
func (c *Client) Train(ctx context.Context, req TrainRequest) (TrainResponse, error) {
	var resp TrainResponse
	err := c.do(ctx, http.MethodPost, "/train", req, &resp)
	return resp, err
}

// Predict requests predictions from the ML-pipeline service.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (PredictResponse, error) {
	var resp PredictResponse
	err := c.do(ctx, http.MethodPost, "/predict", req, &resp)
	return resp, err
}

// FetchModel downloads a stored model envelope and reconstructs it.
func (c *Client) FetchModel(ctx context.Context, id string) (ml.Classifier, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/models/"+id, nil)
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("fetch model: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetch model %q: status %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read model body: %w", err)
	}
	return ml.UnmarshalModel(raw)
}

// SHAP requests a SHAP explanation.
func (c *Client) SHAP(ctx context.Context, req SHAPRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// LIMETabular requests a tabular LIME explanation.
func (c *Client) LIMETabular(ctx context.Context, req LIMETabularRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain/tabular", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// LIMEImage requests an image LIME explanation.
func (c *Client) LIMEImage(ctx context.Context, req LIMEImageRequest) ([]float64, error) {
	var resp ExplainResponse
	if err := c.do(ctx, http.MethodPost, "/explain/image", req, &resp); err != nil {
		return nil, err
	}
	return resp.Attribution, nil
}

// Occlusion requests an occlusion-sensitivity heatmap.
func (c *Client) Occlusion(ctx context.Context, req OcclusionRequest) (OcclusionResponse, error) {
	var resp OcclusionResponse
	err := c.do(ctx, http.MethodPost, "/explain", req, &resp)
	return resp, err
}

// PoisonImpact requests a poisoning resilience report.
func (c *Client) PoisonImpact(ctx context.Context, req PoisonImpactRequest) (resilience.Report, error) {
	var resp resilience.Report
	err := c.do(ctx, http.MethodPost, "/impact/poisoning", req, &resp)
	return resp, err
}

// EvasionImpact requests an FGSM evasion resilience report.
func (c *Client) EvasionImpact(ctx context.Context, req EvasionImpactRequest) (resilience.Report, error) {
	var resp resilience.Report
	err := c.do(ctx, http.MethodPost, "/impact/evasion", req, &resp)
	return resp, err
}

// Healthz checks the service health endpoint.
func (c *Client) Healthz(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// WaitHealthy polls /healthz until it responds or the deadline passes.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
		_, err := c.Healthz(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %v: %w", c.BaseURL, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
