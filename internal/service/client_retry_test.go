package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// TestClientRetriesShedRequests drives the client against a server that
// sheds twice (429 + Retry-After: 1) before serving, and asserts the
// retry loop sleeps exactly the server's hint on a virtual timeline.
func TestClientRetriesShedRequests(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"classes":[1],"probs":[[0,1]]}`))
	}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(1700000000, 0))
	c := &Client{BaseURL: srv.URL, Retry: &RetryPolicy{MaxAttempts: 4, Clock: fake, Seed: 1}}

	type result struct {
		resp PredictResponse
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := c.Predict(context.Background(), PredictRequest{ModelID: "m0001", Instances: [][]float64{{2, 0}}})
		done <- result{resp, err}
	}()

	// Two shed attempts — release each exactly at the 1s Retry-After hint.
	for i := 0; i < 2; i++ {
		fake.BlockUntil(1)
		fake.Advance(time.Second)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("predict after retries: %v", res.err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts %d, want 3", got)
	}
	if len(res.resp.Classes) != 1 || res.resp.Classes[0] != 1 {
		t.Fatalf("classes %v", res.resp.Classes)
	}
}

// TestClientRetriesIdempotentGET covers the 5xx retry path for GETs: the
// back-off is jittered but always within the BaseDelay ceiling, so one
// BaseDelay advance releases it.
func TestClientRetriesIdempotentGET(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(1700000000, 0))
	c := &Client{BaseURL: srv.URL, Retry: &RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, Clock: fake, Seed: 7}}

	done := make(chan error, 1)
	go func() {
		_, err := c.Aliases(context.Background())
		done <- err
	}()
	fake.BlockUntil(1)
	fake.Advance(50 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("aliases after retry: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts %d, want 2", got)
	}
}

// TestClientDoesNotRetryFailedPOST pins the safety rule: a non-429 error
// on a non-idempotent method must surface immediately.
func TestClientDoesNotRetryFailedPOST(t *testing.T) {
	var attempts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	fake := clock.NewFake(time.Unix(1700000000, 0))
	c := &Client{BaseURL: srv.URL, Retry: &RetryPolicy{MaxAttempts: 4, Clock: fake}}
	if _, err := c.Predict(context.Background(), PredictRequest{ModelID: "x"}); err == nil {
		t.Fatal("expected error")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts %d, want 1 (POST 500 must not retry)", got)
	}
}
