package service

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/drift"
)

// DriftRequest asks the drift micro-service to compare a live batch
// against a reference (training-time) sample.
type DriftRequest struct {
	Reference TableJSON `json:"reference"`
	Batch     TableJSON `json:"batch"`
	// Alpha, PSIThreshold and Bins tune the detector; zero values select
	// the defaults (0.01 / 0.2 / 10).
	Alpha        float64 `json:"alpha,omitempty"`
	PSIThreshold float64 `json:"psiThreshold,omitempty"`
	Bins         int     `json:"bins,omitempty"`
}

// DriftService wraps the drift detector. It is stateless: the reference
// travels with each request, keeping the service replaceable like every
// other metric (a deployment seeking lower payloads can front it with a
// caching proxy keyed on the reference hash).
type DriftService struct{ *base }

// NewDriftService constructs the service.
func NewDriftService() *DriftService {
	s := &DriftService{base: newBase("drift")}
	s.handle("POST /drift", s.handleDrift)
	return s
}

func (s *DriftService) handleDrift(w http.ResponseWriter, r *http.Request) {
	var req DriftRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ref, err := req.Reference.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reference table: %w", err))
		return
	}
	batch, err := req.Batch.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch table: %w", err))
		return
	}
	det, err := drift.Fit(ref, req.Alpha, req.PSIThreshold, req.Bins)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rep, err := det.Detect(batch)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// Drift requests a drift report from the drift service.
func (c *Client) Drift(ctx context.Context, req DriftRequest) (drift.Report, error) {
	var rep drift.Report
	err := c.do(ctx, http.MethodPost, "/drift", req, &rep)
	return rep, err
}

var _ http.Handler = (*DriftService)(nil)
