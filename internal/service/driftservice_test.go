package service

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
)

func driftTable(seed int64, n int, shift float64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("d", []string{"f0", "f1"}, []string{"x"})
	for i := 0; i < n; i++ {
		_ = tb.Append([]float64{shift + rng.NormFloat64(), rng.NormFloat64()}, 0)
	}
	return tb
}

func TestDriftService(t *testing.T) {
	srv := httptest.NewServer(NewDriftService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	// Same distribution: no drift.
	rep, err := c.Drift(ctx, DriftRequest{
		Reference: FromTable(driftTable(1, 400, 0)),
		Batch:     FromTable(driftTable(2, 200, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted {
		t.Fatalf("false drift alarm: %+v", rep)
	}

	// Shifted batch: drift flagged on the first feature.
	rep, err = c.Drift(ctx, DriftRequest{
		Reference: FromTable(driftTable(3, 400, 0)),
		Batch:     FromTable(driftTable(4, 200, 3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted || !rep.Features[0].Drifted {
		t.Fatalf("shift undetected: %+v", rep)
	}

	// Tiny reference rejected.
	if _, err := c.Drift(ctx, DriftRequest{
		Reference: FromTable(driftTable(5, 4, 0)),
		Batch:     FromTable(driftTable(6, 100, 0)),
	}); err == nil {
		t.Fatal("expected too-few-reference error")
	}
}
