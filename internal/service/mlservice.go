package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/ml"
)

// MLService is the AI-pipeline micro-service: it trains models on uploaded
// datasets, reports performance indicators, serves predictions, and hands
// out serialized models for the explainer services.
type MLService struct {
	*base

	mu     sync.RWMutex
	nextID int
	models map[string]*storedModel
}

type storedModel struct {
	id      string
	algo    string
	model   ml.Classifier
	metrics ml.Metrics
}

// TrainRequest asks the service to train one model.
type TrainRequest struct {
	// Algorithm is an ml.NewByName identifier (lr, dt, rf, mlp, dnn,
	// lgbm, xgb, nn).
	Algorithm string `json:"algorithm"`
	// Train is the training split. Eval, if present, is a held-out
	// split used for the reported metrics; otherwise metrics are
	// computed on the training data.
	Train TableJSON  `json:"train"`
	Eval  *TableJSON `json:"eval,omitempty"`
	// Seed makes training deterministic.
	Seed int64 `json:"seed"`
}

// TrainResponse reports the stored model and its performance indicators.
type TrainResponse struct {
	ModelID string     `json:"modelId"`
	Metrics ml.Metrics `json:"metrics"`
}

// PredictRequest asks for predictions on raw instances.
type PredictRequest struct {
	ModelID   string      `json:"modelId"`
	Instances [][]float64 `json:"instances"`
}

// PredictResponse carries argmax classes and full probability rows.
type PredictResponse struct {
	Classes []int       `json:"classes"`
	Probs   [][]float64 `json:"probs"`
}

// NewMLService constructs the service.
func NewMLService() *MLService {
	s := &MLService{base: newBase("ml-pipeline"), models: make(map[string]*storedModel)}
	s.handle("POST /train", s.handleTrain)
	s.handle("POST /predict", s.handlePredict)
	s.handle("GET /models", s.handleList)
	s.handle("GET /models/{id}", s.handleGet)
	return s
}

func (s *MLService) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	train, err := req.Train.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("train table: %w", err))
		return
	}
	model, err := ml.NewByName(req.Algorithm, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := model.Fit(train); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("fit: %w", err))
		return
	}
	evalTable := train
	if req.Eval != nil {
		evalTable, err = req.Eval.ToTable()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("eval table: %w", err))
			return
		}
	}
	metrics, err := ml.Evaluate(model, evalTable)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("evaluate: %w", err))
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("m%04d", s.nextID)
	s.models[id] = &storedModel{id: id, algo: req.Algorithm, model: model, metrics: metrics}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, TrainResponse{ModelID: id, Metrics: metrics})
}

func (s *MLService) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	stored, ok := s.models[req.ModelID]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", req.ModelID))
		return
	}
	resp := PredictResponse{
		Classes: make([]int, len(req.Instances)),
		Probs:   make([][]float64, len(req.Instances)),
	}
	for i, x := range req.Instances {
		p := stored.model.PredictProba(x)
		resp.Probs[i] = p
		best := 0
		for c, v := range p {
			if v > p[best] {
				best = c
			}
		}
		resp.Classes[i] = best
	}
	writeJSON(w, http.StatusOK, resp)
}

// modelInfo is the listing entry for one stored model.
type modelInfo struct {
	ModelID   string     `json:"modelId"`
	Algorithm string     `json:"algorithm"`
	Metrics   ml.Metrics `json:"metrics"`
}

func (s *MLService) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]modelInfo, 0, len(s.models))
	for _, m := range s.models {
		infos = append(infos, modelInfo{ModelID: m.id, Algorithm: m.algo, Metrics: m.metrics})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ModelID < infos[j].ModelID })
	writeJSON(w, http.StatusOK, infos)
}

// handleGet returns the serialized model envelope so explainer services
// can reconstruct it.
func (s *MLService) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	stored, ok := s.models[id]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", id))
		return
	}
	blob, err := ml.MarshalModel(stored.model)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(blob); err != nil {
		return
	}
}

// StoreModel registers an externally trained model (e.g. the output of a
// pipeline run) and returns its id — the "deploy" step of the paper's
// pipeline.
func (s *MLService) StoreModel(algorithm string, model ml.Classifier, metrics ml.Metrics) (string, error) {
	if model == nil {
		return "", fmt.Errorf("service: nil model")
	}
	if model.NumClasses() == 0 {
		return "", fmt.Errorf("service: model %q is not trained", algorithm)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := fmt.Sprintf("m%04d", s.nextID)
	s.models[id] = &storedModel{id: id, algo: algorithm, model: model, metrics: metrics}
	return id, nil
}

// Model returns a stored model by id (for in-process composition).
func (s *MLService) Model(id string) (ml.Classifier, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	stored, ok := s.models[id]
	if !ok {
		return nil, false
	}
	return stored.model, true
}

// decodeModel reconstructs a classifier from an inline envelope.
func decodeModel(raw json.RawMessage) (ml.Classifier, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing model envelope")
	}
	return ml.UnmarshalModel(raw)
}
