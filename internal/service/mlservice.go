package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/ml"
	"repro/internal/serving"
)

// MLService is the AI-pipeline micro-service: it trains models on uploaded
// datasets, reports performance indicators, serves predictions through the
// model-serving runtime (versioned registry, micro-batching, admission
// control), and hands out serialized models for the explainer services.
type MLService struct {
	*base
	runtime *serving.Runtime

	mu     sync.RWMutex
	nextID int
	models map[string]*storedModel
}

// storedModel is the catalog metadata of one trained model; the model
// itself lives in the serving registry under the storedModel id.
type storedModel struct {
	id      string
	algo    string
	ref     serving.Ref
	metrics ml.Metrics
}

// TrainRequest asks the service to train one model.
type TrainRequest struct {
	// Algorithm is an ml.NewByName identifier (lr, dt, rf, mlp, dnn,
	// lgbm, xgb, nn).
	Algorithm string `json:"algorithm"`
	// Train is the training split. Eval, if present, is a held-out
	// split used for the reported metrics; otherwise metrics are
	// computed on the training data.
	Train TableJSON  `json:"train"`
	Eval  *TableJSON `json:"eval,omitempty"`
	// Seed makes training deterministic.
	Seed int64 `json:"seed"`
}

// TrainResponse reports the stored model and its performance indicators.
type TrainResponse struct {
	ModelID string     `json:"modelId"`
	Metrics ml.Metrics `json:"metrics"`
	// Ref is the serving-registry reference: the content-addressed id
	// plus the algorithm-alias version this training run appended.
	Ref serving.Ref `json:"ref"`
}

// PredictRequest asks for predictions on raw instances. ModelID accepts
// every serving-registry reference form: a stored model id ("m0001"), an
// algorithm alias ("lgbm", "lgbm@2", "lgbm@latest"), or a raw content id
// ("sha256:...").
type PredictRequest struct {
	ModelID   string      `json:"modelId"`
	Instances [][]float64 `json:"instances"`
}

// PredictResponse carries argmax classes and full probability rows.
type PredictResponse struct {
	Classes []int       `json:"classes"`
	Probs   [][]float64 `json:"probs"`
}

// PromoteRequest atomically points an alias at one of its versions.
type PromoteRequest struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// RollbackRequest restores an alias's previously promoted version.
type RollbackRequest struct {
	Name string `json:"name"`
}

// AliasResponse reports an alias's state after a promote or rollback.
type AliasResponse struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	ID      string `json:"id"`
}

// NewMLService constructs the service. The embedded serving runtime
// records its telemetry (batch sizes, shed counts, cache churn) into the
// service registry exposed at /metrics.
func NewMLService() *MLService {
	b := newBase("ml-pipeline")
	s := &MLService{
		base:    b,
		runtime: serving.New(serving.Config{Telemetry: b.tel}),
		models:  make(map[string]*storedModel),
	}
	s.handle("POST /train", s.handleTrain)
	s.handle("POST /predict", s.handlePredict)
	s.handle("GET /models", s.handleList)
	s.handle("GET /models/{id}", s.handleGet)
	s.handle("GET /aliases", s.handleAliases)
	s.handle("POST /models/promote", s.handlePromote)
	s.handle("POST /models/rollback", s.handleRollback)
	return s
}

// Runtime exposes the serving runtime for in-process composition (core
// pipeline, examples).
func (s *MLService) Runtime() *serving.Runtime { return s.runtime }

// Close stops the serving runtime's batchers and workers.
func (s *MLService) Close() { s.runtime.Close() }

func (s *MLService) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	train, err := req.Train.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("train table: %w", err))
		return
	}
	model, err := ml.NewByName(req.Algorithm, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := model.Fit(train); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("fit: %w", err))
		return
	}
	evalTable := train
	if req.Eval != nil {
		evalTable, err = req.Eval.ToTable()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("eval table: %w", err))
			return
		}
	}
	metrics, err := ml.Evaluate(model, evalTable)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("evaluate: %w", err))
		return
	}

	id, ref, err := s.register(req.Algorithm, model, metrics)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{ModelID: id, Metrics: metrics, Ref: ref})
}

// register stores a trained model in the serving registry under two
// aliases: the stable catalog id ("m0001", promoted immediately so the
// id always serves) and the algorithm name ("lgbm"), which versions
// across retrainings so operators can promote or roll back "lgbm@N".
// Content addressing deduplicates the underlying bytes.
func (s *MLService) register(algorithm string, model ml.Classifier, metrics ml.Metrics) (string, serving.Ref, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg := s.runtime.Registry()
	id := fmt.Sprintf("m%04d", s.nextID+1)
	idRef, err := reg.Register(id, model)
	if err != nil {
		return "", serving.Ref{}, err
	}
	blob, algoTag, err := reg.Blob(idRef.ID)
	if err != nil {
		return "", serving.Ref{}, err
	}
	algoRef, err := reg.RegisterBytes(algorithm, algoTag, blob)
	if err != nil {
		return "", serving.Ref{}, err
	}
	s.nextID++
	s.models[id] = &storedModel{id: id, algo: algorithm, ref: algoRef, metrics: metrics}
	return id, algoRef, nil
}

func (s *MLService) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	probs, classes, err := s.runtime.Predict(r.Context(), req.ModelID, req.Instances)
	if err != nil {
		writePredictError(w, req.ModelID, err)
		return
	}
	if probs == nil {
		probs, classes = [][]float64{}, []int{}
	}
	writeJSON(w, http.StatusOK, PredictResponse{Classes: classes, Probs: probs})
}

// writePredictError maps serving-runtime errors onto HTTP: shed requests
// become 429 with a Retry-After back-off hint, unknown references 404,
// and scoring failures (e.g. a feature-dimension mismatch) 422.
func writePredictError(w http.ResponseWriter, ref string, err error) {
	var over *serving.OverloadedError
	switch {
	case errors.As(err, &over):
		w.Header().Set("Retry-After", retryAfterSeconds(over.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, serving.ErrNotFound):
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", ref))
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// retryAfterSeconds renders a back-off hint as the integer-seconds form
// of the Retry-After header, rounding sub-second hints up to 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs < 1 {
		secs++
	}
	return fmt.Sprintf("%d", secs)
}

// modelInfo is the listing entry for one stored model.
type modelInfo struct {
	ModelID   string      `json:"modelId"`
	Algorithm string      `json:"algorithm"`
	Metrics   ml.Metrics  `json:"metrics"`
	Ref       serving.Ref `json:"ref"`
}

func (s *MLService) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]modelInfo, 0, len(s.models))
	for _, m := range s.models {
		infos = append(infos, modelInfo{ModelID: m.id, Algorithm: m.algo, Metrics: m.metrics, Ref: m.ref})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ModelID < infos[j].ModelID })
	writeJSON(w, http.StatusOK, infos)
}

// handleGet returns the serialized model envelope so explainer services
// can reconstruct it. The path id accepts every registry reference form.
func (s *MLService) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	blob, _, err := s.runtime.Registry().Blob(id)
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("model %q not found", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(blob); err != nil {
		return
	}
}

func (s *MLService) handleAliases(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.runtime.Registry().Aliases())
}

func (s *MLService) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req PromoteRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reg := s.runtime.Registry()
	if err := reg.Promote(req.Name, req.Version); err != nil {
		status := http.StatusConflict
		if errors.Is(err, serving.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	id, err := reg.Resolve(req.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, AliasResponse{Name: req.Name, Version: req.Version, ID: id})
}

func (s *MLService) handleRollback(w http.ResponseWriter, r *http.Request) {
	var req RollbackRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ref, err := s.runtime.Registry().Rollback(req.Name)
	if err != nil {
		status := http.StatusConflict
		if errors.Is(err, serving.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, AliasResponse{Name: ref.Name, Version: ref.Version, ID: ref.ID})
}

// StoreModel registers an externally trained model (e.g. the output of a
// pipeline run) and returns its id — the "deploy" step of the paper's
// pipeline.
func (s *MLService) StoreModel(algorithm string, model ml.Classifier, metrics ml.Metrics) (string, error) {
	if model == nil {
		return "", fmt.Errorf("service: nil model")
	}
	if model.NumClasses() == 0 {
		return "", fmt.Errorf("service: model %q is not trained", algorithm)
	}
	id, _, err := s.register(algorithm, model, metrics)
	return id, err
}

// Model returns a stored model by registry reference (for in-process
// composition), deserializing from the registry if it has gone cold.
func (s *MLService) Model(ref string) (ml.Classifier, bool) {
	m, err := s.runtime.Registry().Model(ref)
	if err != nil {
		return nil, false
	}
	return m, true
}

// decodeModel reconstructs a classifier from an inline envelope.
func decodeModel(raw json.RawMessage) (ml.Classifier, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("missing model envelope")
	}
	return ml.UnmarshalModel(raw)
}
