package service

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestMLServicePromoteRollback exercises the registry's versioning
// workflow over HTTP: retraining appends algorithm-alias versions,
// promote moves the alias, rollback restores the previous promotion, and
// every reference form predicts and fetches.
func TestMLServicePromoteRollback(t *testing.T) {
	mls := NewMLService()
	defer mls.Close()
	srv := httptest.NewServer(mls)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	tb := sepTable(150)
	v1, err := c.Train(ctx, TrainRequest{Algorithm: "lr", Train: FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Train(ctx, TrainRequest{Algorithm: "lr", Train: FromTable(tb), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Ref.Name != "lr" || v1.Ref.Version != 1 || v2.Ref.Version != 2 {
		t.Fatalf("algorithm alias refs %+v %+v", v1.Ref, v2.Ref)
	}

	aliases, err := c.Aliases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var lrCurrent int
	for _, a := range aliases {
		if a.Name == "lr" {
			lrCurrent = a.Current
			if len(a.Versions) != 2 {
				t.Fatalf("lr versions %d, want 2", len(a.Versions))
			}
		}
	}
	if lrCurrent != 1 {
		t.Fatalf("lr current %d, want 1 (first version auto-promotes)", lrCurrent)
	}

	// Every reference form serves.
	for _, ref := range []string{v1.ModelID, "lr", "lr@2", "lr@latest", v2.Ref.ID} {
		if _, err := c.Predict(ctx, PredictRequest{ModelID: ref, Instances: [][]float64{{2, 0}}}); err != nil {
			t.Fatalf("predict via %q: %v", ref, err)
		}
		if _, err := c.FetchModel(ctx, ref); err != nil {
			t.Fatalf("fetch via %q: %v", ref, err)
		}
	}

	promoted, err := c.Promote(ctx, PromoteRequest{Name: "lr", Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	if promoted.Version != 2 || promoted.ID != v2.Ref.ID {
		t.Fatalf("promote response %+v", promoted)
	}
	rolled, err := c.Rollback(ctx, "lr")
	if err != nil {
		t.Fatal(err)
	}
	if rolled.Version != 1 || rolled.ID != v1.Ref.ID {
		t.Fatalf("rollback response %+v", rolled)
	}

	if _, err := c.Promote(ctx, PromoteRequest{Name: "ghost", Version: 1}); err == nil {
		t.Fatal("promoting an unknown alias should 404")
	}
	if _, err := c.Rollback(ctx, "ghost"); err == nil {
		t.Fatal("rolling back an unknown alias should 404")
	}
}
