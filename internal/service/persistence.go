package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ml"
	"repro/internal/serving"
)

// storeIndex is the on-disk catalog of a saved model store: the service
// metadata (ids, metrics, id counter) beside the serving registry's own
// content-addressed blobs and alias state (registry.json).
type storeIndex struct {
	NextID int               `json:"nextId"`
	Models []storeIndexEntry `json:"models"`
}

type storeIndexEntry struct {
	ModelID   string      `json:"modelId"`
	Algorithm string      `json:"algorithm"`
	Metrics   ml.Metrics  `json:"metrics"`
	Ref       serving.Ref `json:"ref"`
}

// SaveStore persists the model catalog to dir — the serving registry
// (one integrity-checkable JSON envelope per distinct model plus alias
// state) and the service index — supporting the re-deployment/versioning
// workflow: a service can be stopped, upgraded, and restarted with its
// model catalog, version history, and promotions intact.
func (s *MLService) SaveStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create store dir: %w", err)
	}
	s.mu.RLock()
	idx := storeIndex{NextID: s.nextID}
	for _, m := range s.models {
		idx.Models = append(idx.Models, storeIndexEntry{ModelID: m.id, Algorithm: m.algo, Metrics: m.metrics, Ref: m.ref})
	}
	s.mu.RUnlock()
	if err := s.runtime.Registry().Save(dir); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal index: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), raw, 0o644); err != nil {
		return fmt.Errorf("write index: %w", err)
	}
	return nil
}

// LoadStore restores a catalog previously written by SaveStore, replacing
// the in-memory store and the serving registry's contents.
func (s *MLService) LoadStore(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return fmt.Errorf("read index: %w", err)
	}
	var idx storeIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		return fmt.Errorf("parse index: %w", err)
	}
	for _, e := range idx.Models {
		if strings.ContainsAny(e.ModelID, "/\\") {
			return fmt.Errorf("invalid model id %q in index", e.ModelID)
		}
	}
	reg := s.runtime.Registry()
	if err := reg.Load(dir); err != nil {
		return err
	}
	loaded := make(map[string]*storedModel, len(idx.Models))
	for _, e := range idx.Models {
		if _, err := reg.Resolve(e.ModelID); err != nil {
			return fmt.Errorf("index model %s missing from registry: %w", e.ModelID, err)
		}
		loaded[e.ModelID] = &storedModel{id: e.ModelID, algo: e.Algorithm, ref: e.Ref, metrics: e.Metrics}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = loaded
	s.nextID = idx.NextID
	return nil
}
