package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ml"
)

// storeIndex is the on-disk catalog of a saved model store.
type storeIndex struct {
	NextID int               `json:"nextId"`
	Models []storeIndexEntry `json:"models"`
}

type storeIndexEntry struct {
	ModelID   string     `json:"modelId"`
	Algorithm string     `json:"algorithm"`
	Metrics   ml.Metrics `json:"metrics"`
}

// SaveStore persists every stored model to dir (one JSON envelope per
// model plus an index), supporting the re-deployment/versioning workflow:
// a service can be stopped, upgraded, and restarted with its model
// catalog intact.
func (s *MLService) SaveStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create store dir: %w", err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx := storeIndex{NextID: s.nextID}
	for _, m := range s.models {
		blob, err := ml.MarshalModel(m.model)
		if err != nil {
			return fmt.Errorf("marshal %s: %w", m.id, err)
		}
		if err := os.WriteFile(filepath.Join(dir, m.id+".model.json"), blob, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", m.id, err)
		}
		idx.Models = append(idx.Models, storeIndexEntry{ModelID: m.id, Algorithm: m.algo, Metrics: m.metrics})
	}
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal index: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"), raw, 0o644); err != nil {
		return fmt.Errorf("write index: %w", err)
	}
	return nil
}

// LoadStore restores a catalog previously written by SaveStore, replacing
// the in-memory store.
func (s *MLService) LoadStore(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return fmt.Errorf("read index: %w", err)
	}
	var idx storeIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		return fmt.Errorf("parse index: %w", err)
	}
	loaded := make(map[string]*storedModel, len(idx.Models))
	for _, e := range idx.Models {
		if strings.ContainsAny(e.ModelID, "/\\") {
			return fmt.Errorf("invalid model id %q in index", e.ModelID)
		}
		blob, err := os.ReadFile(filepath.Join(dir, e.ModelID+".model.json"))
		if err != nil {
			return fmt.Errorf("read model %s: %w", e.ModelID, err)
		}
		model, err := ml.UnmarshalModel(blob)
		if err != nil {
			return fmt.Errorf("decode model %s: %w", e.ModelID, err)
		}
		loaded[e.ModelID] = &storedModel{id: e.ModelID, algo: e.Algorithm, model: model, metrics: e.Metrics}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = loaded
	s.nextID = idx.NextID
	return nil
}
