package service

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

func TestModelStoreSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mls := NewMLService()
	srv := httptest.NewServer(mls)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	tb := sepTable(150)
	first, err := c.Train(ctx, TrainRequest{Algorithm: "lr", Train: FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Train(ctx, TrainRequest{Algorithm: "dt", Train: FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := c.Predict(ctx, PredictRequest{ModelID: first.ModelID, Instances: tb.X[:5]})
	if err != nil {
		t.Fatal(err)
	}

	if err := mls.SaveStore(dir); err != nil {
		t.Fatal(err)
	}

	// A fresh service instance (simulated redeploy) restores the store.
	mls2 := NewMLService()
	if err := mls2.LoadStore(dir); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(mls2)
	defer srv2.Close()
	c2 := &Client{BaseURL: srv2.URL}

	gotPred, err := c2.Predict(ctx, PredictRequest{ModelID: first.ModelID, Instances: tb.X[:5]})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred.Classes {
		if gotPred.Classes[i] != wantPred.Classes[i] {
			t.Fatal("restored model predicts differently")
		}
	}
	if _, err := c2.FetchModel(ctx, second.ModelID); err != nil {
		t.Fatal(err)
	}

	// The id counter resumes: a new model must not collide.
	third, err := c2.Train(ctx, TrainRequest{Algorithm: "lr", Train: FromTable(tb), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if third.ModelID == first.ModelID || third.ModelID == second.ModelID {
		t.Fatalf("model id collision: %s", third.ModelID)
	}
}

func TestLoadStoreErrors(t *testing.T) {
	mls := NewMLService()
	if err := mls.LoadStore(t.TempDir()); err == nil {
		t.Fatal("expected missing-index error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mls.LoadStore(dir); err == nil {
		t.Fatal("expected parse error")
	}
	if err := os.WriteFile(filepath.Join(dir, "index.json"),
		[]byte(`{"nextId":1,"models":[{"modelId":"../evil","algorithm":"lr"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mls.LoadStore(dir); err == nil {
		t.Fatal("expected invalid-id error")
	}
}
