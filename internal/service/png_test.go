package service

import (
	"bytes"
	"encoding/json"
	"image/png"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

func TestOcclusionServicePNG(t *testing.T) {
	size := 8
	imgTable := dataset.New("img", make([]string, size*size), []string{"dark", "bright"})
	for j := range imgTable.FeatureNames {
		imgTable.FeatureNames[j] = "px"
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 80; i++ {
		y := i % 2
		img := make([]float64, size*size)
		for p := range img {
			img[p] = float64(y) + rng.NormFloat64()*0.2
		}
		_ = imgTable.Append(img, y)
	}
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 8, BatchSize: 16, Seed: 1})
	if err := m.Fit(imgTable); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewOcclusionService())
	defer srv.Close()
	body, err := json.Marshal(OcclusionRequest{
		Model:  blob,
		Image:  imgTable.X[0],
		Class:  imgTable.Y[0],
		W:      size,
		H:      size,
		Window: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/explain/png", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// 2x2 heatmap rendered at scale 8.
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 16 {
		t.Fatalf("png bounds %v", img.Bounds())
	}
}
