package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/attack"
	"repro/internal/ml"
	"repro/internal/resilience"
)

// PoisonImpactRequest asks for a poisoning resilience report from already-
// measured baseline and poisoned metrics.
type PoisonImpactRequest struct {
	Baseline ml.Metrics `json:"baseline"`
	Poisoned ml.Metrics `json:"poisoned"`
	Rate     float64    `json:"rate"`
}

// EvasionImpactRequest asks the service to run FGSM against an inline
// model (the victim doubles as the surrogate when it is differentiable) on
// the provided clean samples, and report impact/complexity. When Surrogate
// is present it is used to craft the perturbations instead (transfer
// attack).
type EvasionImpactRequest struct {
	Model     json.RawMessage `json:"model"`
	Surrogate json.RawMessage `json:"surrogate,omitempty"`
	Clean     TableJSON       `json:"clean"`
	Eps       float64         `json:"eps"`
}

// ResilienceService exposes the impact/complexity metrics.
type ResilienceService struct{ *base }

// NewResilienceService constructs the service.
func NewResilienceService() *ResilienceService {
	s := &ResilienceService{base: newBase("resilience")}
	s.handle("POST /impact/poisoning", s.handlePoisoning)
	s.handle("POST /impact/evasion", s.handleEvasion)
	return s
}

func (s *ResilienceService) handlePoisoning(w http.ResponseWriter, r *http.Request) {
	var req PoisonImpactRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := resilience.Poisoning(req.Baseline, req.Poisoned, req.Rate)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *ResilienceService) handleEvasion(w http.ResponseWriter, r *http.Request) {
	var req EvasionImpactRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	victim, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	surrogateModel := victim
	if len(req.Surrogate) > 0 {
		surrogateModel, err = decodeModel(req.Surrogate)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("surrogate: %w", err))
			return
		}
	}
	grad, ok := surrogateModel.(ml.GradientClassifier)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Errorf("model kind %q is not differentiable; provide a differentiable surrogate", surrogateModel.Name()))
		return
	}
	clean, err := req.Clean.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("clean table: %w", err))
		return
	}
	res, err := attack.FGSM(grad, clean, req.Eps)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	rep, err := resilience.Evasion(victim, clean, res.Adversarial, res.CraftCost)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

var _ http.Handler = (*ResilienceService)(nil)
