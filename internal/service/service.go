// Package service implements SPATIAL's metric micro-services: the
// ML-pipeline service that trains and serves models, and one service per
// trustworthy-property metric (SHAP, LIME, occlusion sensitivity,
// resilience). Each service is an http.Handler with a JSON contract, so it
// can run in its own process behind the API gateway or be mounted in a
// single process for tests and examples.
package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/telemetry"
)

// TableJSON is the wire form of a labelled dataset.
type TableJSON struct {
	Name         string      `json:"name,omitempty"`
	FeatureNames []string    `json:"featureNames"`
	ClassNames   []string    `json:"classNames"`
	X            [][]float64 `json:"x"`
	Y            []int       `json:"y"`
}

// ToTable validates and converts the wire form into a dataset.Table.
func (tj *TableJSON) ToTable() (*dataset.Table, error) {
	t := dataset.New(tj.Name, tj.FeatureNames, tj.ClassNames)
	t.X = tj.X
	t.Y = tj.Y
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FromTable converts a dataset.Table into its wire form.
func FromTable(t *dataset.Table) TableJSON {
	return TableJSON{
		Name:         t.Name,
		FeatureNames: t.FeatureNames,
		ClassNames:   t.ClassNames,
		X:            t.X,
		Y:            t.Y,
	}
}

// errorBody is the uniform error envelope of every service.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status, logging encode failures.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode response: %v", err)
	}
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// readJSON decodes the request body into v, rejecting unknown fields so
// client/server contract drift fails loudly.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// Health is the payload served on every service's /healthz.
type Health struct {
	Service string `json:"service"`
	Status  string `json:"status"`
	UptimeS int64  `json:"uptimeS"`
}

// Stats is a read-only view over a service's telemetry registry,
// aggregating the per-route middleware metrics into the totals the
// paper's capacity experiments read off the deployment.
type Stats struct {
	reg *telemetry.Registry
}

// statsSkipRoutes are infrastructure routes excluded from the Stats
// aggregate — liveness polls and stats scrapes are not service load.
var statsSkipRoutes = map[string]bool{"/healthz": true, "/stats": true}

func statsSkip(labels []telemetry.Label) bool {
	for _, l := range labels {
		if l.Name == "route" && statsSkipRoutes[l.Value] {
			return true
		}
	}
	return false
}

// Snapshot returns (requests, errors, mean latency) summed across every
// instrumented application route (infrastructure routes like /healthz are
// excluded). Errors count 4xx and 5xx responses.
func (s *Stats) Snapshot() (requests, errors int64, meanLatency time.Duration) {
	if s.reg == nil {
		return 0, 0, 0
	}
	var sum float64
	var count uint64
	for _, fam := range s.reg.Gather() {
		switch fam.Name {
		case telemetry.FamRequests:
			for _, se := range fam.Series {
				if statsSkip(se.Labels) {
					continue
				}
				requests += int64(se.Value)
				for _, l := range se.Labels {
					if l.Name == "code" && (l.Value == "4xx" || l.Value == "5xx") {
						errors += int64(se.Value)
					}
				}
			}
		case telemetry.FamLatency:
			for _, se := range fam.Series {
				if statsSkip(se.Labels) {
					continue
				}
				sum += se.Sum
				count += se.Count
			}
		}
	}
	if count > 0 {
		meanLatency = time.Duration(sum / float64(count) * float64(time.Second))
	}
	return requests, errors, meanLatency
}

// base builds the shared surface of a service: /healthz, /stats, the
// Prometheus exposition at /metrics, span JSON at /traces, and telemetry
// middleware (metrics + trace propagation) around every handler
// registered via handle.
type base struct {
	name    string
	mux     *http.ServeMux
	stats   Stats
	clk     clock.Clock
	started time.Time
	tel     *telemetry.Registry
	tracer  *telemetry.Tracer
}

func newBase(name string) *base {
	tel := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(tel)
	tracer := telemetry.NewTracer(512)
	clk := clock.Real()
	b := &base{
		name:    name,
		mux:     http.NewServeMux(),
		stats:   Stats{reg: tel},
		clk:     clk,
		started: clk.Now(),
		tel:     tel,
		tracer:  tracer,
	}
	b.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Health{
			Service: b.name,
			Status:  "ok",
			UptimeS: int64(b.clk.Since(b.started).Seconds()),
		})
	})
	b.handle("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		req, errs, mean := b.stats.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"service":       b.name,
			"requests":      req,
			"errors":        errs,
			"meanLatencyMs": float64(mean.Microseconds()) / 1e3,
		})
	})
	b.mux.Handle("GET /metrics", tel.Handler())
	b.mux.Handle("GET /traces", tracer.Handler())
	return b
}

// handle registers a handler wrapped in the telemetry middleware. The
// route label is the pattern's path (method stripped) so label
// cardinality stays bounded by the registered routes.
func (b *base) handle(pattern string, h http.HandlerFunc) {
	routeLabel := pattern
	if _, path, ok := strings.Cut(pattern, " "); ok {
		routeLabel = path
	}
	mw := telemetry.NewMiddleware(telemetry.MiddlewareConfig{
		Registry: b.tel,
		Tracer:   b.tracer,
		Service:  b.name,
		Route:    func(*http.Request) string { return routeLabel },
	})
	b.mux.Handle(pattern, mw(h))
}

// Telemetry exposes the service's metric registry.
func (b *base) Telemetry() *telemetry.Registry { return b.tel }

// Tracer exposes the service's span ring buffer.
func (b *base) Tracer() *telemetry.Tracer { return b.tracer }

// ServeHTTP implements http.Handler.
func (b *base) ServeHTTP(w http.ResponseWriter, r *http.Request) { b.mux.ServeHTTP(w, r) }
