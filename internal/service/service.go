// Package service implements SPATIAL's metric micro-services: the
// ML-pipeline service that trains and serves models, and one service per
// trustworthy-property metric (SHAP, LIME, occlusion sensitivity,
// resilience). Each service is an http.Handler with a JSON contract, so it
// can run in its own process behind the API gateway or be mounted in a
// single process for tests and examples.
package service

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/dataset"
)

// TableJSON is the wire form of a labelled dataset.
type TableJSON struct {
	Name         string      `json:"name,omitempty"`
	FeatureNames []string    `json:"featureNames"`
	ClassNames   []string    `json:"classNames"`
	X            [][]float64 `json:"x"`
	Y            []int       `json:"y"`
}

// ToTable validates and converts the wire form into a dataset.Table.
func (tj *TableJSON) ToTable() (*dataset.Table, error) {
	t := dataset.New(tj.Name, tj.FeatureNames, tj.ClassNames)
	t.X = tj.X
	t.Y = tj.Y
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FromTable converts a dataset.Table into its wire form.
func FromTable(t *dataset.Table) TableJSON {
	return TableJSON{
		Name:         t.Name,
		FeatureNames: t.FeatureNames,
		ClassNames:   t.ClassNames,
		X:            t.X,
		Y:            t.Y,
	}
}

// errorBody is the uniform error envelope of every service.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status, logging encode failures.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("service: encode response: %v", err)
	}
}

// writeError writes the error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// readJSON decodes the request body into v, rejecting unknown fields so
// client/server contract drift fails loudly.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

// Health is the payload served on every service's /healthz.
type Health struct {
	Service string `json:"service"`
	Status  string `json:"status"`
	UptimeS int64  `json:"uptimeS"`
}

// Stats tracks simple request statistics for a service, mirroring what the
// paper's capacity experiments read off the deployment.
type Stats struct {
	mu        sync.Mutex
	requests  int64
	errors    int64
	totalTime time.Duration
}

func (s *Stats) record(d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.totalTime += d
	if failed {
		s.errors++
	}
}

// Snapshot returns (requests, errors, mean latency).
func (s *Stats) Snapshot() (requests, errors int64, meanLatency time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.requests > 0 {
		meanLatency = s.totalTime / time.Duration(s.requests)
	}
	return s.requests, s.errors, meanLatency
}

// statusRecorder captures the response status for stats middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// newBase builds the shared mux for a service: /healthz, /stats, and stats
// middleware around every registered handler.
type base struct {
	name    string
	mux     *http.ServeMux
	stats   Stats
	started time.Time
}

func newBase(name string) *base {
	b := &base{name: name, mux: http.NewServeMux(), started: time.Now()}
	b.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Health{
			Service: b.name,
			Status:  "ok",
			UptimeS: int64(time.Since(b.started).Seconds()),
		})
	})
	b.mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		req, errs, mean := b.stats.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"service":       b.name,
			"requests":      req,
			"errors":        errs,
			"meanLatencyMs": float64(mean.Microseconds()) / 1e3,
		})
	})
	return b
}

// handle registers a handler with stats tracking.
func (b *base) handle(pattern string, h http.HandlerFunc) {
	b.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		b.stats.record(time.Since(start), rec.status >= 400)
	})
}

// ServeHTTP implements http.Handler.
func (b *base) ServeHTTP(w http.ResponseWriter, r *http.Request) { b.mux.ServeHTTP(w, r) }
