package service

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/ml"
)

func sepTable(n int) *dataset.Table {
	rng := rand.New(rand.NewSource(1))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y)
	}
	return tb
}

func TestMLServiceTrainPredictFetch(t *testing.T) {
	srv := httptest.NewServer(NewMLService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	tb := sepTable(200)
	resp, err := c.Train(ctx, TrainRequest{Algorithm: "lr", Train: FromTable(tb), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ModelID == "" {
		t.Fatal("empty model id")
	}
	if resp.Metrics.Accuracy < 0.95 {
		t.Fatalf("train accuracy %.3f", resp.Metrics.Accuracy)
	}

	pred, err := c.Predict(ctx, PredictRequest{ModelID: resp.ModelID, Instances: [][]float64{{-2, 0}, {2, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Classes[0] != 0 || pred.Classes[1] != 1 {
		t.Fatalf("predictions %v", pred.Classes)
	}

	model, err := c.FetchModel(ctx, resp.ModelID)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Predict(model, []float64{2, 0}) != 1 {
		t.Fatal("fetched model predicts differently")
	}

	h, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Service != "ml-pipeline" || h.Status != "ok" {
		t.Fatalf("health %+v", h)
	}
}

func TestMLServiceErrors(t *testing.T) {
	srv := httptest.NewServer(NewMLService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	if _, err := c.Train(ctx, TrainRequest{Algorithm: "nope", Train: FromTable(sepTable(10))}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
	bad := TrainRequest{Algorithm: "lr", Train: TableJSON{FeatureNames: []string{"f"}, ClassNames: []string{"a"}, X: [][]float64{{1, 2}}, Y: []int{0}}}
	if _, err := c.Train(ctx, bad); err == nil {
		t.Fatal("expected invalid-table error")
	}
	if _, err := c.Predict(ctx, PredictRequest{ModelID: "missing"}); err == nil {
		t.Fatal("expected model-not-found error")
	}
	if _, err := c.FetchModel(ctx, "missing"); err == nil {
		t.Fatal("expected fetch error")
	}
}

func TestSHAPServiceRoundTrip(t *testing.T) {
	tb := sepTable(200)
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewSHAPService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	attr, err := c.SHAP(context.Background(), SHAPRequest{
		Model:      blob,
		Instance:   []float64{2, 0},
		Class:      1,
		Background: [][]float64{{-2, 0}, {0, 0}},
		Samples:    200,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 {
		t.Fatalf("attribution len %d", len(attr))
	}
	if attr[0] <= math.Abs(attr[1]) {
		t.Fatalf("informative feature should dominate: %v", attr)
	}
}

func TestSHAPServiceRejectsGarbageModel(t *testing.T) {
	srv := httptest.NewServer(NewSHAPService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	_, err := c.SHAP(context.Background(), SHAPRequest{
		Model:      []byte(`{"kind":"alien","spec":{}}`),
		Instance:   []float64{1},
		Background: [][]float64{{0}},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Fatalf("expected unknown-kind error, got %v", err)
	}
}

func TestLIMEServiceTabularAndImage(t *testing.T) {
	tb := sepTable(200)
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewLIMEService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	attr, err := c.LIMETabular(ctx, LIMETabularRequest{
		Model:    blob,
		Instance: []float64{2, 0},
		Class:    1,
		Scale:    []float64{1, 1},
		Samples:  400,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(attr) != 2 || attr[0] <= 0 {
		t.Fatalf("tabular lime attribution %v", attr)
	}

	// Train a tiny image model for the image endpoint.
	size := 8
	imgTable := dataset.New("img", make([]string, size*size), []string{"dark", "bright"})
	for j := range imgTable.FeatureNames {
		imgTable.FeatureNames[j] = "px"
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		y := i % 2
		img := make([]float64, size*size)
		for p := range img {
			img[p] = float64(y) + rng.NormFloat64()*0.2
		}
		_ = imgTable.Append(img, y)
	}
	im := ml.NewMLP(ml.MLPConfig{Hidden: []int{8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 10, BatchSize: 16, Seed: 1})
	if err := im.Fit(imgTable); err != nil {
		t.Fatal(err)
	}
	iblob, err := ml.MarshalModel(im)
	if err != nil {
		t.Fatal(err)
	}
	weights, err := c.LIMEImage(ctx, LIMEImageRequest{
		Model:   iblob,
		Image:   imgTable.X[0],
		Class:   imgTable.Y[0],
		W:       size,
		H:       size,
		Patch:   4,
		Samples: 100,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 4 {
		t.Fatalf("image lime weights %d, want 4 segments", len(weights))
	}
}

func TestOcclusionService(t *testing.T) {
	size := 8
	imgTable := dataset.New("img", make([]string, size*size), []string{"dark", "bright"})
	for j := range imgTable.FeatureNames {
		imgTable.FeatureNames[j] = "px"
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		y := i % 2
		img := make([]float64, size*size)
		for p := range img {
			img[p] = float64(y) + rng.NormFloat64()*0.2
		}
		_ = imgTable.Append(img, y)
	}
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{8}, LearningRate: 0.05, Momentum: 0.9, Epochs: 10, BatchSize: 16, Seed: 1})
	if err := m.Fit(imgTable); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewOcclusionService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	resp, err := c.Occlusion(context.Background(), OcclusionRequest{
		Model:  blob,
		Image:  imgTable.X[0],
		Class:  imgTable.Y[0],
		W:      size,
		H:      size,
		Window: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cols != 2 || resp.Rows != 2 || len(resp.Heatmap) != 4 {
		t.Fatalf("occlusion geometry %+v", resp)
	}
}

func TestResilienceServicePoisoning(t *testing.T) {
	srv := httptest.NewServer(NewResilienceService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	rep, err := c.PoisonImpact(context.Background(), PoisonImpactRequest{
		Baseline: ml.Metrics{Accuracy: 0.9},
		Poisoned: ml.Metrics{Accuracy: 0.45},
		Rate:     0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Impact-0.5) > 1e-12 {
		t.Fatalf("impact %v", rep.Impact)
	}
	if _, err := c.PoisonImpact(context.Background(), PoisonImpactRequest{Rate: 7}); err == nil {
		t.Fatal("expected rate error")
	}
}

func TestResilienceServiceEvasion(t *testing.T) {
	tb := sepTable(300)
	m := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewResilienceService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	rep, err := c.EvasionImpact(context.Background(), EvasionImpactRequest{
		Model: blob,
		Clean: FromTable(tb),
		Eps:   2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Impact <= 0 {
		t.Fatalf("evasion impact %v should be positive", rep.Impact)
	}
	if rep.ComplexityUnit != "us/sample" {
		t.Fatalf("complexity unit %q", rep.ComplexityUnit)
	}
}

func TestResilienceServiceEvasionNeedsGradientModel(t *testing.T) {
	tb := sepTable(100)
	m := ml.NewTree(ml.DefaultTreeConfig())
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewResilienceService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	_, err = c.EvasionImpact(context.Background(), EvasionImpactRequest{Model: blob, Clean: FromTable(tb), Eps: 0.5})
	if err == nil || !strings.Contains(err.Error(), "not differentiable") {
		t.Fatalf("expected differentiability error, got %v", err)
	}
}

func TestResilienceServiceEvasionWithSurrogate(t *testing.T) {
	tb := sepTable(200)
	victim := ml.NewTree(ml.DefaultTreeConfig())
	if err := victim.Fit(tb); err != nil {
		t.Fatal(err)
	}
	surrogate := ml.NewLogReg(ml.DefaultLogRegConfig())
	if err := surrogate.Fit(tb); err != nil {
		t.Fatal(err)
	}
	vblob, err := ml.MarshalModel(victim)
	if err != nil {
		t.Fatal(err)
	}
	sblob, err := ml.MarshalModel(surrogate)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewResilienceService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	rep, err := c.EvasionImpact(context.Background(), EvasionImpactRequest{
		Model:     vblob,
		Surrogate: sblob,
		Clean:     FromTable(tb),
		Eps:       2.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineAccuracy <= 0 {
		t.Fatalf("baseline accuracy %v", rep.BaselineAccuracy)
	}
}

func TestWaitHealthy(t *testing.T) {
	srv := httptest.NewServer(NewSHAPService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	if err := c.WaitHealthy(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	dead := &Client{BaseURL: "http://127.0.0.1:1"}
	if err := dead.WaitHealthy(context.Background(), 200*time.Millisecond); err == nil {
		t.Fatal("expected timeout against dead endpoint")
	}
}

func TestStatsEndpointCountsRequests(t *testing.T) {
	mls := NewMLService()
	srv := httptest.NewServer(mls)
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	ctx := context.Background()
	_, _ = c.Predict(ctx, PredictRequest{ModelID: "nope"}) // 404 -> error count
	req, errs, _ := mls.stats.Snapshot()
	if req != 1 || errs != 1 {
		t.Fatalf("stats %d/%d, want 1/1", req, errs)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := sepTable(10)
	wire := FromTable(tb)
	back, err := wire.ToTable()
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() || back.NumClasses() != tb.NumClasses() {
		t.Fatal("table round trip changed shape")
	}
}
