package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/fairness"
	"repro/internal/privacy"
)

// FairnessRequest asks the fairness micro-service for a group-fairness
// report over already-computed predictions.
type FairnessRequest struct {
	Pred       []int     `json:"pred"`
	Truth      []int     `json:"truth"`
	Group      []int     `json:"group"`
	Positive   int       `json:"positive"`
	GroupNames [2]string `json:"groupNames"`
}

// FairnessService wraps the fairness metrics.
type FairnessService struct{ *base }

// NewFairnessService constructs the service.
func NewFairnessService() *FairnessService {
	s := &FairnessService{base: newBase("fairness")}
	s.handle("POST /fairness", s.handleFairness)
	return s
}

func (s *FairnessService) handleFairness(w http.ResponseWriter, r *http.Request) {
	var req FairnessRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rep, err := fairness.Evaluate(req.Pred, req.Truth, req.Group, req.Positive, req.GroupNames)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// MembershipRequest asks the privacy micro-service to run the
// membership-inference attack against an inline model.
type MembershipRequest struct {
	Model      json.RawMessage `json:"model"`
	Members    TableJSON       `json:"members"`
	NonMembers TableJSON       `json:"nonMembers"`
}

// MembershipResponse extends the attack result with the normalized
// privacy score the sensor publishes.
type MembershipResponse struct {
	privacy.MembershipResult
	PrivacyScore float64 `json:"privacyScore"`
}

// PrivacyService wraps the privacy metrics.
type PrivacyService struct{ *base }

// NewPrivacyService constructs the service.
func NewPrivacyService() *PrivacyService {
	s := &PrivacyService{base: newBase("privacy")}
	s.handle("POST /membership", s.handleMembership)
	return s
}

func (s *PrivacyService) handleMembership(w http.ResponseWriter, r *http.Request) {
	var req MembershipRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	members, err := req.Members.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("members table: %w", err))
		return
	}
	nonMembers, err := req.NonMembers.ToTable()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("nonMembers table: %w", err))
		return
	}
	res, err := privacy.MembershipInference(model, members, nonMembers)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, MembershipResponse{
		MembershipResult: res,
		PrivacyScore:     privacy.PrivacyScore(res.Advantage),
	})
}

// Fairness requests a fairness report from the fairness service.
func (c *Client) Fairness(ctx context.Context, req FairnessRequest) (fairness.Report, error) {
	var rep fairness.Report
	err := c.do(ctx, http.MethodPost, "/fairness", req, &rep)
	return rep, err
}

// Membership requests a membership-inference report from the privacy
// service.
func (c *Client) Membership(ctx context.Context, req MembershipRequest) (MembershipResponse, error) {
	var resp MembershipResponse
	err := c.do(ctx, http.MethodPost, "/membership", req, &resp)
	return resp, err
}

var (
	_ http.Handler = (*FairnessService)(nil)
	_ http.Handler = (*PrivacyService)(nil)
)
