package service

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/ml"
)

func TestFairnessService(t *testing.T) {
	srv := httptest.NewServer(NewFairnessService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	rep, err := c.Fairness(context.Background(), FairnessRequest{
		Pred:       []int{1, 1, 0, 0, 1, 0, 0, 0},
		Truth:      []int{1, 1, 0, 0, 1, 1, 0, 0},
		Group:      []int{0, 0, 0, 0, 1, 1, 1, 1},
		Positive:   1,
		GroupNames: [2]string{"A", "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DemographicParityDiff-0.25) > 1e-12 {
		t.Fatalf("DP diff %v", rep.DemographicParityDiff)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups %d", len(rep.Groups))
	}

	// Misaligned inputs must be rejected.
	if _, err := c.Fairness(context.Background(), FairnessRequest{
		Pred: []int{1}, Truth: []int{1, 0}, Group: []int{0},
	}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPrivacyService(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	members := sepTable(120)
	nonMembers := sepTable(120)
	for _, row := range nonMembers.X {
		row[0] += rng.NormFloat64() * 0.5 // shift so the overfit tree is unsure
		row[1] += rng.NormFloat64() * 0.5
	}
	overfit := ml.NewTree(ml.TreeConfig{MaxDepth: 0, MinLeaf: 1, Seed: 1})
	if err := overfit.Fit(members); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.MarshalModel(overfit)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewPrivacyService())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	resp, err := c.Membership(context.Background(), MembershipRequest{
		Model:      blob,
		Members:    FromTable(members),
		NonMembers: FromTable(nonMembers),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Advantage < 0 || resp.Advantage > 1 {
		t.Fatalf("advantage %v", resp.Advantage)
	}
	if math.Abs(resp.PrivacyScore-(1-resp.Advantage)) > 1e-12 {
		t.Fatalf("privacy score %v inconsistent with advantage %v", resp.PrivacyScore, resp.Advantage)
	}

	if _, err := c.Membership(context.Background(), MembershipRequest{
		Model:   blob,
		Members: FromTable(members),
		// NonMembers empty -> invalid
		NonMembers: TableJSON{FeatureNames: members.FeatureNames, ClassNames: members.ClassNames},
	}); err == nil {
		t.Fatal("expected empty-nonmembers error")
	}
	if _, err := c.Membership(context.Background(), MembershipRequest{
		Model:      []byte(`{"kind":"bogus","spec":{}}`),
		Members:    FromTable(members),
		NonMembers: FromTable(nonMembers),
	}); err == nil {
		t.Fatal("expected bad-model error")
	}
}
