package service

import (
	"bytes"
	"encoding/json"
	"net/http"

	"repro/internal/xai"
)

// SHAPRequest asks the SHAP micro-service for one explanation. The model
// travels inline as an ml.MarshalModel envelope, so the service is
// stateless (the paper's "input/output manner").
type SHAPRequest struct {
	Model      json.RawMessage `json:"model"`
	Instance   []float64       `json:"instance"`
	Class      int             `json:"class"`
	Background [][]float64     `json:"background"`
	Samples    int             `json:"samples,omitempty"`
	Seed       int64           `json:"seed,omitempty"`
}

// ExplainResponse carries a per-feature (or per-segment) attribution.
type ExplainResponse struct {
	Attribution []float64 `json:"attribution"`
}

// SHAPService wraps xai.KernelSHAP as a micro-service.
type SHAPService struct{ *base }

// NewSHAPService constructs the service.
func NewSHAPService() *SHAPService {
	s := &SHAPService{base: newBase("shap")}
	s.handle("POST /explain", s.handleExplain)
	return s
}

func (s *SHAPService) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req SHAPRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	explainer := &xai.KernelSHAP{
		Model:      model,
		Background: req.Background,
		Samples:    req.Samples,
		Seed:       req.Seed,
	}
	attr, err := explainer.Explain(req.Instance, req.Class)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Attribution: attr})
}

// LIMETabularRequest asks for a tabular LIME explanation.
type LIMETabularRequest struct {
	Model    json.RawMessage `json:"model"`
	Instance []float64       `json:"instance"`
	Class    int             `json:"class"`
	Scale    []float64       `json:"scale"`
	Samples  int             `json:"samples,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
}

// LIMEImageRequest asks for a superpixel LIME explanation of a flattened
// image.
type LIMEImageRequest struct {
	Model   json.RawMessage `json:"model"`
	Image   []float64       `json:"image"`
	Class   int             `json:"class"`
	W       int             `json:"w"`
	H       int             `json:"h"`
	Patch   int             `json:"patch,omitempty"`
	Samples int             `json:"samples,omitempty"`
	Seed    int64           `json:"seed,omitempty"`
}

// LIMEService wraps xai.TabularLIME and xai.ImageLIME.
type LIMEService struct{ *base }

// NewLIMEService constructs the service.
func NewLIMEService() *LIMEService {
	s := &LIMEService{base: newBase("lime")}
	s.handle("POST /explain/tabular", s.handleTabular)
	s.handle("POST /explain/image", s.handleImage)
	return s
}

func (s *LIMEService) handleTabular(w http.ResponseWriter, r *http.Request) {
	var req LIMETabularRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	explainer := &xai.TabularLIME{
		Model:   model,
		Scale:   req.Scale,
		Samples: req.Samples,
		Seed:    req.Seed,
	}
	attr, err := explainer.Explain(req.Instance, req.Class)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Attribution: attr})
}

func (s *LIMEService) handleImage(w http.ResponseWriter, r *http.Request) {
	var req LIMEImageRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	explainer := &xai.ImageLIME{
		Model:   model,
		W:       req.W,
		H:       req.H,
		Patch:   req.Patch,
		Samples: req.Samples,
		Seed:    req.Seed,
	}
	attr, err := explainer.Explain(req.Image, req.Class)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Attribution: attr})
}

// OcclusionRequest asks for an occlusion-sensitivity heatmap.
type OcclusionRequest struct {
	Model    json.RawMessage `json:"model"`
	Image    []float64       `json:"image"`
	Class    int             `json:"class"`
	W        int             `json:"w"`
	H        int             `json:"h"`
	Window   int             `json:"window,omitempty"`
	Stride   int             `json:"stride,omitempty"`
	Baseline float64         `json:"baseline,omitempty"`
}

// OcclusionResponse carries the heatmap and its geometry.
type OcclusionResponse struct {
	Heatmap []float64 `json:"heatmap"`
	Cols    int       `json:"cols"`
	Rows    int       `json:"rows"`
}

// OcclusionService wraps xai.Occlusion.
type OcclusionService struct{ *base }

// NewOcclusionService constructs the service.
func NewOcclusionService() *OcclusionService {
	s := &OcclusionService{base: newBase("occlusion")}
	s.handle("POST /explain", s.handleExplain)
	s.handle("POST /explain/png", s.handleExplainPNG)
	return s
}

func (s *OcclusionService) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req OcclusionRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	occ := &xai.Occlusion{
		Model:    model,
		W:        req.W,
		H:        req.H,
		Window:   req.Window,
		Stride:   req.Stride,
		Baseline: req.Baseline,
	}
	heat, err := occ.Explain(req.Image, req.Class)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	cols, rows := occ.HeatmapSize()
	writeJSON(w, http.StatusOK, OcclusionResponse{Heatmap: heat, Cols: cols, Rows: rows})
}

// handleExplainPNG renders the occlusion-sensitivity map as a PNG heatmap
// — the artifact the AI dashboard embeds for operators.
func (s *OcclusionService) handleExplainPNG(w http.ResponseWriter, r *http.Request) {
	var req OcclusionRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := decodeModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	occ := &xai.Occlusion{
		Model:    model,
		W:        req.W,
		H:        req.H,
		Window:   req.Window,
		Stride:   req.Stride,
		Baseline: req.Baseline,
	}
	heat, err := occ.Explain(req.Image, req.Class)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	cols, rows := occ.HeatmapSize()
	var buf bytes.Buffer
	if err := xai.WriteHeatmapPNG(&buf, heat, cols, rows, 8); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	if _, err := w.Write(buf.Bytes()); err != nil {
		return
	}
}

var (
	_ http.Handler = (*SHAPService)(nil)
	_ http.Handler = (*LIMEService)(nil)
	_ http.Handler = (*OcclusionService)(nil)
	_ http.Handler = (*MLService)(nil)
)
