package serving

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

func newTestRuntime(t *testing.T, cfg Config) (*Runtime, *clock.Fake, *telemetry.Registry, Ref) {
	t.Helper()
	fake := clock.NewFake(time.Unix(1700000000, 0))
	tel := telemetry.NewRegistry()
	cfg.Clock = fake
	cfg.Telemetry = tel
	rt := New(cfg)
	t.Cleanup(rt.Close)
	ref, err := rt.Registry().Register("fall", trainedLogReg(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	return rt, fake, tel, ref
}

// histSeries fetches the single series of a histogram family.
func histSeries(t *testing.T, tel *telemetry.Registry, name string) telemetry.Series {
	t.Helper()
	for _, fam := range tel.Gather() {
		if fam.Name == name {
			if len(fam.Series) != 1 {
				t.Fatalf("metric %s has %d series", name, len(fam.Series))
			}
			return fam.Series[0]
		}
	}
	t.Fatalf("metric %s not found", name)
	return telemetry.Series{}
}

// TestBatcherLatencyBoundFlush pins the exact virtual timeline of a
// latency-bound flush: one queued instance sits until the fake clock
// advances by MaxWait, then flushes as a batch of one whose recorded
// batch latency is exactly MaxWait.
func TestBatcherLatencyBoundFlush(t *testing.T) {
	const maxWait = 2 * time.Millisecond
	rt, fake, tel, ref := newTestRuntime(t, Config{MaxBatch: 64, MaxWait: maxWait, Workers: 1})

	type result struct {
		classes []int
		err     error
	}
	done := make(chan result, 1)
	go func() {
		_, classes, err := rt.Predict(context.Background(), ref.Name, [][]float64{{2, 0}})
		done <- result{classes, err}
	}()

	// The batcher received the item and armed its MaxWait timer; nothing
	// flushes until virtual time reaches the deadline.
	fake.BlockUntil(1)
	select {
	case r := <-done:
		t.Fatalf("flushed before the latency bound: %+v", r)
	default:
	}

	fake.Advance(maxWait)
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.classes) != 1 || r.classes[0] != 1 {
		t.Fatalf("classes %v, want [1]", r.classes)
	}

	size := histSeries(t, tel, "spatial_serving_batch_size")
	if size.Count != 1 || size.Sum != 1 {
		t.Fatalf("batch size count=%d sum=%v, want one batch of one", size.Count, size.Sum)
	}
	lat := histSeries(t, tel, "spatial_serving_batch_latency_seconds")
	if lat.Count != 1 || lat.Sum != maxWait.Seconds() {
		t.Fatalf("batch latency count=%d sum=%v, want exactly %v", lat.Count, lat.Sum, maxWait.Seconds())
	}
	if metricValue(t, tel, "spatial_serving_predictions_total") != 1 {
		t.Fatal("predictions counter != 1")
	}
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight %d after completion", rt.InFlight())
	}
}

// TestBatcherSizeBoundFlush: a Predict carrying MaxBatch instances
// flushes immediately — zero virtual time passes, so the recorded batch
// latency is exactly 0 and the batch size exactly MaxBatch.
func TestBatcherSizeBoundFlush(t *testing.T) {
	rt, _, tel, ref := newTestRuntime(t, Config{MaxBatch: 3, MaxWait: time.Hour, Workers: 1})

	probs, classes, err := rt.Predict(context.Background(), ref.Name,
		[][]float64{{2, 0}, {-2, 0}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 || len(classes) != 3 {
		t.Fatalf("got %d probs / %d classes", len(probs), len(classes))
	}
	if classes[0] != 1 || classes[1] != 0 || classes[2] != 1 {
		t.Fatalf("classes %v, want [1 0 1]", classes)
	}

	size := histSeries(t, tel, "spatial_serving_batch_size")
	if size.Count != 1 || size.Sum != 3 {
		t.Fatalf("batch size count=%d sum=%v, want one batch of three", size.Count, size.Sum)
	}
	lat := histSeries(t, tel, "spatial_serving_batch_latency_seconds")
	if lat.Count != 1 || lat.Sum != 0 {
		t.Fatalf("batch latency count=%d sum=%v, want exactly 0 (no virtual time passed)", lat.Count, lat.Sum)
	}
}

// TestAdmissionControlSheds fills a line to its watermark and asserts the
// next request is shed with an *OverloadedError carrying the configured
// Retry-After, while the queued requests still complete.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := Config{MaxBatch: 64, MaxWait: 2 * time.Millisecond, Workers: 1, QueueDepth: 8, ShedWatermark: 4}
	rt, fake, tel, ref := newTestRuntime(t, cfg)

	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, _, err := rt.Predict(context.Background(), ref.Name, [][]float64{{2, 0}})
			results <- err
		}()
	}
	// Wait until all four reservations are visible; they sit in the
	// forming batch because the fake clock never reaches the deadline.
	for rt.InFlightFor(ref.Name) != 4 {
		time.Sleep(100 * time.Microsecond)
	}

	_, _, err := rt.Predict(context.Background(), ref.Name, [][]float64{{0, 0}})
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err %v, want *OverloadedError", err)
	}
	if oe.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter %v, want default 250ms", oe.RetryAfter)
	}
	if oe.Depth != 4 {
		t.Fatalf("Depth %d, want 4", oe.Depth)
	}
	if metricValue(t, tel, "spatial_serving_shed_total") != 1 {
		t.Fatal("shed counter != 1")
	}

	// Drain: release the forming batch and let the queued calls finish.
	for done := 0; done < 4; {
		select {
		case err := <-results:
			if err != nil {
				t.Fatal(err)
			}
			done++
		default:
			if fake.Pending() > 0 {
				fake.Advance(cfg.MaxWait)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	if rt.InFlight() != 0 {
		t.Fatalf("in-flight %d after drain", rt.InFlight())
	}
	// Queue-depth gauge is collector-driven: gathering now reports 0.
	if metricValue(t, tel, "spatial_serving_queue_depth") != 0 {
		t.Fatal("queue depth gauge != 0 after drain")
	}
}

// TestPredictErrors covers the non-batching failure modes.
func TestPredictErrors(t *testing.T) {
	rt, fake, _, ref := newTestRuntime(t, Config{Workers: 1})

	if _, _, err := rt.Predict(context.Background(), "ghost", [][]float64{{0, 0}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown ref: %v, want ErrNotFound", err)
	}
	if probs, classes, err := rt.Predict(context.Background(), ref.Name, nil); probs != nil || classes != nil || err != nil {
		t.Fatal("empty batch should be a no-op")
	}

	// predictAsync starts a Predict, waits for its batch timer to arm,
	// then releases it by advancing virtual time past the latency bound.
	type result struct {
		classes []int
		err     error
	}
	predictAsync := func(instances [][]float64, ctx context.Context) chan result {
		out := make(chan result, 1)
		go func() {
			_, classes, err := rt.Predict(ctx, ref.Name, instances)
			out <- result{classes, err}
		}()
		fake.BlockUntil(1)
		return out
	}
	// await advances virtual time whenever a batch timer is pending until
	// the call completes (a batch may split if the deadline fires while
	// instances are still queued).
	await := func(out chan result) result {
		for {
			select {
			case r := <-out:
				return r
			default:
				if fake.Pending() > 0 {
					fake.Advance(2 * time.Millisecond)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}

	// Context cancellation unblocks a waiting Predict.
	ctx, cancel := context.WithCancel(context.Background())
	out := predictAsync([][]float64{{2, 0}}, ctx)
	cancel()
	if r := <-out; !errors.Is(r.err, context.Canceled) {
		t.Fatalf("cancelled Predict: %v", r.err)
	}
	fake.Advance(2 * time.Millisecond) // flush the abandoned batch
	for rt.InFlight() != 0 {
		time.Sleep(100 * time.Microsecond)
	}

	// A prediction panic (dimension mismatch) fails the call, not the
	// worker: the runtime keeps serving afterwards.
	if r := await(predictAsync([][]float64{{1, 2, 3, 4, 5}}, context.Background())); r.err == nil {
		t.Fatal("dimension mismatch should surface as an error")
	}
	r := await(predictAsync([][]float64{{2, 0}, {-2, 0}}, context.Background()))
	if r.err != nil || r.classes[0] != 1 || r.classes[1] != 0 {
		t.Fatalf("runtime dead after panic: %+v", r)
	}

	rt.Close()
	rt.Close() // idempotent
	if _, _, err := rt.Predict(context.Background(), ref.Name, [][]float64{{2, 0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close: %v, want ErrClosed", err)
	}
}
