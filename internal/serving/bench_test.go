package serving

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

// benchTable synthesizes a k-class Gaussian-blob table for benchmark
// training and query traffic.
func benchTable(seed int64, n, d, k int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	feats := make([]string, d)
	for i := range feats {
		feats[i] = "f" + string(rune('a'+i))
	}
	classes := make([]string, k)
	for i := range classes {
		classes[i] = "c" + string(rune('a'+i))
	}
	tb := dataset.New("bench", feats, classes)
	for i := 0; i < n; i++ {
		y := i % k
		x := make([]float64, d)
		for j := range x {
			x[j] = float64(y)*2.0 + rng.NormFloat64()
		}
		if err := tb.Append(x, y); err != nil {
			panic(err)
		}
	}
	return tb
}

// Bench models use the experiment-default configs (100 unbounded-depth
// trees; 150 boosting rounds per class) trained large enough that the
// tree node arrays dwarf the L1/L2 caches — the regime the capacity
// experiments (§VII-B) run the deployed models in, and the one where
// tree-major batch traversal pays: the serial path re-streams every
// tree's node array per instance, the batch kernel walks one tree's
// array across the whole batch while it is cache-hot. Each model trains
// once and is shared by the serial and batched benchmarks.
var (
	benchForestOnce  sync.Once
	benchForestModel ml.Classifier
	benchGBDTOnce    sync.Once
	benchGBDTModel   ml.Classifier
)

func benchForest(b *testing.B) ml.Classifier {
	b.Helper()
	benchForestOnce.Do(func() {
		cfg := ml.DefaultForestConfig()
		cfg.Trees = 150
		m := ml.NewForest(cfg)
		if err := m.Fit(benchTable(1, 8000, benchDim, 3)); err != nil {
			b.Fatal(err)
		}
		benchForestModel = m
	})
	return benchForestModel
}

func benchGBDT(b *testing.B) ml.Classifier {
	b.Helper()
	benchGBDTOnce.Do(func() {
		cfg := ml.DefaultLightGBMConfig()
		cfg.Rounds = 300
		cfg.MaxLeaves = 127
		m := ml.NewGBDT(cfg)
		if err := m.Fit(benchTable(1, 3000, benchDim, 3)); err != nil {
			b.Fatal(err)
		}
		benchGBDTModel = m
	})
	return benchGBDTModel
}

func benchQueries(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(42))
	X := make([][]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		X[i] = x
	}
	return X
}

// benchConcurrency is the client fan-in for both paths — the paper's
// capacity experiments drive services with 32+ concurrent JMeter threads.
const benchConcurrency = 128

// benchDim is the bench feature dimensionality.
const benchDim = 12

// benchmarkSerial measures the pre-serving prediction path: each of 32
// concurrent requests walks the model per instance and argmaxes inline,
// exactly what MLService.handlePredict did before the runtime.
func benchmarkSerial(b *testing.B, m ml.Classifier) {
	X := benchQueries(256, benchDim)
	b.SetParallelism(benchConcurrency)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			probs := m.PredictProba(X[i%len(X)])
			_ = mat.ArgMax(probs)
			i++
		}
	})
}

// benchmarkBatched measures the same traffic through the serving runtime:
// 32 concurrent single-instance Predicts coalesced into micro-batches
// executed by the tree-major batch kernels.
func benchmarkBatched(b *testing.B, m ml.Classifier) {
	rt := New(Config{MaxBatch: benchConcurrency, MaxWait: 400 * time.Microsecond})
	defer rt.Close()
	ref, err := rt.Registry().Register("bench", m)
	if err != nil {
		b.Fatal(err)
	}
	X := benchQueries(256, benchDim)
	b.SetParallelism(benchConcurrency)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		i := 0
		for pb.Next() {
			if _, _, err := rt.Predict(ctx, ref.ID, [][]float64{X[i%len(X)]}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func BenchmarkServingSerialForest(b *testing.B)  { benchmarkSerial(b, benchForest(b)) }
func BenchmarkServingBatchedForest(b *testing.B) { benchmarkBatched(b, benchForest(b)) }
func BenchmarkServingSerialGBDT(b *testing.B)    { benchmarkSerial(b, benchGBDT(b)) }
func BenchmarkServingBatchedGBDT(b *testing.B)   { benchmarkBatched(b, benchGBDT(b)) }
