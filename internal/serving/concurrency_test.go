package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ml"
	"repro/internal/telemetry"
)

// TestRuntimeConcurrentUse hammers every registry and runtime surface at
// once — predicts, version registrations, promotes/rollbacks, alias
// listings, and LRU churn from a tiny warm budget — and asserts the
// runtime settles clean. Run under -race this is the subsystem's
// data-race certificate.
func TestRuntimeConcurrentUse(t *testing.T) {
	tel := telemetry.NewRegistry()
	rt := New(Config{
		MaxBatch:  8,
		MaxWait:   200 * time.Microsecond,
		Workers:   2,
		WarmBytes: 1, // every cold load evicts: maximum cache churn
		Telemetry: tel,
	})
	defer rt.Close()
	reg := rt.Registry()

	// Pre-marshal distinct model generations on the test goroutine
	// (trainedLogReg may t.Fatal, which is main-goroutine-only).
	blobs := make([][]byte, 4)
	for i := range blobs {
		raw, err := ml.MarshalModel(trainedLogReg(t, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = raw
	}
	if _, err := reg.RegisterBytes("fall", "lr", blobs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("gait", trainedLogReg(t, 9)); err != nil {
		t.Fatal(err)
	}

	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				name := "fall"
				if (g+i)%2 == 0 {
					name = "gait"
				}
				_, _, err := rt.Predict(ctx, name, [][]float64{{2, 0}, {-2, 0}})
				var oe *OverloadedError
				if err != nil && !errors.As(err, &oe) && !errors.Is(err, ErrNotFound) {
					t.Errorf("predict %s: %v", name, err)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // registrar: new versions of fall
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := reg.RegisterBytes("fall", "lr", blobs[i%len(blobs)]); err != nil {
				t.Errorf("register: %v", err)
			}
		}
	}()
	wg.Add(1)
	go func() { // operator: promote/rollback/inspect
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Version 2 races the registrar goroutine; tolerate not-yet.
			if err := reg.Promote("fall", 1+i%2); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("promote: %v", err)
			}
			if i%4 == 3 {
				// May legitimately find an empty history.
				_, _ = reg.Rollback("fall")
			}
			reg.Aliases()
			reg.WarmBytes()
			rt.InFlight()
		}
	}()
	wg.Wait()

	for rt.InFlight() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if metricValue(t, tel, "spatial_serving_queue_depth") != 0 {
		t.Fatal("queue depth gauge nonzero after settle")
	}
	if got := reg.Len(); got != len(blobs)+1 {
		t.Fatalf("registry holds %d entries, want %d (content dedup across registrars)", got, len(blobs)+1)
	}
	if metricValue(t, tel, "spatial_serving_predictions_total") == 0 {
		t.Fatal("no predictions recorded")
	}
}
