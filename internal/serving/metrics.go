package serving

import (
	"repro/internal/telemetry"
)

// defBatchSizeBuckets are the batch-size histogram bounds: powers of two
// up to the default MaxBatch and one beyond, so the size distribution
// shows whether flushes are size-bound (full batches) or latency-bound
// (small ones).
var defBatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// metrics bundles the runtime's telemetry handles. Every series is
// unlabeled: the model set is request-driven and unbounded, so putting
// model names in labels would explode cardinality (the exact leak
// spatial-lint's telemetry-cardinality check exists to prevent).
type metrics struct {
	predictions  *telemetry.Counter
	shed         *telemetry.Counter
	coldLoads    *telemetry.Counter
	evictions    *telemetry.Counter
	models       *telemetry.Gauge
	warmBytes    *telemetry.Gauge
	queueDepth   *telemetry.Gauge
	batchSize    *telemetry.Histogram
	batchLatency *telemetry.Histogram
}

// The registry helpers below are nil-receiver-safe so a standalone
// NewRegistry (no telemetry) shares the same code paths.

func (m *metrics) setModels(n int) {
	if m != nil {
		m.models.Set(float64(n))
	}
}

func (m *metrics) setWarmBytes(b int64) {
	if m != nil {
		m.warmBytes.Set(float64(b))
	}
}

func (m *metrics) incColdLoads() {
	if m != nil {
		m.coldLoads.Inc()
	}
}

func (m *metrics) incEvictions() {
	if m != nil {
		m.evictions.Inc()
	}
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		predictions: reg.Counter("spatial_serving_predictions_total",
			"Instances scored by the serving runtime.").With(),
		shed: reg.Counter("spatial_serving_shed_total",
			"Instances shed by admission control past the queue watermark.").With(),
		coldLoads: reg.Counter("spatial_serving_cold_loads_total",
			"Registry models deserialized on demand (warm-cache misses).").With(),
		evictions: reg.Counter("spatial_serving_evictions_total",
			"Warm models evicted back to serialized bytes by the LRU budget.").With(),
		models: reg.Gauge("spatial_serving_registry_models",
			"Distinct content-addressed models in the registry.").With(),
		warmBytes: reg.Gauge("spatial_serving_warm_bytes",
			"Serialized bytes of models currently warm in the registry cache.").With(),
		queueDepth: reg.Gauge("spatial_serving_queue_depth",
			"In-flight instances across all model lines (queued + batching + executing).").With(),
		batchSize: reg.Histogram("spatial_serving_batch_size",
			"Instances per executed micro-batch.", defBatchSizeBuckets).With(),
		batchLatency: reg.Histogram("spatial_serving_batch_latency_seconds",
			"Seconds from first enqueue to batch completion.", nil).With(),
	}
}
