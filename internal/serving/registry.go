package serving

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ml"
)

// ErrNotFound is wrapped by registry lookups that miss: unknown content
// id, unknown alias, out-of-range version, or an alias with no promoted
// version. Servers map it to 404.
var ErrNotFound = errors.New("serving: model not found")

// idPrefix tags content-addressed model ids.
const idPrefix = "sha256:"

// Ref identifies one registered model version: the content-addressed id
// plus the name@version alias it was registered under.
type Ref struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Version int    `json:"version"`
}

// String renders the name@version form.
func (r Ref) String() string { return fmt.Sprintf("%s@%d", r.Name, r.Version) }

// entry is one content-addressed model: serialized bytes are the source
// of truth, the deserialized classifier is a warm-cache citizen.
type entry struct {
	id   string
	algo string
	blob []byte

	model ml.Classifier // nil when cold
	elem  *list.Element // LRU position when warm
}

// alias is the version history of one model name.
type alias struct {
	// versions[v-1] is the content id of version v.
	versions []string
	// current is the promoted version (0 = none).
	current int
	// history stacks previously promoted versions for rollback.
	history []int
}

// Registry is the versioned model store: content-addressed entries
// (SHA-256 of the serialized envelope), name@version aliases with atomic
// promote/rollback, and an LRU warm cache with a byte budget so cold
// models deserialize on demand and evictions are observable. All methods
// are safe for concurrent use.
type Registry struct {
	budget int64
	met    *metrics

	mu        sync.Mutex
	entries   map[string]*entry
	aliases   map[string]*alias
	lru       *list.List // front = most recently used warm entry
	warmBytes int64
}

// NewRegistry builds a standalone registry with the given warm-cache
// byte budget (<=0 selects the 128 MiB default). Registries owned by a
// Runtime share its telemetry; standalone ones record into a private
// registry reachable via nothing — construct through New when metrics
// matter.
func NewRegistry(warmBytes int64) *Registry {
	if warmBytes <= 0 {
		warmBytes = 128 << 20
	}
	return newRegistry(warmBytes, nil)
}

func newRegistry(budget int64, met *metrics) *Registry {
	return &Registry{
		budget:  budget,
		met:     met,
		entries: make(map[string]*entry),
		aliases: make(map[string]*alias),
		lru:     list.New(),
	}
}

// contentID hashes a serialized model envelope.
func contentID(blob []byte) string {
	sum := sha256.Sum256(blob)
	return idPrefix + hex.EncodeToString(sum[:])
}

// Register serializes model, stores it under its content id, and appends
// a new version of name. The first version of a name is promoted
// automatically; later versions await an explicit Promote. Registering
// byte-identical models deduplicates storage: the new version points at
// the existing entry and the warm model is reused.
func (r *Registry) Register(name string, model ml.Classifier) (Ref, error) {
	if name == "" || strings.ContainsAny(name, "@/\\") {
		return Ref{}, fmt.Errorf("serving: invalid model name %q", name)
	}
	blob, err := ml.MarshalModel(model)
	if err != nil {
		return Ref{}, fmt.Errorf("serving: marshal model: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.internLocked(blob, model.Name())
	if e.model == nil {
		// Keep the freshly registered model warm — the caller is about
		// to serve it.
		e.model = model
		r.warmLocked(e)
	}
	return r.appendVersionLocked(name, e.id), nil
}

// RegisterBytes stores an already-serialized envelope (e.g. restored
// from disk or fetched from a peer) as a new version of name. The model
// stays cold until first use.
func (r *Registry) RegisterBytes(name, algo string, blob []byte) (Ref, error) {
	if name == "" || strings.ContainsAny(name, "@/\\") {
		return Ref{}, fmt.Errorf("serving: invalid model name %q", name)
	}
	if len(blob) == 0 {
		return Ref{}, errors.New("serving: empty model envelope")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.internLocked(append([]byte(nil), blob...), algo)
	return r.appendVersionLocked(name, e.id), nil
}

// internLocked returns (creating if new) the entry for blob.
func (r *Registry) internLocked(blob []byte, algo string) *entry {
	id := contentID(blob)
	if e, ok := r.entries[id]; ok {
		return e
	}
	e := &entry{id: id, algo: algo, blob: blob}
	r.entries[id] = e
	r.met.setModels(len(r.entries))
	return e
}

func (r *Registry) appendVersionLocked(name, id string) Ref {
	a := r.aliases[name]
	if a == nil {
		a = &alias{}
		r.aliases[name] = a
	}
	a.versions = append(a.versions, id)
	v := len(a.versions)
	if a.current == 0 {
		a.current = v
	}
	return Ref{ID: id, Name: name, Version: v}
}

// Promote atomically points name's promoted version at version,
// stacking the previous promotion for Rollback.
func (r *Registry) Promote(name string, version int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.aliases[name]
	if a == nil {
		return fmt.Errorf("serving: alias %q: %w", name, ErrNotFound)
	}
	if version < 1 || version > len(a.versions) {
		return fmt.Errorf("serving: %s@%d: %w (have %d versions)", name, version, ErrNotFound, len(a.versions))
	}
	if version == a.current {
		return nil
	}
	a.history = append(a.history, a.current)
	a.current = version
	return nil
}

// Rollback atomically restores name's previously promoted version and
// returns its ref.
func (r *Registry) Rollback(name string) (Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.aliases[name]
	if a == nil {
		return Ref{}, fmt.Errorf("serving: alias %q: %w", name, ErrNotFound)
	}
	if len(a.history) == 0 {
		return Ref{}, fmt.Errorf("serving: alias %q has no promotion to roll back", name)
	}
	a.current = a.history[len(a.history)-1]
	a.history = a.history[:len(a.history)-1]
	return Ref{ID: a.versions[a.current-1], Name: name, Version: a.current}, nil
}

// PeekRollback returns the ref Rollback would restore for name, without
// mutating any state. Cluster coordinators use it to learn the rollback
// target, run a two-phase flip to that version across replicas, and only
// then pop the canonical history.
func (r *Registry) PeekRollback(name string) (Ref, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := r.aliases[name]
	if a == nil {
		return Ref{}, fmt.Errorf("serving: alias %q: %w", name, ErrNotFound)
	}
	if len(a.history) == 0 {
		return Ref{}, fmt.Errorf("serving: alias %q has no promotion to roll back", name)
	}
	v := a.history[len(a.history)-1]
	return Ref{ID: a.versions[v-1], Name: name, Version: v}, nil
}

// Resolve maps a model reference onto its content id. Accepted forms:
// a raw content id ("sha256:..."), "name@N", "name@latest", or a bare
// promoted name.
func (r *Registry) Resolve(ref string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resolveLocked(ref)
}

func (r *Registry) resolveLocked(ref string) (string, error) {
	if strings.HasPrefix(ref, idPrefix) {
		if _, ok := r.entries[ref]; !ok {
			return "", fmt.Errorf("serving: id %s: %w", ref, ErrNotFound)
		}
		return ref, nil
	}
	name, verStr, hasVer := strings.Cut(ref, "@")
	a := r.aliases[name]
	if a == nil {
		return "", fmt.Errorf("serving: model %q: %w", ref, ErrNotFound)
	}
	v := a.current
	if hasVer {
		if verStr == "latest" {
			v = len(a.versions)
		} else {
			n, err := strconv.Atoi(verStr)
			if err != nil {
				return "", fmt.Errorf("serving: bad version in %q: %w", ref, err)
			}
			v = n
		}
	}
	if v < 1 || v > len(a.versions) {
		return "", fmt.Errorf("serving: %s@%d: %w (have %d versions)", name, v, ErrNotFound, len(a.versions))
	}
	return a.versions[v-1], nil
}

// Model resolves ref and returns its classifier, deserializing on demand
// (a cold load) and keeping the result warm under the LRU byte budget.
func (r *Registry) Model(ref string) (ml.Classifier, error) {
	r.mu.Lock()
	id, err := r.resolveLocked(ref)
	if err != nil {
		r.mu.Unlock()
		return nil, err
	}
	e := r.entries[id]
	if e.model != nil {
		r.lru.MoveToFront(e.elem)
		m := e.model
		r.mu.Unlock()
		return m, nil
	}
	blob := e.blob
	r.mu.Unlock()

	// Deserialize outside the lock: cold loads of big models must not
	// stall warm hits on other entries. Concurrent cold loads of the
	// same entry may duplicate work; first one in wins the cache slot.
	model, err := ml.UnmarshalModel(blob)
	if err != nil {
		return nil, fmt.Errorf("serving: decode %s: %w", id, err)
	}
	r.met.incColdLoads()

	r.mu.Lock()
	defer r.mu.Unlock()
	if e.model == nil {
		e.model = model
		r.warmLocked(e)
	}
	return e.model, nil
}

// warmLocked inserts e at the LRU front and evicts past the budget.
func (r *Registry) warmLocked(e *entry) {
	e.elem = r.lru.PushFront(e)
	r.warmBytes += int64(len(e.blob))
	for r.warmBytes > r.budget && r.lru.Len() > 1 {
		back := r.lru.Back()
		victim := back.Value.(*entry)
		if victim == e {
			break // never evict the entry being warmed
		}
		r.lru.Remove(back)
		victim.model = nil
		victim.elem = nil
		r.warmBytes -= int64(len(victim.blob))
		r.met.incEvictions()
	}
	r.met.setWarmBytes(r.warmBytes)
}

// Blob resolves ref and returns the serialized envelope plus the
// algorithm tag it was registered with.
func (r *Registry) Blob(ref string) ([]byte, string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, err := r.resolveLocked(ref)
	if err != nil {
		return nil, "", err
	}
	e := r.entries[id]
	return e.blob, e.algo, nil
}

// AliasInfo is the exported state of one model name.
type AliasInfo struct {
	Name     string   `json:"name"`
	Versions []string `json:"versions"` // content ids, version = index+1
	Current  int      `json:"current"`
}

// Aliases lists every alias sorted by name.
func (r *Registry) Aliases() []AliasInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AliasInfo, 0, len(r.aliases))
	for name, a := range r.aliases {
		out = append(out, AliasInfo{
			Name:     name,
			Versions: append([]string(nil), a.versions...),
			Current:  a.current,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of distinct content-addressed models.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// WarmBytes reports the serialized size of currently warm models.
func (r *Registry) WarmBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.warmBytes
}

// --- persistence --------------------------------------------------------

// registryIndex is the on-disk catalog: entry metadata plus alias state.
// Model bytes live beside it, one envelope file per content id, in the
// same one-file-per-model layout as the ML service's original store.
type registryIndex struct {
	Entries []registryEntry        `json:"entries"`
	Aliases map[string]aliasRecord `json:"aliases"`
}

type registryEntry struct {
	ID   string `json:"id"`
	Algo string `json:"algo"`
}

type aliasRecord struct {
	Versions []string `json:"versions"`
	Current  int      `json:"current"`
	History  []int    `json:"history,omitempty"`
}

// blobFile maps a content id onto its envelope filename.
func blobFile(id string) string { return strings.TrimPrefix(id, idPrefix) + ".model.json" }

// Save persists every entry (one JSON envelope per model) plus a
// registry.json index with the alias state to dir.
func (r *Registry) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serving: create registry dir: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := registryIndex{Aliases: make(map[string]aliasRecord, len(r.aliases))}
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := r.entries[id]
		if err := os.WriteFile(filepath.Join(dir, blobFile(id)), e.blob, 0o644); err != nil {
			return fmt.Errorf("serving: write %s: %w", id, err)
		}
		idx.Entries = append(idx.Entries, registryEntry{ID: id, Algo: e.algo})
	}
	for name, a := range r.aliases {
		idx.Aliases[name] = aliasRecord{
			Versions: append([]string(nil), a.versions...),
			Current:  a.current,
			History:  append([]int(nil), a.history...),
		}
	}
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("serving: marshal registry index: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "registry.json"), raw, 0o644); err != nil {
		return fmt.Errorf("serving: write registry index: %w", err)
	}
	return nil
}

// Load restores a registry saved by Save, replacing the in-memory state.
// Every envelope is integrity-checked against its content id; models
// stay cold until first use.
func (r *Registry) Load(dir string) error {
	raw, err := os.ReadFile(filepath.Join(dir, "registry.json"))
	if err != nil {
		return fmt.Errorf("serving: read registry index: %w", err)
	}
	var idx registryIndex
	if err := json.Unmarshal(raw, &idx); err != nil {
		return fmt.Errorf("serving: parse registry index: %w", err)
	}
	entries := make(map[string]*entry, len(idx.Entries))
	for _, re := range idx.Entries {
		if !strings.HasPrefix(re.ID, idPrefix) || strings.ContainsAny(re.ID, "/\\") {
			return fmt.Errorf("serving: invalid content id %q in index", re.ID)
		}
		blob, err := os.ReadFile(filepath.Join(dir, blobFile(re.ID)))
		if err != nil {
			return fmt.Errorf("serving: read model %s: %w", re.ID, err)
		}
		if got := contentID(blob); got != re.ID {
			return fmt.Errorf("serving: model %s fails integrity check (got %s)", re.ID, got)
		}
		entries[re.ID] = &entry{id: re.ID, algo: re.Algo, blob: blob}
	}
	aliases := make(map[string]*alias, len(idx.Aliases))
	for name, rec := range idx.Aliases {
		for _, id := range rec.Versions {
			if _, ok := entries[id]; !ok {
				return fmt.Errorf("serving: alias %q references unknown model %s", name, id)
			}
		}
		if rec.Current < 0 || rec.Current > len(rec.Versions) {
			return fmt.Errorf("serving: alias %q has invalid current version %d", name, rec.Current)
		}
		aliases[name] = &alias{
			versions: append([]string(nil), rec.Versions...),
			current:  rec.Current,
			history:  append([]int(nil), rec.History...),
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = entries
	r.aliases = aliases
	r.lru.Init()
	r.warmBytes = 0
	r.met.setModels(len(entries))
	r.met.setWarmBytes(0)
	return nil
}
