package serving

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/telemetry"
)

// sepTable builds a small linearly separable two-class table.
func sepTable(seed int64, n int) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := dataset.New("sep", []string{"f0", "f1"}, []string{"a", "b"})
	for i := 0; i < n; i++ {
		y := i % 2
		if err := tb.Append([]float64{float64(y)*4 - 2 + rng.NormFloat64()*0.4, rng.NormFloat64()}, y); err != nil {
			panic(err)
		}
	}
	return tb
}

func trainedLogReg(t *testing.T, seed int64) ml.Classifier {
	t.Helper()
	cfg := ml.DefaultLogRegConfig()
	cfg.Seed = seed
	m := ml.NewLogReg(cfg)
	if err := m.Fit(sepTable(seed, 120)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryContentAddressingAndVersions(t *testing.T) {
	reg := NewRegistry(0)
	m := trainedLogReg(t, 1)

	ref1, err := reg.Register("fall", m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ref1.ID, "sha256:") || ref1.Version != 1 {
		t.Fatalf("ref %+v", ref1)
	}
	// Registering the same bytes under another name deduplicates storage.
	ref2, err := reg.Register("fall-copy", m)
	if err != nil {
		t.Fatal(err)
	}
	if ref2.ID != ref1.ID {
		t.Fatalf("same model hashed to %s and %s", ref1.ID, ref2.ID)
	}
	if reg.Len() != 1 {
		t.Fatalf("entries %d, want 1 (content dedup)", reg.Len())
	}

	// A second, different version under the same name.
	m2 := trainedLogReg(t, 2)
	ref3, err := reg.Register("fall", m2)
	if err != nil {
		t.Fatal(err)
	}
	if ref3.Version != 2 || ref3.ID == ref1.ID {
		t.Fatalf("v2 ref %+v", ref3)
	}

	// v1 auto-promoted; v2 awaits Promote.
	for ref, want := range map[string]string{
		"fall":        ref1.ID,
		"fall@1":      ref1.ID,
		"fall@2":      ref3.ID,
		"fall@latest": ref3.ID,
		ref3.ID:       ref3.ID,
	} {
		got, err := reg.Resolve(ref)
		if err != nil {
			t.Fatalf("resolve %q: %v", ref, err)
		}
		if got != want {
			t.Fatalf("resolve %q = %s, want %s", ref, got, want)
		}
	}

	if err := reg.Promote("fall", 2); err != nil {
		t.Fatal(err)
	}
	if id, _ := reg.Resolve("fall"); id != ref3.ID {
		t.Fatalf("after promote, fall -> %s, want %s", id, ref3.ID)
	}
	back, err := reg.Rollback("fall")
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != 1 {
		t.Fatalf("rollback landed on v%d", back.Version)
	}
	if id, _ := reg.Resolve("fall"); id != ref1.ID {
		t.Fatalf("after rollback, fall -> %s, want %s", id, ref1.ID)
	}

	aliases := reg.Aliases()
	if len(aliases) != 2 || aliases[0].Name != "fall" || aliases[0].Current != 1 {
		t.Fatalf("aliases %+v", aliases)
	}
}

func TestRegistryResolveErrors(t *testing.T) {
	reg := NewRegistry(0)
	if _, err := reg.Register("a@b", trainedLogReg(t, 1)); err == nil {
		t.Fatal("name with @ should be rejected")
	}
	if _, err := reg.Register("", trainedLogReg(t, 1)); err == nil {
		t.Fatal("empty name should be rejected")
	}
	for _, ref := range []string{"nope", "nope@1", "sha256:beef", "fall@0"} {
		_, err := reg.Resolve(ref)
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("resolve %q: err %v, want ErrNotFound", ref, err)
		}
	}
	if _, err := reg.Register("fall", trainedLogReg(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Resolve("fall@junk"); err == nil {
		t.Fatal("non-numeric version should error")
	}
	if err := reg.Promote("fall", 9); !errors.Is(err, ErrNotFound) {
		t.Fatalf("promote out of range: %v", err)
	}
	if _, err := reg.Rollback("fall"); err == nil {
		t.Fatal("rollback with no history should error")
	}
}

// TestRegistryLRUEvictionAndColdLoad pins the warm-cache contract: a
// tiny byte budget evicts the least recently used model back to bytes
// (observable via the runtime's telemetry), and a later predict cold
// loads it with identical results.
func TestRegistryLRUEvictionAndColdLoad(t *testing.T) {
	tel := telemetry.NewRegistry()
	rt := New(Config{WarmBytes: 1, Telemetry: tel}) // budget smaller than any model
	defer rt.Close()
	reg := rt.Registry()

	m1 := trainedLogReg(t, 1)
	ref1, err := reg.Register("a", m1)
	if err != nil {
		t.Fatal(err)
	}
	if reg.WarmBytes() == 0 {
		t.Fatal("just-registered model should stay warm even over budget")
	}
	// Second registration evicts the first (budget fits at most one).
	if _, err := reg.Register("b", trainedLogReg(t, 2)); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, tel, "spatial_serving_evictions_total"); got != 1 {
		t.Fatalf("evictions %v, want 1", got)
	}

	// Cold load: model "a" deserializes on demand and predicts the same.
	got, err := reg.Model(ref1.ID)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{2, 0}
	want := m1.PredictProba(x)
	if p := got.PredictProba(x); ml.ArgmaxAll([][]float64{p})[0] != ml.ArgmaxAll([][]float64{want})[0] {
		t.Fatalf("cold-loaded model predicts %v, original %v", p, want)
	}
	if metricValue(t, tel, "spatial_serving_cold_loads_total") < 1 {
		t.Fatal("cold load not counted")
	}
	if metricValue(t, tel, "spatial_serving_registry_models") != 2 {
		t.Fatal("model gauge should report 2 entries")
	}
}

func TestRegistrySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(0)
	m1 := trainedLogReg(t, 1)
	ref1, err := reg.Register("fall", m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("fall", trainedLogReg(t, 2)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Promote("fall", 2); err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(dir); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry(0)
	if err := reg2.Load(dir); err != nil {
		t.Fatal(err)
	}
	if reg2.Len() != 2 {
		t.Fatalf("restored %d entries, want 2", reg2.Len())
	}
	if id, _ := reg2.Resolve("fall"); id == ref1.ID {
		t.Fatal("promotion state lost on reload")
	}
	// Rollback history survives too.
	back, err := reg2.Rollback("fall")
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != ref1.ID {
		t.Fatalf("rollback after reload -> %s, want %s", back.ID, ref1.ID)
	}
	restored, err := reg2.Model(ref1.ID)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{-2, 0}
	if ml.Predict(restored, x) != ml.Predict(m1, x) {
		t.Fatal("restored model predicts differently")
	}

	// Tampered blob fails the integrity check.
	blob := blobFile(ref1.ID)
	raw, err := os.ReadFile(filepath.Join(dir, blob))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, blob), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry(0).Load(dir); err == nil || !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("tampered blob: err %v, want integrity failure", err)
	}
}

// metricValue reads an unlabeled series value from a telemetry registry.
func metricValue(t *testing.T, tel *telemetry.Registry, name string) float64 {
	t.Helper()
	for _, fam := range tel.Gather() {
		if fam.Name == name {
			if len(fam.Series) != 1 {
				t.Fatalf("metric %s has %d series", name, len(fam.Series))
			}
			return fam.Series[0].Value
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
