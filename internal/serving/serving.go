// Package serving is the model-serving runtime every SPATIAL service
// predicts through: a versioned, content-addressed model registry with an
// LRU warm cache, a per-model dynamic micro-batcher that coalesces
// concurrent requests under size and latency bounds, per-model worker
// pools with bounded queues, and admission control that sheds load with a
// retryable overload error before queueing collapses into latency.
//
// The paper's capacity experiments (§VII-B) drive the deployed services
// with concurrent JMeter traffic; this package replaces the serial
// per-request prediction loop those experiments saturate with a runtime
// that amortizes per-request overhead across batches (tree-major batch
// kernels in internal/ml), bounds concurrency to the hardware, and turns
// overload into fast 429s instead of unbounded queueing.
//
// Time is injected via internal/clock so batching deadlines are exact
// virtual timelines under test; telemetry (queue depth, batch size and
// latency, shed and eviction counters) records into an
// internal/telemetry registry exposed at /metrics.
package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/ml"
	"repro/internal/telemetry"
)

// Config parameterizes the runtime. The zero value is usable: every
// field falls back to the documented default.
type Config struct {
	// MaxBatch is the micro-batch size bound (default 64): a forming
	// batch flushes as soon as it holds MaxBatch instances.
	MaxBatch int
	// MaxWait is the micro-batch latency bound (default 2ms): a forming
	// batch flushes when its oldest instance has waited MaxWait, full or
	// not.
	MaxWait time.Duration
	// Workers is the per-model worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the per-model request queue (default 1024).
	QueueDepth int
	// ShedWatermark is the in-flight instance count (queued + batching +
	// executing, per model) beyond which new requests are shed with an
	// *OverloadedError (default 3/4 of QueueDepth, clamped to
	// QueueDepth).
	ShedWatermark int
	// RetryAfter is the client back-off hint carried by shed responses
	// (default 250ms).
	RetryAfter time.Duration
	// WarmBytes is the registry's warm-cache budget in serialized bytes
	// (default 128 MiB): cold models deserialize on demand, least
	// recently used models are evicted back to bytes.
	WarmBytes int64
	// Clock is the time source for batching deadlines and latency
	// measurements; clock.Real() when nil. Tests install a clock.Fake
	// and assert exact virtual timelines.
	Clock clock.Clock
	// Telemetry is the metric registry serving metrics record into; a
	// private registry is created when nil.
	Telemetry *telemetry.Registry
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.ShedWatermark <= 0 {
		c.ShedWatermark = c.QueueDepth * 3 / 4
	}
	if c.ShedWatermark > c.QueueDepth {
		c.ShedWatermark = c.QueueDepth
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.WarmBytes <= 0 {
		c.WarmBytes = 128 << 20
	}
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.NewRegistry()
	}
	return c
}

// OverloadedError is returned when admission control sheds a request:
// the model's in-flight depth is past the watermark. Servers surface it
// as 429 with a Retry-After header; service.Client honors the hint.
type OverloadedError struct {
	// Ref is the model reference the shed request addressed.
	Ref string
	// Depth is the in-flight instance count at shed time.
	Depth int
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("serving: model %s overloaded (%d in flight); retry after %v",
		e.Ref, e.Depth, e.RetryAfter)
}

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serving: runtime closed")

// Runtime is the model-serving runtime. Create with New, register models
// through Registry(), predict with Predict, and Close when done.
type Runtime struct {
	cfg Config
	clk clock.Clock
	met *metrics
	reg *Registry

	mu     sync.Mutex
	lines  map[string]*line
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New constructs a runtime (and its registry) from cfg.
func New(cfg Config) *Runtime {
	cfg = cfg.withDefaults()
	met := newMetrics(cfg.Telemetry)
	r := &Runtime{
		cfg:   cfg,
		clk:   cfg.Clock,
		met:   met,
		reg:   newRegistry(cfg.WarmBytes, met),
		lines: make(map[string]*line),
		stop:  make(chan struct{}),
	}
	cfg.Telemetry.OnGather(func() { met.queueDepth.Set(float64(r.InFlight())) })
	return r
}

// Registry returns the runtime's model registry.
func (r *Runtime) Registry() *Registry { return r.reg }

// Telemetry returns the metric registry serving metrics record into.
func (r *Runtime) Telemetry() *telemetry.Registry { return r.cfg.Telemetry }

// item is one instance waiting for a prediction.
type item struct {
	x    []float64
	out  int
	at   time.Time
	call *call
}

// call aggregates the results of one Predict invocation whose instances
// may be spread over several batches and workers.
type call struct {
	probs     [][]float64
	remaining atomic.Int64
	err       atomic.Pointer[error]
	done      chan struct{}
}

func (c *call) deliver(i int, p []float64) {
	c.probs[i] = p
	if c.remaining.Add(-1) == 0 {
		close(c.done)
	}
}

func (c *call) fail(err error) {
	c.err.CompareAndSwap(nil, &err)
	if c.remaining.Add(-1) == 0 {
		close(c.done)
	}
}

// line is the serving pipeline of one content-addressed model: a bounded
// request queue, a batcher goroutine coalescing it into micro-batches,
// and a worker pool executing them.
type line struct {
	id       string
	in       chan *item
	work     chan []*item
	inflight atomic.Int64
}

// line returns (creating and starting on first use) the pipeline for a
// content id.
func (r *Runtime) line(id string) (*line, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if ln, ok := r.lines[id]; ok {
		return ln, nil
	}
	ln := &line{
		id:   id,
		in:   make(chan *item, r.cfg.QueueDepth),
		work: make(chan []*item, r.cfg.Workers),
	}
	r.lines[id] = ln
	r.wg.Add(1 + r.cfg.Workers)
	go r.runBatcher(ln)
	for w := 0; w < r.cfg.Workers; w++ {
		go r.runWorker(ln)
	}
	return ln, nil
}

// Predict scores instances against the model addressed by ref (a content
// id, name@version, name@latest, or a promoted bare name), coalescing
// them with concurrent callers into micro-batches. It returns one
// probability row and one argmax class per instance.
func (r *Runtime) Predict(ctx context.Context, ref string, instances [][]float64) ([][]float64, []int, error) {
	id, err := r.reg.Resolve(ref)
	if err != nil {
		return nil, nil, err
	}
	if len(instances) == 0 {
		return nil, nil, nil
	}
	ln, err := r.line(id)
	if err != nil {
		return nil, nil, err
	}

	// Admission: reserve in-flight slots up front; past the watermark the
	// request is shed instead of queued, so latency stays bounded and the
	// client backs off (429 + Retry-After at the HTTP layer).
	n := int64(len(instances))
	depth := ln.inflight.Add(n)
	if depth > int64(r.cfg.ShedWatermark) {
		ln.inflight.Add(-n)
		r.met.shed.Add(float64(n))
		return nil, nil, &OverloadedError{Ref: ref, Depth: int(depth - n), RetryAfter: r.cfg.RetryAfter}
	}

	c := &call{probs: make([][]float64, len(instances)), done: make(chan struct{})}
	c.remaining.Store(n)
	now := r.clk.Now()
	slab := make([]item, len(instances))
	for i, x := range instances {
		slab[i] = item{x: x, out: i, at: now, call: c}
		// The reservation above guarantees queue room (channel occupancy
		// never exceeds in-flight, which the watermark caps at or below
		// the queue capacity), so this send cannot block on a full queue —
		// a bare send, not a select, keeps it off the slow path.
		ln.in <- &slab[i]
	}

	if ctxDone := ctx.Done(); ctxDone == nil {
		// Background-style context: a two-way select keeps the hot path
		// cheap.
		select {
		case <-c.done:
		case <-r.stop:
			return nil, nil, ErrClosed
		}
	} else {
		select {
		case <-c.done:
		case <-ctxDone:
			return nil, nil, ctx.Err()
		case <-r.stop:
			return nil, nil, ErrClosed
		}
	}
	if ep := c.err.Load(); ep != nil {
		return nil, nil, *ep
	}
	return c.probs, ml.ArgmaxAll(c.probs), nil
}

// runBatcher coalesces a line's queue into micro-batches: flush at
// MaxBatch instances or when the first instance has waited MaxWait.
func (r *Runtime) runBatcher(ln *line) {
	defer r.wg.Done()
	for {
		var first *item
		select {
		case first = <-ln.in:
		default:
			// Queue idle: block until work or shutdown.
			select {
			case first = <-ln.in:
			case <-r.stop:
				return
			}
		}
		batch := append(make([]*item, 0, r.cfg.MaxBatch), first)
		deadline := r.clk.After(r.cfg.MaxWait)
	collect:
		for len(batch) < r.cfg.MaxBatch {
			// Drain already-queued items with a cheap non-blocking
			// receive; fall into the full select (deadline, shutdown)
			// only when the queue is momentarily empty.
			select {
			case it := <-ln.in:
				batch = append(batch, it)
				continue
			default:
			}
			select {
			case it := <-ln.in:
				batch = append(batch, it)
			case <-deadline:
				break collect
			case <-r.stop:
				return
			}
		}
		select {
		case ln.work <- batch:
		case <-r.stop:
			return
		}
	}
}

// runWorker executes dispatched batches.
func (r *Runtime) runWorker(ln *line) {
	defer r.wg.Done()
	for {
		select {
		case batch := <-ln.work:
			r.execute(ln, batch)
		case <-r.stop:
			return
		}
	}
}

// execute scores one batch and delivers per-item results. A model error
// (or a prediction panic, e.g. a dimension mismatch) fails every item's
// call instead of crashing the worker.
func (r *Runtime) execute(ln *line, batch []*item) {
	first := batch[0].at
	probs, err := r.scoreBatch(ln.id, batch)
	// Accounting precedes delivery: a Predict caller wakes the moment its
	// result lands, and anything it then reads (in-flight count, batch
	// histograms) must already reflect this batch.
	ln.inflight.Add(-int64(len(batch)))
	if err == nil {
		// Counted here, once per batch, rather than per call: every
		// instance in the batch was scored.
		r.met.predictions.Add(float64(len(batch)))
	}
	r.met.batchSize.Observe(float64(len(batch)))
	r.met.batchLatency.Observe(r.clk.Since(first).Seconds())
	if err != nil {
		for _, it := range batch {
			it.call.fail(err)
		}
		return
	}
	// Reslice hint: scoreBatch returns one row per item on success.
	probs = probs[:len(batch)]
	for i, it := range batch {
		it.call.deliver(it.out, probs[i])
	}
}

func (r *Runtime) scoreBatch(id string, batch []*item) (probs [][]float64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("serving: predict panic: %v", rec)
		}
	}()
	model, err := r.reg.Model(id)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(batch))
	for i, it := range batch {
		X[i] = it.x
	}
	return ml.PredictProbaAll(model, X), nil
}

// InFlight reports the total in-flight instance count across every model
// line (the admission-control queue-depth signal).
func (r *Runtime) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, ln := range r.lines {
		total += ln.inflight.Load()
	}
	return int(total)
}

// InFlightFor reports the in-flight instance count of one model ref (0
// when the ref does not resolve or has no line yet).
func (r *Runtime) InFlightFor(ref string) int {
	id, err := r.reg.Resolve(ref)
	if err != nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ln, ok := r.lines[id]
	if !ok {
		return 0
	}
	return int(ln.inflight.Load())
}

// Close stops every batcher and worker and fails pending Predict calls
// with ErrClosed. It is idempotent.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
}
