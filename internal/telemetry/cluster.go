package telemetry

// Cluster metric family names recorded by internal/cluster, exported so
// the dashboard's cluster panel and the CI smoke check can find them in
// Gather output. Every family is labeled by replica ID only — a set
// fixed at topology construction, never by request input — so the
// telemetry-cardinality bound holds by construction.
const (
	// FamClusterReplicaUp is 1 while a replica's heartbeat is fresh, 0
	// once it expires or the replica is killed.
	FamClusterReplicaUp = "spatial_cluster_replica_up"
	// FamClusterRingMoves counts vnode ownership moves across ring
	// rebuilds (the rebalance cost of membership churn).
	FamClusterRingMoves = "spatial_cluster_ring_moves_total"
	// FamClusterReplicationBytes counts model-envelope bytes pushed to
	// replicas by promote-time replication and anti-entropy resync.
	FamClusterReplicationBytes = "spatial_cluster_replication_bytes_total"
	// FamClusterHeartbeatAge is the seconds since each replica's last
	// successful heartbeat, as of the latest sweep.
	FamClusterHeartbeatAge = "spatial_cluster_heartbeat_age_seconds"
)
