package telemetry

import (
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// quantiles rendered for every histogram family in the exposition.
var exposedQuantiles = []float64{0.5, 0.95, 0.99}

// Handler serves the registry in the Prometheus text exposition format
// (version 0.0.4). Histograms render cumulative buckets, _sum and _count,
// plus a sibling <name>_quantile gauge family carrying the estimated
// p50/p95/p99.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// WriteText renders the exposition into w.
func (r *Registry) WriteText(w io.Writer) {
	var b strings.Builder
	for _, fam := range r.Gather() {
		writeFamily(&b, fam)
	}
	io.WriteString(w, b.String())
}

func writeFamily(b *strings.Builder, fam Family) {
	writeHeader(b, fam.Name, fam.Help, fam.Type.String())
	for _, se := range fam.Series {
		switch fam.Type {
		case TypeHistogram:
			writeHistogramSeries(b, fam, se)
		default:
			b.WriteString(fam.Name)
			writeLabels(b, se.Labels)
			b.WriteByte(' ')
			b.WriteString(fmtFloat(se.Value))
			b.WriteByte('\n')
		}
	}
	if fam.Type == TypeHistogram && len(fam.Series) > 0 {
		writeHeader(b, fam.Name+"_quantile", "Estimated quantiles of "+fam.Name+".", "gauge")
		for _, se := range fam.Series {
			for _, q := range exposedQuantiles {
				b.WriteString(fam.Name + "_quantile")
				writeLabels(b, append(append([]Label(nil), se.Labels...),
					Label{Name: "quantile", Value: fmtFloat(q)}))
				b.WriteByte(' ')
				b.WriteString(fmtFloat(se.Quantile(q)))
				b.WriteByte('\n')
			}
		}
	}
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		b.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
	}
	b.WriteString("# TYPE " + name + " " + typ + "\n")
}

func writeHistogramSeries(b *strings.Builder, fam Family, se Series) {
	var cum uint64
	for i, bound := range fam.Buckets {
		if i < len(se.BucketCounts) {
			cum += se.BucketCounts[i]
		}
		b.WriteString(fam.Name + "_bucket")
		writeLabels(b, append(append([]Label(nil), se.Labels...),
			Label{Name: "le", Value: fmtFloat(bound)}))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(fam.Name + "_bucket")
	writeLabels(b, append(append([]Label(nil), se.Labels...),
		Label{Name: "le", Value: "+Inf"}))
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(se.Count, 10))
	b.WriteByte('\n')
	b.WriteString(fam.Name + "_sum")
	writeLabels(b, se.Labels)
	b.WriteByte(' ')
	b.WriteString(fmtFloat(se.Sum))
	b.WriteByte('\n')
	b.WriteString(fam.Name + "_count")
	writeLabels(b, se.Labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(se.Count, 10))
	b.WriteByte('\n')
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name + `="` + escapeLabel(l.Value) + `"`)
	}
	b.WriteByte('}')
}

// fmtFloat renders metric values: integral values without an exponent,
// everything else in Go's shortest repr.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
