package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text format for a fixed
// registry: counter, gauge, and a histogram with cumulative buckets, sum,
// count, and the estimated-quantile sibling family.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_requests_total", "Requests served.", "route", "code").
		With("/shap", "2xx").Add(3)
	reg.Gauge("demo_in_flight", "In-flight requests.").With().Set(2)
	h := reg.Histogram("demo_latency_seconds", "Request latency.", []float64{0.1, 0.5, 1}, "route").
		With("/shap")
	h.Observe(0.05) // first bucket
	h.Observe(0.05)
	h.Observe(0.3) // second bucket
	h.Observe(2)   // +Inf overflow

	var b strings.Builder
	reg.WriteText(&b)
	got := b.String()

	want := `# HELP demo_in_flight In-flight requests.
# TYPE demo_in_flight gauge
demo_in_flight 2
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{route="/shap",le="0.1"} 2
demo_latency_seconds_bucket{route="/shap",le="0.5"} 3
demo_latency_seconds_bucket{route="/shap",le="1"} 3
demo_latency_seconds_bucket{route="/shap",le="+Inf"} 4
demo_latency_seconds_sum{route="/shap"} 2.4
demo_latency_seconds_count{route="/shap"} 4
# HELP demo_latency_seconds_quantile Estimated quantiles of demo_latency_seconds.
# TYPE demo_latency_seconds_quantile gauge
demo_latency_seconds_quantile{route="/shap",quantile="0.5"} 0.1
demo_latency_seconds_quantile{route="/shap",quantile="0.95"} 1
demo_latency_seconds_quantile{route="/shap",quantile="0.99"} 1
# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{route="/shap",code="2xx"} 3
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x").With().Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "x_total 1") {
		t.Errorf("body missing metric: %s", rr.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "e", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	reg.WriteText(&b)
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong: %s", b.String())
	}
}

func TestRuntimeMetricsPresent(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, name := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in runtime exposition", name)
		}
	}
	if strings.Count(out, "# TYPE go_goroutines gauge") != 1 {
		t.Errorf("go_goroutines registered more than once:\n%s", out)
	}
}
