package telemetry

import (
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram. Observations land in the first
// bucket whose upper bound is >= the value; values beyond the last bound
// land in the implicit +Inf overflow slot.
type Histogram struct {
	bounds []float64       // sorted upper bounds, without +Inf
	counts []atomic.Uint64 // len(bounds)+1, last slot is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count is the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum is the total of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean is Sum/Count, or 0 before the first observation.
func (h *Histogram) Mean() float64 {
	if n := h.count.Load(); n > 0 {
		return h.sum.Load() / float64(n)
	}
	return 0
}

// snapshot copies the per-bucket counts (non-cumulative), sum, and count.
// The reads are individually atomic, not a consistent cut — fine for
// monitoring.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load(), h.count.Load()
}

// Quantile estimates the q-quantile (e.g. 0.5, 0.95, 0.99) from the
// bucket counts by linear interpolation inside the owning bucket.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, count := h.snapshot()
	return bucketQuantile(q, h.bounds, counts, count)
}

// bucketQuantile is the shared estimator over a (bounds, per-bucket
// counts) snapshot. Values in the +Inf overflow bucket clamp to the last
// finite bound; the first bucket interpolates from 0 (latencies are
// non-negative).
func bucketQuantile(q float64, bounds []float64, counts []uint64, total uint64) float64 {
	if total == 0 || len(counts) == 0 || q <= 0 || q >= 1 {
		if q >= 1 && total > 0 && len(bounds) > 0 {
			return bounds[len(bounds)-1]
		}
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		inBucket := float64(c)
		if inBucket == 0 {
			return hi
		}
		below := cum - inBucket
		return lo + (hi-lo)*((rank-below)/inBucket)
	}
	return bounds[len(bounds)-1]
}
