package telemetry

import (
	"net/http"
	"strconv"

	"repro/internal/clock"
)

// MiddlewareConfig parameterizes NewMiddleware.
type MiddlewareConfig struct {
	// Registry records the request metrics; required.
	Registry *Registry
	// Tracer records one span per request; nil disables tracing.
	Tracer *Tracer
	// Service names the component in metric labels and spans.
	Service string
	// Route derives the bounded route label from a request; defaults to
	// r.URL.Path. Override in front of open-ended path spaces to avoid
	// label-cardinality blowups.
	Route func(r *http.Request) string
	// Buckets overrides the latency histogram bounds (seconds);
	// DefLatencyBuckets when nil.
	Buckets []float64
}

// Shared metric family names recorded by the HTTP middleware, exported so
// consumers (service /stats, dashboard snapshot) can find them in Gather
// output.
const (
	FamRequests = "spatial_http_requests_total"
	FamInFlight = "spatial_http_in_flight_requests"
	FamLatency  = "spatial_http_request_duration_seconds"
)

// NewMiddleware builds an http.Handler wrapper that, per request:
// counts it by (service, route, method, status class), tracks in-flight
// requests, observes latency into a histogram, and — when a Tracer is
// configured — extracts or mints trace IDs, exposes them to the handler
// via the request context, echoes X-Trace-Id on the response, and records
// a server span.
func NewMiddleware(cfg MiddlewareConfig) func(http.Handler) http.Handler {
	if cfg.Registry == nil {
		panic("telemetry: MiddlewareConfig.Registry is required")
	}
	routeOf := cfg.Route
	if routeOf == nil {
		routeOf = func(r *http.Request) string { return r.URL.Path }
	}
	requests := cfg.Registry.Counter(FamRequests,
		"HTTP requests served.", "service", "route", "method", "code")
	inFlightVec := cfg.Registry.Gauge(FamInFlight,
		"HTTP requests currently being served.", "service")
	//lint:ignore telemetry-cardinality service name is fixed once per process at construction
	inFlight := inFlightVec.With(cfg.Service)
	latency := cfg.Registry.Histogram(FamLatency,
		"HTTP request latency in seconds.", cfg.Buckets, "service", "route")

	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			route := routeOf(r)
			start := clock.Real().Now()
			inFlight.Inc()
			defer inFlight.Dec()

			var traceID, parentID, spanID string
			if cfg.Tracer != nil {
				traceID, parentID = Extract(r.Header)
				if traceID == "" {
					traceID = NewTraceID()
				}
				spanID = NewSpanID()
				r = r.WithContext(ContextWithTrace(r.Context(), traceID, spanID))
				w.Header().Set(HeaderTraceID, traceID)
			}

			rec := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			next.ServeHTTP(rec, r)

			elapsed := clock.Real().Since(start)
			//lint:ignore telemetry-cardinality service is fixed per process, route comes from cfg.Route's bounded table, method and code are normalized to fixed enums
			requests.With(cfg.Service, route, normalizeMethod(r.Method), statusClass(rec.status)).Inc()
			//lint:ignore telemetry-cardinality service is fixed per process, route comes from cfg.Route's bounded table
			latency.With(cfg.Service, route).Observe(elapsed.Seconds())
			if cfg.Tracer != nil {
				cfg.Tracer.Record(Span{
					TraceID:  traceID,
					SpanID:   spanID,
					ParentID: parentID,
					Service:  cfg.Service,
					Name:     r.Method + " " + route,
					Start:    start,
					Duration: float64(elapsed.Nanoseconds()) / 1e6,
					Status:   rec.status,
				})
			}
		})
	}
}

// normalizeMethod clamps the method label to the standard HTTP verbs.
// The method string is raw client input — a client sending made-up verbs
// must not be able to mint new metric series — so anything non-standard
// collapses to "other".
func normalizeMethod(m string) string {
	switch m {
	case http.MethodGet, http.MethodHead, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete, http.MethodConnect,
		http.MethodOptions, http.MethodTrace:
		return m
	}
	return "other"
}

// statusClass buckets a status code into "2xx"-style classes to keep the
// code label low-cardinality.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}

// statusWriter captures the response status code.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
