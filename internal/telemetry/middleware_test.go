package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareMetricsAndTrace(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	var sawTrace, sawSpan string
	handler := NewMiddleware(MiddlewareConfig{
		Registry: reg,
		Tracer:   tr,
		Service:  "svc",
	})(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var ok bool
		sawTrace, sawSpan, ok = TraceFromContext(r.Context())
		if !ok {
			t.Error("handler context missing trace")
		}
		w.WriteHeader(http.StatusTeapot)
	}))

	req := httptest.NewRequest("POST", "/explain", nil)
	req.Header.Set(HeaderTraceID, "trace-xyz")
	req.Header.Set(HeaderSpanID, "parent-1")
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, req)

	if sawTrace != "trace-xyz" {
		t.Errorf("handler saw trace %q, want trace-xyz", sawTrace)
	}
	if sawSpan == "" || sawSpan == "parent-1" {
		t.Errorf("handler should see a fresh span id, got %q", sawSpan)
	}
	if got := rr.Header().Get(HeaderTraceID); got != "trace-xyz" {
		t.Errorf("response %s = %q", HeaderTraceID, got)
	}

	spans := tr.Spans("trace-xyz", 0)
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	s := spans[0]
	if s.ParentID != "parent-1" || s.Service != "svc" || s.Name != "POST /explain" || s.Status != http.StatusTeapot {
		t.Errorf("span = %+v", s)
	}

	if got := reg.Counter(FamRequests, "", "service", "route", "method", "code").
		With("svc", "/explain", "POST", "4xx").Value(); got != 1 {
		t.Errorf("request counter = %v, want 1", got)
	}
	if got := reg.Histogram(FamLatency, "", nil, "service", "route").
		With("svc", "/explain").Count(); got != 1 {
		t.Errorf("latency count = %d, want 1", got)
	}
	if got := reg.Gauge(FamInFlight, "", "service").With("svc").Value(); got != 0 {
		t.Errorf("in-flight = %v, want 0 after completion", got)
	}
}

func TestMiddlewareMintsTraceWhenAbsent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	handler := NewMiddleware(MiddlewareConfig{Registry: reg, Tracer: tr, Service: "svc"})(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/x", nil))
	minted := rr.Header().Get(HeaderTraceID)
	if len(minted) != 32 {
		t.Fatalf("minted trace id %q", minted)
	}
	if spans := tr.Spans(minted, 0); len(spans) != 1 || spans[0].ParentID != "" {
		t.Errorf("spans = %+v", spans)
	}
}

func TestMiddlewareCustomRouteLabel(t *testing.T) {
	reg := NewRegistry()
	handler := NewMiddleware(MiddlewareConfig{
		Registry: reg,
		Service:  "gw",
		Route:    func(r *http.Request) string { return "/fixed" },
	})(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for _, p := range []string{"/a", "/b/c", "/d?e=f"} {
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("GET", p, nil))
	}
	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, `route="/fixed",method="GET",code="2xx"} 3`) {
		t.Errorf("custom route label not applied:\n%s", out)
	}
	if strings.Contains(out, `route="/a"`) {
		t.Errorf("raw path leaked into labels:\n%s", out)
	}
}
