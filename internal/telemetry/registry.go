// Package telemetry is SPATIAL's unified observability substrate: a
// concurrency-safe metric registry (labeled counters, gauges, and
// fixed-bucket latency histograms with quantile estimation), a
// Prometheus-compatible text exposition handler, a Go-runtime collector,
// and lightweight request tracing with X-Trace-Id/X-Span-Id header
// propagation recorded into a bounded in-memory ring buffer.
//
// The package is stdlib-only. Every serving component (gateway, metric
// services, sensors, dashboard) records into a Registry and exposes it at
// /metrics; traces are served as JSON at /traces.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type enumerates the metric kinds a Registry holds.
type Type int

// Metric kinds.
const (
	TypeCounter Type = iota + 1
	TypeGauge
	TypeHistogram
)

// String renders the Prometheus TYPE keyword.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefLatencyBuckets are the default request-latency histogram bounds in
// seconds, spanning sub-millisecond cache hits to 10s capacity-test tails.
var DefLatencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func()
	runtimeOn  bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family holding all label permutations.
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, without +Inf

	mu     sync.RWMutex
	series map[string]any // label-value signature -> *Counter|*Gauge|*Histogram
	keys   []string       // insertion-independent sorted view built at gather
}

const labelSep = "\x1f"

// lookup returns (creating if needed) the family with the given shape,
// panicking on a name reused with a different type or label set —
// that is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, typ Type, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || strings.Join(f.labels, labelSep) != strings.Join(labels, labelSep) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different type or labels", name))
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		typ:    typ,
		labels: append([]string(nil), labels...),
		series: make(map[string]any),
	}
	if typ == TypeHistogram {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		f.buckets = bs
	}
	r.families[name] = f
	return f
}

// OnGather registers a callback run before every Gather (and therefore
// before every scrape); runtime collectors use it to refresh gauges.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, TypeCounter, nil, labels)}
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, TypeGauge, nil, labels)}
}

// Histogram registers (or fetches) a histogram family with the given
// upper bucket bounds (DefLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, TypeHistogram, buckets, labels)}
}

// sig joins label values into the series map key, panicking on arity
// mismatch.
func (f *family) sig(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := v.f.sig(values)
	v.f.mu.RLock()
	m, ok := v.f.series[key]
	v.f.mu.RUnlock()
	if ok {
		return m.(*Counter)
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if m, ok := v.f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	v.f.series[key] = c
	return c
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := v.f.sig(values)
	v.f.mu.RLock()
	m, ok := v.f.series[key]
	v.f.mu.RUnlock()
	if ok {
		return m.(*Gauge)
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if m, ok := v.f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	v.f.series[key] = g
	return g
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := v.f.sig(values)
	v.f.mu.RLock()
	m, ok := v.f.series[key]
	v.f.mu.RUnlock()
	if ok {
		return m.(*Histogram)
	}
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if m, ok := v.f.series[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(v.f.buckets)
	v.f.series[key] = h
	return h
}

// atomicFloat is a float64 with atomic add/store via CAS on the bit
// pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(delta float64) {
	for {
		old := f.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + delta)
		if f.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ val atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.val.Add(1) }

// Add adds a non-negative delta (negative deltas are ignored — counters
// never go down).
func (c *Counter) Add(delta float64) {
	if delta > 0 {
		c.val.Add(delta)
	}
}

// Value reads the current count.
func (c *Counter) Value() float64 { return c.val.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ val atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.val.Store(v) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) { g.val.Add(delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.val.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.val.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return g.val.Load() }

// Label is one name/value pair of a series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Series is the snapshot of one label permutation of a family.
type Series struct {
	Labels []Label `json:"labels,omitempty"`
	// Value holds the counter/gauge reading.
	Value float64 `json:"value"`
	// Histogram-only fields: per-bucket (non-cumulative) counts aligned
	// with Family.Buckets plus one overflow slot, the sum of all
	// observations, and their count.
	BucketCounts []uint64 `json:"bucketCounts,omitempty"`
	Sum          float64  `json:"sum,omitempty"`
	Count        uint64   `json:"count,omitempty"`

	buckets []float64
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram series by
// linear interpolation inside the owning bucket, the same estimate
// Prometheus' histogram_quantile produces. Non-histogram series and empty
// histograms return 0; observations beyond the last finite bucket clamp
// to its upper bound.
func (s Series) Quantile(q float64) float64 {
	return bucketQuantile(q, s.buckets, s.BucketCounts, s.Count)
}

// Family is the snapshot of one metric family.
type Family struct {
	Name    string    `json:"name"`
	Help    string    `json:"help,omitempty"`
	Type    Type      `json:"-"`
	Buckets []float64 `json:"buckets,omitempty"`
	Series  []Series  `json:"series"`
}

// Gather snapshots every family, running collector callbacks first.
// Families are sorted by name and series by label values, so output is
// deterministic.
func (r *Registry) Gather() []Family {
	r.mu.RLock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn()
	}

	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		fam := Family{Name: f.name, Help: f.help, Type: f.typ, Buckets: f.buckets}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var vals []string
			if k != "" || len(f.labels) > 0 {
				vals = strings.Split(k, labelSep)
			}
			se := Series{buckets: f.buckets}
			for i, name := range f.labels {
				se.Labels = append(se.Labels, Label{Name: name, Value: vals[i]})
			}
			switch m := f.series[k].(type) {
			case *Counter:
				se.Value = m.Value()
			case *Gauge:
				se.Value = m.Value()
			case *Histogram:
				se.BucketCounts, se.Sum, se.Count = m.snapshot()
			}
			fam.Series = append(fam.Series, se)
		}
		f.mu.RUnlock()
		out = append(out, fam)
	}
	return out
}
