package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives many goroutines through every
// metric kind concurrently; run with -race. Totals must be exact because
// counters/histograms never drop updates.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	routes := []string{"/a", "/b", "/c"}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Vecs are intentionally re-looked-up inside the loop to
			// exercise the get-or-create paths concurrently.
			for i := 0; i < iters; i++ {
				route := routes[(g+i)%len(routes)]
				reg.Counter("hammer_requests_total", "h", "route").With(route).Inc()
				reg.Gauge("hammer_in_flight", "h").With().Add(1)
				reg.Gauge("hammer_in_flight", "h").With().Add(-1)
				reg.Histogram("hammer_latency_seconds", "h", nil, "route").
					With(route).Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	// Concurrent scrapers.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				reg.Gather()
			}
		}()
	}
	wg.Wait()

	var totalC float64
	var totalH uint64
	for _, route := range routes {
		totalC += reg.Counter("hammer_requests_total", "h", "route").With(route).Value()
		totalH += reg.Histogram("hammer_latency_seconds", "h", nil, "route").With(route).Count()
	}
	if want := float64(goroutines * iters); totalC != want {
		t.Errorf("counter total = %v, want %v", totalC, want)
	}
	if want := uint64(goroutines * iters); totalH != want {
		t.Errorf("histogram total = %d, want %d", totalH, want)
	}
	if got := reg.Gauge("hammer_in_flight", "h").With().Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %v, want 5", got)
	}
}

func TestFamilyShapeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shape_total", "h", "route")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	reg.Gauge("shape_total", "h", "route")
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.5, 1})
	// 100 observations uniform in (0, 0.1]: p50 should interpolate to
	// ~0.05 inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-0.05) > 0.001 {
		t.Errorf("p50 = %v, want ~0.05", p50)
	}
	// Add 100 observations in (0.2, 0.5]: p99 lands in that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.3)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 0.2 || p99 > 0.5 {
		t.Errorf("p99 = %v, want in (0.2, 0.5]", p99)
	}
	// Overflow observations clamp to the last finite bound.
	for i := 0; i < 1000; i++ {
		h.Observe(5)
	}
	if p99 := h.Quantile(0.99); p99 != 1 {
		t.Errorf("overflow p99 = %v, want clamp to 1", p99)
	}
	if h.Count() != 1200 {
		t.Errorf("Count = %d, want 1200", h.Count())
	}
	if mean := h.Mean(); math.Abs(mean-(100*0.05+100*0.3+1000*5)/1200) > 1e-9 {
		t.Errorf("Mean = %v", mean)
	}
}

func TestEmptyHistogramQuantile(t *testing.T) {
	h := newHistogram(DefLatencyBuckets)
	if q := h.Quantile(0.95); q != 0 {
		t.Errorf("empty p95 = %v, want 0", q)
	}
}

func TestGatherSortsFamiliesAndSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "last").With().Inc()
	reg.Counter("aa_total", "first", "k").With("b").Inc()
	reg.Counter("aa_total", "first", "k").With("a").Inc()
	fams := reg.Gather()
	if len(fams) != 2 || fams[0].Name != "aa_total" || fams[1].Name != "zz_total" {
		t.Fatalf("family order wrong: %+v", fams)
	}
	if fams[0].Series[0].Labels[0].Value != "a" || fams[0].Series[1].Labels[0].Value != "b" {
		t.Errorf("series order wrong: %+v", fams[0].Series)
	}
}
