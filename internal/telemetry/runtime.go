package telemetry

import "runtime"

// RegisterRuntimeMetrics adds the Go-runtime collector to the registry:
// goroutine count, heap/sys bytes, GC cycles and cumulative pause time.
// The gauges refresh on every Gather (i.e. on every scrape). Calling it
// twice on the same registry is a no-op.
func RegisterRuntimeMetrics(r *Registry) {
	r.mu.Lock()
	if r.runtimeOn {
		r.mu.Unlock()
		return
	}
	r.runtimeOn = true
	r.mu.Unlock()

	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.").With()
	heapAlloc := r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.").With()
	heapSys := r.Gauge("go_heap_sys_bytes", "Bytes of heap obtained from the OS.").With()
	gcCycles := r.Gauge("go_gc_cycles_total", "Completed GC cycles since process start.").With()
	gcPause := r.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.").With()
	nextGC := r.Gauge("go_gc_next_target_bytes", "Heap size at which the next GC cycle triggers.").With()

	r.OnGather(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
		nextGC.Set(float64(ms.NextGC))
	})
}
