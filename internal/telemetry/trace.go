package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Trace propagation headers, attached to every instrumented request and
// forwarded across service hops so client, gateway, and service spans of
// one logical request share a trace ID.
const (
	HeaderTraceID = "X-Trace-Id"
	HeaderSpanID  = "X-Span-Id"
)

// Span is one recorded unit of work within a trace.
type Span struct {
	TraceID  string    `json:"traceId"`
	SpanID   string    `json:"spanId"`
	ParentID string    `json:"parentId,omitempty"`
	Service  string    `json:"service"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"durationMs"`
	Status   int       `json:"status,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// idCounter salts fallback IDs should crypto/rand ever fail.
var idCounter atomic.Uint64

func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// Fallback: time + counter. Not cryptographically random, but
		// unique enough for correlation.
		binary.BigEndian.PutUint64(buf[:8], uint64(clock.Real().Now().UnixNano())^idCounter.Add(1))
	}
	return hex.EncodeToString(buf)
}

// NewTraceID generates a 128-bit hex trace ID.
func NewTraceID() string { return randomHex(16) }

// NewSpanID generates a 64-bit hex span ID.
func NewSpanID() string { return randomHex(8) }

type traceCtxKey struct{}

type traceCtx struct{ traceID, spanID string }

// ContextWithTrace attaches a trace/span ID pair to the context.
func ContextWithTrace(ctx context.Context, traceID, spanID string) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, traceCtx{traceID: traceID, spanID: spanID})
}

// TraceFromContext reads the trace/span IDs set by ContextWithTrace;
// ok is false when the context carries no trace.
func TraceFromContext(ctx context.Context) (traceID, spanID string, ok bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(traceCtx)
	return tc.traceID, tc.spanID, ok
}

// Inject writes the context's trace headers into h (outbound requests).
// The current span becomes the downstream parent.
func Inject(ctx context.Context, h http.Header) {
	traceID, spanID, ok := TraceFromContext(ctx)
	if !ok || traceID == "" {
		return
	}
	h.Set(HeaderTraceID, traceID)
	if spanID != "" {
		h.Set(HeaderSpanID, spanID)
	}
}

// Extract reads the trace headers of an inbound request; empty strings
// when absent. Caller-supplied IDs are untrusted input that ends up in
// span stores and response headers on every tier, so anything that is
// not a modest-length token is treated as absent (a fresh ID gets
// minted instead of the garbage propagating).
func Extract(h http.Header) (traceID, parentSpanID string) {
	return sanitizeID(h.Get(HeaderTraceID)), sanitizeID(h.Get(HeaderSpanID))
}

// sanitizeID returns id when it is 1-64 characters of [0-9A-Za-z_-],
// and "" otherwise.
func sanitizeID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// Tracer records spans into a bounded ring buffer; when full, the oldest
// spans are overwritten. All methods are safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total uint64
}

// NewTracer builds a tracer keeping up to capacity spans (default 1024).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{buf: make([]Span, capacity)}
}

// Record appends a span, evicting the oldest when the ring is full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf[t.next] = s
	t.next++
	t.total++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
}

// Len reports how many spans are currently retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Total reports how many spans were ever recorded (including evicted).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns retained spans in recording order, oldest first. A
// non-empty traceID filters to that trace; n > 0 keeps only the newest n
// after filtering.
func (t *Tracer) Spans(traceID string, n int) []Span {
	t.mu.Lock()
	var ordered []Span
	if t.full {
		ordered = append(ordered, t.buf[t.next:]...)
		ordered = append(ordered, t.buf[:t.next]...)
	} else {
		ordered = append(ordered, t.buf[:t.next]...)
	}
	t.mu.Unlock()

	if traceID != "" {
		kept := ordered[:0]
		for _, s := range ordered {
			if s.TraceID == traceID {
				kept = append(kept, s)
			}
		}
		ordered = kept
	}
	if n > 0 && len(ordered) > n {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Handler serves retained spans as JSON. Query parameters: ?trace=<id>
// filters to one trace, ?n=<k> limits to the newest k spans.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := r.URL.Query().Get("trace")
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, `{"error":"invalid ?n="}`, http.StatusBadRequest)
				return
			}
			n = v
		}
		spans := t.Spans(traceID, n)
		if spans == nil {
			spans = []Span{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(spans); err != nil {
			return
		}
	})
}
