package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsAreUniqueAndHex(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace id %q: want 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
	if len(NewSpanID()) != 16 {
		t.Fatalf("span id length %d, want 16", len(NewSpanID()))
	}
}

func TestContextRoundTripAndInject(t *testing.T) {
	ctx := ContextWithTrace(context.Background(), "trace-1", "span-1")
	traceID, spanID, ok := TraceFromContext(ctx)
	if !ok || traceID != "trace-1" || spanID != "span-1" {
		t.Fatalf("round trip = %q %q %v", traceID, spanID, ok)
	}
	h := http.Header{}
	Inject(ctx, h)
	if h.Get(HeaderTraceID) != "trace-1" || h.Get(HeaderSpanID) != "span-1" {
		t.Errorf("Inject headers = %v", h)
	}
	// No trace in context -> no headers.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if len(h2) != 0 {
		t.Errorf("Inject on bare context wrote %v", h2)
	}
}

func TestExtractSanitizesIDs(t *testing.T) {
	mk := func(trace, span string) http.Header {
		h := http.Header{}
		h.Set(HeaderTraceID, trace)
		h.Set(HeaderSpanID, span)
		return h
	}
	if tr, sp := Extract(mk("trace-abc_123", "span-1")); tr != "trace-abc_123" || sp != "span-1" {
		t.Errorf("clean IDs = %q %q", tr, sp)
	}
	// Garbage — quotes, backslashes, spaces, oversized — must read as
	// absent so callers mint fresh IDs instead of propagating it.
	for _, bad := range []string{
		`"x\"x\`, "has space", "new\nline", strings.Repeat("a", 65),
	} {
		if tr, _ := Extract(mk(bad, "span-1")); tr != "" {
			t.Errorf("Extract(%q) adopted %q", bad, tr)
		}
	}
	if _, sp := Extract(mk("t", `bad"span`)); sp != "" {
		t.Errorf("bad span id adopted: %q", sp)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{TraceID: "t", SpanID: string(rune('a' + i))})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans("", 0)
	if len(spans) != 4 || spans[0].SpanID != "g" || spans[3].SpanID != "j" {
		t.Fatalf("ring order wrong: %+v", spans)
	}
	if got := tr.Spans("", 2); len(got) != 2 || got[1].SpanID != "j" {
		t.Fatalf("limit wrong: %+v", got)
	}
}

func TestTracerFilterAndHandler(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{TraceID: "t1", SpanID: "a", Service: "gw", Start: time.Now()})
	tr.Record(Span{TraceID: "t2", SpanID: "b", Service: "svc"})
	tr.Record(Span{TraceID: "t1", SpanID: "c", ParentID: "a", Service: "svc"})

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces?trace=t1", nil))
	var spans []Span
	if err := json.Unmarshal(rr.Body.Bytes(), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].SpanID != "a" || spans[1].ParentID != "a" {
		t.Fatalf("filtered spans = %+v", spans)
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces?n=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad ?n= status = %d", rr.Code)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Span{TraceID: NewTraceID()})
				tr.Spans("", 8)
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Errorf("Total = %d, want 4000", tr.Total())
	}
}
