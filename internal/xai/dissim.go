package xai

import (
	"fmt"
	"sort"

	"repro/internal/mat"
)

// Dissimilarity implements the paper's SHAP-based poisoning indicator
// (Fig. 6(a)-iv): for each instance, find its k nearest neighbours in
// feature space, measure the mean Euclidean distance between the SHAP
// explanations of the instance and those neighbours, and average over all
// instances. Clean models explain similar inputs similarly, so the value
// rises when training data has been poisoned.
//
// instances[i] and explanations[i] must be aligned; k neighbours are drawn
// from the same set (excluding the instance itself).
func Dissimilarity(instances, explanations [][]float64, k int) (float64, error) {
	n := len(instances)
	if n != len(explanations) {
		return 0, fmt.Errorf("xai: %d instances but %d explanations", n, len(explanations))
	}
	if n < 2 {
		return 0, fmt.Errorf("xai: need at least 2 instances, got %d", n)
	}
	if k < 1 {
		return 0, fmt.Errorf("xai: k must be >= 1, got %d", k)
	}
	if k > n-1 {
		k = n - 1
	}

	type distIdx struct {
		d float64
		i int
	}
	var total float64
	dists := make([]distIdx, 0, n-1)
	for i := 0; i < n; i++ {
		dists = dists[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dists = append(dists, distIdx{d: mat.Dist2(instances[i], instances[j]), i: j})
		}
		sort.Slice(dists, func(a, b int) bool { return dists[a].d < dists[b].d })
		var mean float64
		for _, nb := range dists[:k] {
			mean += mat.Dist2(explanations[i], explanations[nb.i])
		}
		total += mean / float64(k)
	}
	return total / float64(n), nil
}
