package xai

import (
	"fmt"
	"math/bits"

	"repro/internal/ml"
)

// ExactSHAP computes exact Shapley values by enumerating all 2^d feature
// coalitions — tractable for small d (the implementation refuses d > 20).
// It serves as the ground truth the KernelSHAP estimator is validated
// against, and as the production choice for narrow tabular models where
// exactness is worth 2^d model evaluations.
type ExactSHAP struct {
	// Model is the classifier to explain.
	Model ml.Classifier
	// Background supplies the reference distribution for absent
	// features, exactly as in KernelSHAP.
	Background [][]float64
}

var _ Explainer = (*ExactSHAP)(nil)

// maxExactFeatures bounds the enumeration (2^20 coalition evaluations).
const maxExactFeatures = 20

// Explain returns the exact Shapley attribution of the class probability.
func (e *ExactSHAP) Explain(x []float64, class int) ([]float64, error) {
	if e.Model == nil {
		return nil, fmt.Errorf("xai: ExactSHAP has no model")
	}
	if len(e.Background) == 0 {
		return nil, fmt.Errorf("xai: ExactSHAP needs background data")
	}
	d := len(x)
	if d == 0 {
		return nil, fmt.Errorf("xai: empty instance")
	}
	if d > maxExactFeatures {
		return nil, fmt.Errorf("xai: exact SHAP limited to %d features, got %d (use KernelSHAP)", maxExactFeatures, d)
	}
	if class < 0 || class >= e.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	for _, b := range e.Background {
		if len(b) != d {
			return nil, fmt.Errorf("xai: background dim %d != instance dim %d", len(b), d)
		}
	}

	// Value of every coalition, indexed by bitmask.
	values := make([]float64, 1<<d)
	hybrid := make([]float64, d)
	for mask := 0; mask < 1<<d; mask++ {
		var total float64
		for _, b := range e.Background {
			for j := 0; j < d; j++ {
				if mask&(1<<j) != 0 {
					hybrid[j] = x[j]
				} else {
					hybrid[j] = b[j]
				}
			}
			total += e.Model.PredictProba(hybrid)[class]
		}
		values[mask] = total / float64(len(e.Background))
	}

	// Shapley weights by coalition size: |S|! (d-|S|-1)! / d!.
	weights := make([]float64, d)
	for s := 0; s < d; s++ {
		weights[s] = 1 / (float64(d) * binomial(d-1, s))
	}

	phi := make([]float64, d)
	for j := 0; j < d; j++ {
		bit := 1 << j
		for mask := 0; mask < 1<<d; mask++ {
			if mask&bit != 0 {
				continue // j must be absent from S
			}
			s := bits.OnesCount(uint(mask))
			phi[j] += weights[s] * (values[mask|bit] - values[mask])
		}
	}
	return phi, nil
}

// binomial computes C(n, k) in float64 (exact for the small n used here).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
