package xai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

func TestExactSHAPLinearGroundTruth(t *testing.T) {
	// For a model linear in probability space with an independent
	// background, phi_j = w_j (x_j − mean b_j) exactly.
	w := []float64{0.05, -0.08, 0.12, 0, 0.02}
	model := &rawLinear{w: w}
	background := [][]float64{
		{1, 1, 0, 2, 1},
		{0, 2, 1, 0, 0},
		{2, 0, 2, 1, 2},
	}
	meanB := []float64{1, 1, 1, 1, 1}
	x := []float64{3, 1, 2, 1, -1}
	exact := &ExactSHAP{Model: model, Background: background}
	phi, err := exact.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w {
		want := w[j] * (x[j] - meanB[j])
		if math.Abs(phi[j]-want) > 1e-12 {
			t.Fatalf("phi[%d] = %v, want %v", j, phi[j], want)
		}
	}
}

func TestExactSHAPEfficiencyOnNonlinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	tb := trainSmallTableFor(t, rng)
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{6}, LearningRate: 0.05, Momentum: 0.9, Epochs: 10, BatchSize: 16, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	exact := &ExactSHAP{Model: m, Background: tb.X[:4]}
	x := tb.X[10]
	phi, err := exact.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx := m.PredictProba(x)[1]
	var f0 float64
	for _, b := range tb.X[:4] {
		f0 += m.PredictProba(b)[1]
	}
	f0 /= 4
	if math.Abs(mat.Sum(phi)-(fx-f0)) > 1e-9 {
		t.Fatalf("efficiency violated: sum=%v want=%v", mat.Sum(phi), fx-f0)
	}
}

// TestKernelSHAPConvergesToExact is the estimator's calibration test: on a
// nonlinear model, KernelSHAP with a generous budget must approximate the
// enumerated ground truth.
func TestKernelSHAPConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tb := trainSmallTableFor(t, rng)
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{6}, LearningRate: 0.05, Momentum: 0.9, Epochs: 10, BatchSize: 16, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	background := tb.X[:3]
	x := tb.X[7]
	exact := &ExactSHAP{Model: m, Background: background}
	want, err := exact.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	kernel := &KernelSHAP{Model: m, Background: background, Samples: 4000, Seed: 2}
	got, err := kernel.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Abs(got[j]-want[j]) > 0.02 {
			t.Fatalf("kernel phi[%d]=%.4f vs exact %.4f", j, got[j], want[j])
		}
	}
}

func TestExactSHAPValidation(t *testing.T) {
	model := &rawLinear{w: make([]float64, 25)}
	big := make([]float64, 25)
	e := &ExactSHAP{Model: model, Background: [][]float64{big}}
	if _, err := e.Explain(big, 1); err == nil {
		t.Fatal("expected too-many-features error")
	}
	e2 := &ExactSHAP{Model: &rawLinear{w: []float64{1}}}
	if _, err := e2.Explain([]float64{1}, 1); err == nil {
		t.Fatal("expected no-background error")
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]float64{
		{5, 0}: 1, {5, 5}: 1, {5, 2}: 10, {10, 3}: 120, {4, 7}: 0,
	}
	for in, want := range cases {
		if got := binomial(in[0], in[1]); got != want {
			t.Fatalf("C(%d,%d) = %v, want %v", in[0], in[1], got, want)
		}
	}
}

// trainSmallTableFor builds a 5-feature binary table for the exact-SHAP
// tests (small d keeps 2^d enumeration fast).
func trainSmallTableFor(t *testing.T, rng *rand.Rand) *dataset.Table {
	t.Helper()
	tb := dataset.New("exact", []string{"a", "b", "c", "d", "e"}, []string{"neg", "pos"})
	for i := 0; i < 200; i++ {
		y := i % 2
		row := []float64{
			float64(y) + rng.NormFloat64()*0.4,
			rng.NormFloat64(),
			-float64(y)*0.8 + rng.NormFloat64()*0.5,
			rng.NormFloat64(),
			float64(y)*0.5 + rng.NormFloat64()*0.6,
		}
		_ = tb.Append(row, y)
	}
	return tb
}
