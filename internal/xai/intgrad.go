package xai

import (
	"fmt"

	"repro/internal/ml"
)

// IntegratedGradients computes path-integrated gradient attributions for
// differentiable models (Sundararajan et al.):
//
//	phi_j = (x_j − b_j) · ∫₀¹ ∂p_class/∂x_j (b + α(x−b)) dα
//
// approximated with a midpoint Riemann sum. Unlike the perturbation
// methods (SHAP, LIME) it needs only Steps gradient evaluations, making it
// the cheap explainer for gradient-exposing models.
type IntegratedGradients struct {
	// Model must expose input gradients (LogReg, MLP/DNN).
	Model ml.GradientClassifier
	// Baseline is the reference input; a zero vector when nil.
	Baseline []float64
	// Steps is the Riemann resolution (default 50).
	Steps int
}

var _ Explainer = (*IntegratedGradients)(nil)

// Explain returns per-feature attributions of the class probability.
// The completeness axiom holds up to integration error:
// sum(phi) ≈ p(x) − p(baseline).
func (ig *IntegratedGradients) Explain(x []float64, class int) ([]float64, error) {
	if ig.Model == nil {
		return nil, fmt.Errorf("xai: IntegratedGradients has no model")
	}
	d := len(x)
	if d == 0 {
		return nil, fmt.Errorf("xai: empty instance")
	}
	if class < 0 || class >= ig.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	baseline := ig.Baseline
	if baseline == nil {
		baseline = make([]float64, d)
	}
	if len(baseline) != d {
		return nil, fmt.Errorf("xai: baseline dim %d != instance dim %d", len(baseline), d)
	}
	steps := ig.Steps
	if steps <= 0 {
		steps = 50
	}

	phi := make([]float64, d)
	point := make([]float64, d)
	for s := 0; s < steps; s++ {
		alpha := (float64(s) + 0.5) / float64(steps)
		for j := range point {
			point[j] = baseline[j] + alpha*(x[j]-baseline[j])
		}
		// The model exposes the loss gradient dL/dx with
		// L = −log p_class, so ∂p/∂x = −p · ∂L/∂x.
		p := ig.Model.PredictProba(point)[class]
		lossGrad := ig.Model.InputGradient(point, class)
		for j, g := range lossGrad {
			phi[j] += -p * g
		}
	}
	inv := 1 / float64(steps)
	for j := range phi {
		phi[j] *= inv * (x[j] - baseline[j])
	}
	return phi, nil
}
