package xai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

func trainSmallMLP(t *testing.T) (*ml.MLP, *dataset.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(20))
	tb := dataset.New("sep", []string{"a", "b", "c"}, []string{"neg", "pos"})
	for i := 0; i < 300; i++ {
		y := i % 2
		_ = tb.Append([]float64{
			float64(y)*2 - 1 + rng.NormFloat64()*0.3,
			rng.NormFloat64(),
			-(float64(y)*2 - 1) + rng.NormFloat64()*0.5,
		}, y)
	}
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{12}, LearningRate: 0.05, Momentum: 0.9, Epochs: 25, BatchSize: 16, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	return m, tb
}

// TestIntegratedGradientsCompleteness checks the IG completeness axiom:
// attributions sum to p(x) − p(baseline).
func TestIntegratedGradientsCompleteness(t *testing.T) {
	m, tb := trainSmallMLP(t)
	baseline := make([]float64, 3)
	ig := &IntegratedGradients{Model: m, Baseline: baseline, Steps: 300}
	for i := 0; i < 10; i++ {
		x := tb.X[i]
		phi, err := ig.Explain(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := m.PredictProba(x)[1] - m.PredictProba(baseline)[1]
		if math.Abs(mat.Sum(phi)-want) > 0.02 {
			t.Fatalf("completeness violated at sample %d: sum=%.4f want=%.4f", i, mat.Sum(phi), want)
		}
	}
}

func TestIntegratedGradientsRanksInformativeFeature(t *testing.T) {
	m, tb := trainSmallMLP(t)
	ig := &IntegratedGradients{Model: m, Steps: 100}
	var expl [][]float64
	for i := 0; i < 40; i++ {
		phi, err := ig.Explain(tb.X[i], tb.Y[i])
		if err != nil {
			t.Fatal(err)
		}
		expl = append(expl, phi)
	}
	order, _ := FeatureImportance(expl)
	// Feature 1 is pure noise; it must not be the top feature.
	if order[0] == 1 {
		t.Fatalf("noise feature ranked first: %v", order)
	}
}

func TestIntegratedGradientsZeroAtBaseline(t *testing.T) {
	m, _ := trainSmallMLP(t)
	baseline := []float64{0.5, -0.3, 0.2}
	ig := &IntegratedGradients{Model: m, Baseline: baseline, Steps: 20}
	phi, err := ig.Explain(append([]float64(nil), baseline...), 1)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range phi {
		if v != 0 {
			t.Fatalf("x == baseline should give zero attribution, phi[%d]=%v", j, v)
		}
	}
}

func TestIntegratedGradientsValidation(t *testing.T) {
	m, tb := trainSmallMLP(t)
	ig := &IntegratedGradients{}
	if _, err := ig.Explain(tb.X[0], 0); err == nil {
		t.Fatal("expected nil-model error")
	}
	ig2 := &IntegratedGradients{Model: m, Baseline: []float64{1}}
	if _, err := ig2.Explain(tb.X[0], 0); err == nil {
		t.Fatal("expected baseline-dim error")
	}
	ig3 := &IntegratedGradients{Model: m}
	if _, err := ig3.Explain(tb.X[0], 7); err == nil {
		t.Fatal("expected class-range error")
	}
}
