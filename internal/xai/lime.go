package xai

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/ml"
)

// TabularLIME explains a prediction by fitting a locally weighted linear
// surrogate: Gaussian perturbations of the instance are scored by the
// model, weighted by an RBF proximity kernel, and a ridge regression over
// the perturbations yields per-feature local slopes.
type TabularLIME struct {
	// Model is the classifier to explain.
	Model ml.Classifier
	// Scale is the per-feature perturbation standard deviation.
	// Typically the training-set feature standard deviations.
	Scale []float64
	// Samples is the number of perturbations (default 1000).
	Samples int
	// KernelWidth is the RBF kernel width in normalized distance units
	// (default 0.75·sqrt(d), as in the reference implementation).
	KernelWidth float64
	// Lambda is the ridge regularizer (default 1e-3).
	Lambda float64
	// Seed drives perturbation sampling.
	Seed int64
}

var _ Explainer = (*TabularLIME)(nil)

// Explain returns per-feature local slopes for class probability around x.
// The final entry of the internal regression (the intercept) is dropped.
func (l *TabularLIME) Explain(x []float64, class int) ([]float64, error) {
	if l.Model == nil {
		return nil, fmt.Errorf("xai: TabularLIME has no model")
	}
	d := len(x)
	if d == 0 {
		return nil, fmt.Errorf("xai: empty instance")
	}
	if len(l.Scale) != d {
		return nil, fmt.Errorf("xai: Scale dim %d != instance dim %d", len(l.Scale), d)
	}
	if class < 0 || class >= l.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	samples := l.Samples
	if samples <= 0 {
		samples = 1000
	}
	width := l.KernelWidth
	if width <= 0 {
		width = 0.75 * math.Sqrt(float64(d))
	}
	lambda := l.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	rng := rand.New(rand.NewSource(l.Seed))

	// Design matrix in standardized offsets, plus an intercept column.
	design := mat.NewDense(samples, d+1)
	y := make([]float64, samples)
	w := make([]float64, samples)
	pert := make([]float64, d)
	for i := 0; i < samples; i++ {
		row := design.Row(i)
		var dist2 float64
		for j := 0; j < d; j++ {
			scale := l.Scale[j]
			if scale <= 0 {
				scale = 1e-9
			}
			off := rng.NormFloat64()
			row[j] = off
			pert[j] = x[j] + off*scale
			dist2 += off * off
		}
		row[d] = 1 // intercept
		y[i] = l.Model.PredictProba(pert)[class]
		w[i] = math.Exp(-dist2 / (width * width))
	}

	beta, err := mat.RidgeWLS(design, y, w, lambda)
	if err != nil {
		return nil, fmt.Errorf("lime solve: %w", err)
	}
	return beta[:d], nil
}

// ImageLIME explains an image model by superpixel masking: the W×H input
// is tiled into Patch×Patch segments, random segment subsets are replaced
// by a baseline value, and a weighted ridge regression over the binary
// masks assigns each segment a contribution.
type ImageLIME struct {
	// Model is the classifier over flattened W×H inputs.
	Model ml.Classifier
	// W, H are the image dimensions; W*H must match the model input.
	W, H int
	// Patch is the superpixel side length (default 4).
	Patch int
	// Baseline is the pixel value used for masked segments.
	Baseline float64
	// Samples is the number of random masks (default 500).
	Samples int
	// Lambda is the ridge regularizer (default 1e-3).
	Lambda float64
	// Seed drives mask sampling.
	Seed int64
}

var _ Explainer = (*ImageLIME)(nil)

// Segments returns the number of superpixels for the configured geometry.
func (l *ImageLIME) Segments() int {
	patch := l.Patch
	if patch <= 0 {
		patch = 4
	}
	px := (l.W + patch - 1) / patch
	py := (l.H + patch - 1) / patch
	return px * py
}

// Explain returns one weight per superpixel (row-major over the segment
// grid) for the class probability of the flattened image x.
func (l *ImageLIME) Explain(x []float64, class int) ([]float64, error) {
	if l.Model == nil {
		return nil, fmt.Errorf("xai: ImageLIME has no model")
	}
	if l.W <= 0 || l.H <= 0 || len(x) != l.W*l.H {
		return nil, fmt.Errorf("xai: image dims %dx%d incompatible with input length %d", l.W, l.H, len(x))
	}
	patch := l.Patch
	if patch <= 0 {
		patch = 4
	}
	samples := l.Samples
	if samples <= 0 {
		samples = 500
	}
	lambda := l.Lambda
	if lambda <= 0 {
		lambda = 1e-3
	}
	px := (l.W + patch - 1) / patch
	py := (l.H + patch - 1) / patch
	segs := px * py
	rng := rand.New(rand.NewSource(l.Seed))

	design := mat.NewDense(samples, segs+1)
	y := make([]float64, samples)
	w := make([]float64, samples)
	masked := make([]float64, len(x))
	for i := 0; i < samples; i++ {
		row := design.Row(i)
		on := 0
		for s := 0; s < segs; s++ {
			if rng.Float64() < 0.5 {
				row[s] = 1
				on++
			}
		}
		row[segs] = 1 // intercept
		copy(masked, x)
		for s := 0; s < segs; s++ {
			if row[s] == 1 {
				continue // segment kept
			}
			sx, sy := (s%px)*patch, (s/px)*patch
			for yy := sy; yy < sy+patch && yy < l.H; yy++ {
				for xx := sx; xx < sx+patch && xx < l.W; xx++ {
					masked[yy*l.W+xx] = l.Baseline
				}
			}
		}
		y[i] = l.Model.PredictProba(masked)[class]
		// Cosine-style proximity: masks keeping more segments are
		// closer to the original image.
		w[i] = float64(on) / float64(segs)
	}

	beta, err := mat.RidgeWLS(design, y, w, lambda)
	if err != nil {
		return nil, fmt.Errorf("image lime solve: %w", err)
	}
	return beta[:segs], nil
}
