package xai

import (
	"fmt"

	"repro/internal/ml"
)

// Occlusion computes occlusion-sensitivity maps: a baseline-filled window
// slides over the image and the drop in class probability at each position
// measures how much the model relies on that region.
type Occlusion struct {
	// Model is the classifier over flattened W×H inputs.
	Model ml.Classifier
	// W, H are the image dimensions.
	W, H int
	// Window is the occluder side length (default 4).
	Window int
	// Stride is the slide step (default = Window).
	Stride int
	// Baseline is the fill value for the occluded window.
	Baseline float64
}

// HeatmapSize returns the (cols, rows) of the sensitivity map produced by
// Explain.
func (o *Occlusion) HeatmapSize() (cols, rows int) {
	win, stride := o.geometry()
	if o.W < win || o.H < win {
		return 0, 0
	}
	return (o.W-win)/stride + 1, (o.H-win)/stride + 1
}

func (o *Occlusion) geometry() (win, stride int) {
	win = o.Window
	if win <= 0 {
		win = 4
	}
	stride = o.Stride
	if stride <= 0 {
		stride = win
	}
	return win, stride
}

// Explain returns the row-major sensitivity map: for each window position,
// baselineProb − occludedProb (positive = the region supports the class).
func (o *Occlusion) Explain(x []float64, class int) ([]float64, error) {
	if o.Model == nil {
		return nil, fmt.Errorf("xai: Occlusion has no model")
	}
	if o.W <= 0 || o.H <= 0 || len(x) != o.W*o.H {
		return nil, fmt.Errorf("xai: image dims %dx%d incompatible with input length %d", o.W, o.H, len(x))
	}
	if class < 0 || class >= o.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	win, stride := o.geometry()
	if o.W < win || o.H < win {
		return nil, fmt.Errorf("xai: window %d larger than image %dx%d", win, o.W, o.H)
	}
	base := o.Model.PredictProba(x)[class]
	cols, rows := o.HeatmapSize()
	out := make([]float64, cols*rows)
	occluded := make([]float64, len(x))
	for ry := 0; ry < rows; ry++ {
		for rx := 0; rx < cols; rx++ {
			copy(occluded, x)
			ox, oy := rx*stride, ry*stride
			for yy := oy; yy < oy+win; yy++ {
				for xx := ox; xx < ox+win; xx++ {
					occluded[yy*o.W+xx] = o.Baseline
				}
			}
			out[ry*cols+rx] = base - o.Model.PredictProba(occluded)[class]
		}
	}
	return out, nil
}

var _ Explainer = (*Occlusion)(nil)
