package xai

import (
	"fmt"

	"repro/internal/ml"
)

// Occlusion1D computes occlusion sensitivity over multi-channel time
// series — the natural explainer for use case 1's accelerometer windows,
// where the operator wants to know *when* in the window the model looked
// (the impact spike of a fall). A window of time steps is masked across
// all channels simultaneously and the class-probability drop is recorded
// per position.
type Occlusion1D struct {
	// Model is the classifier over flattened (Channels×Steps) inputs,
	// stored channel-major: input[c*Steps+t].
	Model ml.Classifier
	// Channels and Steps describe the input layout.
	Channels, Steps int
	// Window is the number of time steps masked at once (default 10).
	Window int
	// Stride is the slide step (default = Window).
	Stride int
	// Baseline is the fill value for masked samples.
	Baseline float64
}

var _ Explainer = (*Occlusion1D)(nil)

func (o *Occlusion1D) geometry() (win, stride int) {
	win = o.Window
	if win <= 0 {
		win = 10
	}
	stride = o.Stride
	if stride <= 0 {
		stride = win
	}
	return win, stride
}

// Positions returns the number of window positions Explain produces.
func (o *Occlusion1D) Positions() int {
	win, stride := o.geometry()
	if o.Steps < win {
		return 0
	}
	return (o.Steps-win)/stride + 1
}

// Explain returns one sensitivity value per window position:
// baseline probability minus the probability with that time range masked
// on every channel (positive = the range supports the class).
func (o *Occlusion1D) Explain(x []float64, class int) ([]float64, error) {
	if o.Model == nil {
		return nil, fmt.Errorf("xai: Occlusion1D has no model")
	}
	if o.Channels <= 0 || o.Steps <= 0 || len(x) != o.Channels*o.Steps {
		return nil, fmt.Errorf("xai: series %d channels x %d steps incompatible with input length %d", o.Channels, o.Steps, len(x))
	}
	if class < 0 || class >= o.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	win, stride := o.geometry()
	if o.Steps < win {
		return nil, fmt.Errorf("xai: window %d larger than %d steps", win, o.Steps)
	}
	base := o.Model.PredictProba(x)[class]
	out := make([]float64, o.Positions())
	masked := make([]float64, len(x))
	for p := range out {
		copy(masked, x)
		start := p * stride
		for c := 0; c < o.Channels; c++ {
			for t := start; t < start+win; t++ {
				masked[c*o.Steps+t] = o.Baseline
			}
		}
		out[p] = base - o.Model.PredictProba(masked)[class]
	}
	return out, nil
}
