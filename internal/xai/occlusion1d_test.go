package xai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ml"
)

func TestOcclusion1DFindsSensitiveRange(t *testing.T) {
	// Ground-truth model over a 2-channel, 20-step series: the class
	// probability depends only on channel 0, steps 5..9.
	const channels, steps = 2, 20
	w := make([]float64, channels*steps)
	for tstep := 5; tstep < 10; tstep++ {
		w[tstep] = 0.04 // channel 0 offset is 0
	}
	model := &rawLinear{w: w}
	x := make([]float64, channels*steps)
	for i := range x {
		x[i] = 1
	}
	occ := &Occlusion1D{Model: model, Channels: channels, Steps: steps, Window: 5, Stride: 5}
	if occ.Positions() != 4 {
		t.Fatalf("positions %d, want 4", occ.Positions())
	}
	heat, err := occ.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(heat[1]-0.2) > 1e-9 { // 5 steps * 0.04
		t.Fatalf("sensitive range heat %v, want 0.2", heat[1])
	}
	for _, p := range []int{0, 2, 3} {
		if math.Abs(heat[p]) > 1e-9 {
			t.Fatalf("insensitive range %d heat %v", p, heat[p])
		}
	}
}

func TestOcclusion1DValidation(t *testing.T) {
	model := &rawLinear{w: make([]float64, 10)}
	occ := &Occlusion1D{Model: model, Channels: 2, Steps: 5, Window: 9}
	x := make([]float64, 10)
	if _, err := occ.Explain(x, 0); err == nil {
		t.Fatal("expected window-too-large error")
	}
	occ2 := &Occlusion1D{Model: model, Channels: 2, Steps: 4}
	if _, err := occ2.Explain(x, 0); err == nil {
		t.Fatal("expected layout mismatch error")
	}
	occ3 := &Occlusion1D{Channels: 2, Steps: 5}
	if _, err := occ3.Explain(x, 0); err == nil {
		t.Fatal("expected nil-model error")
	}
}

// TestOcclusion1DLocatesFallImpact is the use-case-1 story: on a trained
// fall detector, the masked range containing the impact spike should
// matter more than the window start.
func TestOcclusion1DLocatesFallImpact(t *testing.T) {
	// Build windows whose class is determined by a spike in the second
	// half of channel 2, mimicking the fall-impact structure.
	const channels, steps = 3, 60
	tb := seriesTable(t, channels, steps)
	m := trainSeriesModel(t, tb)
	occ := &Occlusion1D{Model: m, Channels: channels, Steps: steps, Window: 15, Stride: 15}

	// Average sensitivity over positive (spiked) windows.
	agg := make([]float64, occ.Positions())
	n := 0
	for i, y := range tb.Y {
		if y != 1 {
			continue
		}
		heat, err := occ.Explain(tb.X[i], 1)
		if err != nil {
			t.Fatal(err)
		}
		for p, v := range heat {
			agg[p] += v
		}
		n++
		if n == 20 {
			break
		}
	}
	// The spike lives in position 2 (steps 30..44); it must dominate
	// position 0 (quiet start).
	if agg[2] <= agg[0] {
		t.Fatalf("impact range %.3f not above quiet range %.3f", agg[2], agg[0])
	}
}

// seriesTable builds a synthetic spike-detection task: class 1 windows
// carry a burst at steps 30..40 of channel 2.
func seriesTable(t *testing.T, channels, steps int) *dataset.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	names := make([]string, channels*steps)
	for i := range names {
		names[i] = "s"
	}
	tb := dataset.New("series", names, []string{"quiet", "spike"})
	for i := 0; i < 300; i++ {
		y := i % 2
		row := make([]float64, channels*steps)
		for j := range row {
			row[j] = rng.NormFloat64() * 0.3
		}
		if y == 1 {
			for ts := 30; ts < 40; ts++ {
				row[2*steps+ts] += 3
			}
		}
		_ = tb.Append(row, y)
	}
	return tb
}

func trainSeriesModel(t *testing.T, tb *dataset.Table) ml.Classifier {
	t.Helper()
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{16}, LearningRate: 0.05, Momentum: 0.9, Epochs: 15, BatchSize: 32, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	return m
}
