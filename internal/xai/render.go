package xai

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// RenderHeatmap turns a row-major attribution grid (an occlusion map or
// image-LIME segment weights) into an image with a diverging colormap:
// red for positive contributions, blue for negative, white for zero —
// the visual artifact the paper's AI dashboard shows operators. Each cell
// is drawn as a scale×scale pixel block.
func RenderHeatmap(values []float64, cols, rows, scale int) (image.Image, error) {
	if cols <= 0 || rows <= 0 || len(values) != cols*rows {
		return nil, fmt.Errorf("xai: heatmap geometry %dx%d incompatible with %d values", cols, rows, len(values))
	}
	if scale <= 0 {
		scale = 8
	}
	var maxAbs float64
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("xai: non-finite heatmap value")
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, cols*scale, rows*scale))
	for ry := 0; ry < rows; ry++ {
		for rx := 0; rx < cols; rx++ {
			c := divergingColor(values[ry*cols+rx], maxAbs)
			for yy := ry * scale; yy < (ry+1)*scale; yy++ {
				for xx := rx * scale; xx < (rx+1)*scale; xx++ {
					img.SetRGBA(xx, yy, c)
				}
			}
		}
	}
	return img, nil
}

// divergingColor maps v/maxAbs in [-1,1] onto blue-white-red.
func divergingColor(v, maxAbs float64) color.RGBA {
	if maxAbs == 0 {
		return color.RGBA{255, 255, 255, 255}
	}
	t := v / maxAbs // [-1, 1]
	switch {
	case t >= 0:
		// white -> red
		g := uint8(255 * (1 - t))
		return color.RGBA{255, g, g, 255}
	default:
		// white -> blue
		g := uint8(255 * (1 + t))
		return color.RGBA{g, g, 255, 255}
	}
}

// WriteHeatmapPNG renders and PNG-encodes an attribution grid.
func WriteHeatmapPNG(w io.Writer, values []float64, cols, rows, scale int) error {
	img, err := RenderHeatmap(values, cols, rows, scale)
	if err != nil {
		return err
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("xai: encode heatmap: %w", err)
	}
	return nil
}
