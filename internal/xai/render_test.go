package xai

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"testing"
)

func TestRenderHeatmapGeometryAndColors(t *testing.T) {
	values := []float64{1, -1, 0, 0.5}
	img, err := RenderHeatmap(values, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 8 || b.Dy() != 8 {
		t.Fatalf("bounds %v", b)
	}
	// Max positive -> pure red.
	if c := img.At(0, 0).(color.RGBA); c.R != 255 || c.G != 0 || c.B != 0 {
		t.Fatalf("positive extreme %v", c)
	}
	// Max negative -> pure blue.
	if c := img.At(4, 0).(color.RGBA); c.B != 255 || c.R != 0 || c.G != 0 {
		t.Fatalf("negative extreme %v", c)
	}
	// Zero -> white.
	if c := img.At(0, 4).(color.RGBA); c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("zero cell %v", c)
	}
}

func TestRenderHeatmapAllZero(t *testing.T) {
	img, err := RenderHeatmap([]float64{0, 0}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c := img.At(0, 0).(color.RGBA); c.R != 255 || c.G != 255 || c.B != 255 {
		t.Fatalf("all-zero map should be white, got %v", c)
	}
}

func TestRenderHeatmapValidation(t *testing.T) {
	if _, err := RenderHeatmap([]float64{1, 2, 3}, 2, 2, 1); err == nil {
		t.Fatal("expected geometry error")
	}
	if _, err := RenderHeatmap([]float64{math.NaN()}, 1, 1, 1); err == nil {
		t.Fatal("expected non-finite error")
	}
}

func TestWriteHeatmapPNGRoundTrip(t *testing.T) {
	m, tb, size := trainShapesModel(t)
	occ := &Occlusion{Model: m, W: size, H: size, Window: 4, Stride: 4}
	heat, err := occ.Explain(tb.X[0], tb.Y[0])
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := occ.HeatmapSize()
	var buf bytes.Buffer
	if err := WriteHeatmapPNG(&buf, heat, cols, rows, 8); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != cols*8 || decoded.Bounds().Dy() != rows*8 {
		t.Fatalf("decoded bounds %v", decoded.Bounds())
	}
}
