// Package xai implements the explainability methods SPATIAL's
// accountability micro-services expose: KernelSHAP, LIME for tabular and
// image inputs, occlusion sensitivity, and the SHAP-dissimilarity
// poisoning detector from the paper's use case 1.
package xai

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mat"
	"repro/internal/ml"
)

// Explainer produces a per-feature attribution vector for one instance and
// one target class.
type Explainer interface {
	Explain(x []float64, class int) ([]float64, error)
}

// KernelSHAP approximates Shapley values with the KernelSHAP estimator:
// coalition sampling, model evaluation on background-imputed hybrids, and
// a constrained weighted least-squares solve. The efficiency property
// (attributions sum to f(x) − E[f]) holds exactly by construction.
type KernelSHAP struct {
	// Model is the classifier to explain.
	Model ml.Classifier
	// Background supplies the reference distribution used to impute
	// "absent" features. A handful of rows is enough in practice.
	Background [][]float64
	// Samples is the number of sampled coalitions (min 2·d recommended;
	// lower values are regularized).
	Samples int
	// Lambda is the ridge regularizer for under-determined systems.
	Lambda float64
	// Seed drives coalition sampling.
	Seed int64
}

var _ Explainer = (*KernelSHAP)(nil)

// Explain returns the d-dimensional SHAP attribution of class probability
// for instance x.
func (k *KernelSHAP) Explain(x []float64, class int) ([]float64, error) {
	if k.Model == nil {
		return nil, fmt.Errorf("xai: KernelSHAP has no model")
	}
	if len(k.Background) == 0 {
		return nil, fmt.Errorf("xai: KernelSHAP needs background data")
	}
	d := len(x)
	if d == 0 {
		return nil, fmt.Errorf("xai: empty instance")
	}
	if class < 0 || class >= k.Model.NumClasses() {
		return nil, fmt.Errorf("xai: class %d out of range", class)
	}
	for _, b := range k.Background {
		if len(b) != d {
			return nil, fmt.Errorf("xai: background dim %d != instance dim %d", len(b), d)
		}
	}
	samples := k.Samples
	if samples <= 0 {
		samples = 2*d + 512
	}
	lambda := k.Lambda
	if lambda <= 0 {
		lambda = 1e-6
	}
	rng := rand.New(rand.NewSource(k.Seed))

	f0 := k.meanValue(nil, x, class) // all features from background
	fx := k.meanValue(allOn(d), x, class)
	total := fx - f0
	if d == 1 {
		return []float64{total}, nil
	}

	// Sample coalitions with sizes drawn according to the SHAP kernel
	// weights (never empty or full — those are the constraints).
	sizeW := make([]float64, d-1) // size s = 1..d-1
	var sizeSum float64
	for s := 1; s < d; s++ {
		sizeW[s-1] = float64(d-1) / (float64(s) * float64(d-s))
		sizeSum += sizeW[s-1]
	}
	z := mat.NewDense(samples, d-1)
	y := make([]float64, samples)
	w := make([]float64, samples)
	mask := make([]bool, d)
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < samples; i++ {
		// Draw a coalition size.
		r := rng.Float64() * sizeSum
		s := 1
		for acc := 0.0; s < d; s++ {
			acc += sizeW[s-1]
			if acc >= r {
				break
			}
		}
		if s >= d {
			s = d - 1
		}
		rng.Shuffle(d, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for j := range mask {
			mask[j] = false
		}
		for _, j := range perm[:s] {
			mask[j] = true
		}
		v := k.meanValue(mask, x, class)
		// Eliminate the last feature to enforce the efficiency
		// constraint exactly.
		last := 0.0
		if mask[d-1] {
			last = 1
		}
		row := z.Row(i)
		for j := 0; j < d-1; j++ {
			zj := 0.0
			if mask[j] {
				zj = 1
			}
			row[j] = zj - last
		}
		y[i] = v - f0 - last*total
		// All sampled coalitions get unit weight because sampling
		// already followed the kernel distribution.
		w[i] = 1
	}

	phiHead, err := mat.RidgeWLS(z, y, w, lambda)
	if err != nil {
		return nil, fmt.Errorf("kernelshap solve: %w", err)
	}
	phi := make([]float64, d)
	copy(phi, phiHead)
	var sum float64
	for _, v := range phiHead {
		sum += v
	}
	phi[d-1] = total - sum
	return phi, nil
}

// meanValue evaluates the model with "absent" features imputed from every
// background row and returns the mean class probability. mask == nil means
// all features absent.
func (k *KernelSHAP) meanValue(mask []bool, x []float64, class int) float64 {
	d := len(x)
	hybrid := make([]float64, d)
	var total float64
	for _, b := range k.Background {
		for j := 0; j < d; j++ {
			if mask != nil && mask[j] {
				hybrid[j] = x[j]
			} else {
				hybrid[j] = b[j]
			}
		}
		total += k.Model.PredictProba(hybrid)[class]
	}
	return total / float64(len(k.Background))
}

func allOn(d int) []bool {
	m := make([]bool, d)
	for i := range m {
		m[i] = true
	}
	return m
}

// FeatureImportance ranks features by mean |attribution| over a set of
// explanations. It returns indices sorted by descending importance and the
// importance values aligned with the original feature order.
func FeatureImportance(explanations [][]float64) (order []int, importance []float64) {
	if len(explanations) == 0 {
		return nil, nil
	}
	d := len(explanations[0])
	importance = make([]float64, d)
	for _, e := range explanations {
		for j, v := range e {
			importance[j] += math.Abs(v)
		}
	}
	for j := range importance {
		importance[j] /= float64(len(explanations))
	}
	order = make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return importance[order[a]] > importance[order[b]] })
	return order, importance
}
