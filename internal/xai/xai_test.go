package xai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/mat"
	"repro/internal/ml"
)

// linearProbe is a hand-built "model" with a known linear structure:
// p(class1) = sigmoid(w·x + b). Its exact Shapley values under an
// independent-feature background are w_j·(x_j − E[b_j]), which gives the
// SHAP test a ground truth.
type linearProbe struct {
	w []float64
	b float64
}

func (m *linearProbe) Fit(*dataset.Table) error { return nil }
func (m *linearProbe) NumClasses() int          { return 2 }
func (m *linearProbe) Name() string             { return "probe" }
func (m *linearProbe) PredictProba(x []float64) []float64 {
	s := m.b
	for j, v := range x {
		s += m.w[j] * v
	}
	p := 1 / (1 + math.Exp(-s))
	return []float64{1 - p, p}
}

// rawLinear is linear in probability space (not through a sigmoid), so
// KernelSHAP should recover the attribution exactly.
type rawLinear struct {
	w []float64
}

func (m *rawLinear) Fit(*dataset.Table) error { return nil }
func (m *rawLinear) NumClasses() int          { return 2 }
func (m *rawLinear) Name() string             { return "rawlinear" }
func (m *rawLinear) PredictProba(x []float64) []float64 {
	s := 0.0
	for j, v := range x {
		s += m.w[j] * v
	}
	// Keep within [0,1] for sane "probabilities" in the test domain.
	return []float64{1 - s, s}
}

func TestKernelSHAPExactOnLinearModel(t *testing.T) {
	w := []float64{0.05, -0.08, 0.12, 0.0}
	model := &rawLinear{w: w}
	background := [][]float64{
		{1, 1, 0, 2},
		{0, 2, 1, 0},
		{2, 0, 2, 1},
	}
	x := []float64{3, 1, 2, 1}
	shap := &KernelSHAP{Model: model, Background: background, Samples: 800, Seed: 1}
	phi, err := shap.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: w_j (x_j - mean_b_j).
	meanB := []float64{1, 1, 1, 1}
	for j := range w {
		want := w[j] * (x[j] - meanB[j])
		if math.Abs(phi[j]-want) > 0.01 {
			t.Fatalf("phi[%d] = %v, want %v", j, phi[j], want)
		}
	}
}

func TestKernelSHAPEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := make([]float64, 6)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	model := &linearProbe{w: w, b: 0.2}
	background := make([][]float64, 5)
	for i := range background {
		background[i] = make([]float64, 6)
		for j := range background[i] {
			background[i][j] = rng.NormFloat64()
		}
	}
	x := make([]float64, 6)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	shap := &KernelSHAP{Model: model, Background: background, Samples: 600, Seed: 3}
	phi, err := shap.Explain(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx := model.PredictProba(x)[1]
	var f0 float64
	for _, b := range background {
		f0 += model.PredictProba(b)[1]
	}
	f0 /= float64(len(background))
	if math.Abs(mat.Sum(phi)-(fx-f0)) > 1e-9 {
		t.Fatalf("efficiency violated: sum(phi)=%v, fx-f0=%v", mat.Sum(phi), fx-f0)
	}
}

func TestKernelSHAPIgnoresIrrelevantFeature(t *testing.T) {
	model := &rawLinear{w: []float64{0.2, 0, 0.1}}
	background := [][]float64{{0, 5, 0}, {1, -3, 1}}
	shap := &KernelSHAP{Model: model, Background: background, Samples: 500, Seed: 4}
	phi, err := shap.Explain([]float64{2, 10, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[1]) > 0.01 {
		t.Fatalf("dead feature got attribution %v", phi[1])
	}
}

func TestKernelSHAPDeterministic(t *testing.T) {
	model := &rawLinear{w: []float64{0.1, 0.2}}
	bg := [][]float64{{0, 0}}
	a := &KernelSHAP{Model: model, Background: bg, Samples: 100, Seed: 9}
	b := &KernelSHAP{Model: model, Background: bg, Samples: 100, Seed: 9}
	pa, err := a.Explain([]float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Explain([]float64{1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := range pa {
		if pa[j] != pb[j] {
			t.Fatal("same seed, different explanations")
		}
	}
}

func TestKernelSHAPValidation(t *testing.T) {
	model := &rawLinear{w: []float64{0.1}}
	if _, err := (&KernelSHAP{Model: model}).Explain([]float64{1}, 1); err == nil {
		t.Fatal("expected error without background")
	}
	s := &KernelSHAP{Model: model, Background: [][]float64{{0, 0}}}
	if _, err := s.Explain([]float64{1}, 1); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	s2 := &KernelSHAP{Model: model, Background: [][]float64{{0}}}
	if _, err := s2.Explain([]float64{1}, 5); err == nil {
		t.Fatal("expected class range error")
	}
}

func TestKernelSHAPSingleFeature(t *testing.T) {
	model := &rawLinear{w: []float64{0.25}}
	s := &KernelSHAP{Model: model, Background: [][]float64{{0}}, Samples: 10, Seed: 1}
	phi, err := s.Explain([]float64{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-0.5) > 1e-9 {
		t.Fatalf("single-feature phi = %v, want 0.5", phi[0])
	}
}

func TestTabularLIMERecoversLocalSlope(t *testing.T) {
	model := &rawLinear{w: []float64{0.1, -0.05, 0}}
	lime := &TabularLIME{
		Model:   model,
		Scale:   []float64{1, 1, 1},
		Samples: 2000,
		Seed:    5,
	}
	coef, err := lime.Explain([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// In standardized units the slope is w_j * scale_j.
	want := []float64{0.1, -0.05, 0}
	for j := range want {
		if math.Abs(coef[j]-want[j]) > 0.02 {
			t.Fatalf("lime coef %v, want %v", coef, want)
		}
	}
}

func TestTabularLIMESignMatchesModelOnTrainedMLP(t *testing.T) {
	// On a trained model, the top LIME feature should be one of the
	// genuinely informative ones.
	rng := rand.New(rand.NewSource(6))
	tb := dataset.New("sep", []string{"inf", "noise1", "noise2"}, []string{"a", "b"})
	for i := 0; i < 400; i++ {
		y := i % 2
		_ = tb.Append([]float64{float64(y)*2 - 1 + rng.NormFloat64()*0.3, rng.NormFloat64(), rng.NormFloat64()}, y)
	}
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{8}, LearningRate: 0.1, Momentum: 0.9, Epochs: 30, BatchSize: 16, Seed: 1})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	lime := &TabularLIME{Model: m, Scale: []float64{0.5, 0.5, 0.5}, Samples: 800, Seed: 7}
	coef, err := lime.Explain([]float64{1, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]) <= math.Abs(coef[1]) || math.Abs(coef[0]) <= math.Abs(coef[2]) {
		t.Fatalf("informative feature not ranked first: %v", coef)
	}
	if coef[0] <= 0 {
		t.Fatalf("informative slope should be positive for class b: %v", coef)
	}
}

func TestTabularLIMEValidation(t *testing.T) {
	model := &rawLinear{w: []float64{0.1}}
	l := &TabularLIME{Model: model, Scale: []float64{1, 2}}
	if _, err := l.Explain([]float64{1}, 1); err == nil {
		t.Fatal("expected scale dim error")
	}
}

func trainShapesModel(t *testing.T) (*ml.MLP, *dataset.Table, int) {
	t.Helper()
	tb, err := datagen.Shapes(datagen.ShapesConfig{Samples: 450, Size: 16, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := ml.NewMLP(ml.MLPConfig{Hidden: []int{32}, LearningRate: 0.05, Momentum: 0.9, Epochs: 30, BatchSize: 32, Seed: 2})
	if err := m.Fit(tb); err != nil {
		t.Fatal(err)
	}
	return m, tb, 16
}

func TestOcclusionFindsSensitiveRegion(t *testing.T) {
	// Ground-truth model: class probability depends only on the pixels
	// of the top-left 4x4 block of an 8x8 image. Occluding that block
	// must produce the (only) strong sensitivity.
	const size = 8
	w := make([]float64, size*size)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			w[y*size+x] = 0.05
		}
	}
	model := &rawLinear{w: w}
	img := make([]float64, size*size)
	for i := range img {
		img[i] = 1
	}
	occ := &Occlusion{Model: model, W: size, H: size, Window: 4, Stride: 4}
	heat, err := occ.Explain(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := occ.HeatmapSize()
	if cols != 2 || rows != 2 || len(heat) != 4 {
		t.Fatalf("heatmap geometry %dx%d len %d", cols, rows, len(heat))
	}
	if math.Abs(heat[0]-0.8) > 1e-9 { // 16 pixels * 0.05
		t.Fatalf("sensitive block heat %v, want 0.8", heat[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(heat[i]) > 1e-9 {
			t.Fatalf("insensitive block %d heat %v, want 0", i, heat[i])
		}
	}
}

func TestOcclusionOnTrainedModelIsFinite(t *testing.T) {
	m, tb, size := trainShapesModel(t)
	occ := &Occlusion{Model: m, W: size, H: size, Window: 4, Stride: 4}
	heat, err := occ.Explain(tb.X[0], tb.Y[0])
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := occ.HeatmapSize()
	if len(heat) != cols*rows {
		t.Fatalf("heatmap size %d != %d*%d", len(heat), cols, rows)
	}
	var nonzero bool
	for _, v := range heat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite heat value")
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("occlusion map is identically zero on a trained model")
	}
}

func TestOcclusionValidation(t *testing.T) {
	m, _, _ := trainShapesModel(t)
	occ := &Occlusion{Model: m, W: 16, H: 16, Window: 32}
	x := make([]float64, 256)
	if _, err := occ.Explain(x, 0); err == nil {
		t.Fatal("expected window-too-large error")
	}
	occ2 := &Occlusion{Model: m, W: 8, H: 8}
	if _, err := occ2.Explain(x, 0); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestImageLIMESegmentsAndExplain(t *testing.T) {
	m, tb, size := trainShapesModel(t)
	lime := &ImageLIME{Model: m, W: size, H: size, Patch: 4, Samples: 300, Seed: 3}
	if lime.Segments() != 16 {
		t.Fatalf("segments = %d, want 16", lime.Segments())
	}
	weights, err := lime.Explain(tb.X[0], tb.Y[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 16 {
		t.Fatalf("weights len %d", len(weights))
	}
	for _, v := range weights {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite LIME weight")
		}
	}
}

func TestImageLIMEValidation(t *testing.T) {
	m, _, _ := trainShapesModel(t)
	lime := &ImageLIME{Model: m, W: 10, H: 10}
	if _, err := lime.Explain(make([]float64, 256), 0); err == nil {
		t.Fatal("expected dim mismatch error")
	}
}

func TestFeatureImportanceOrdering(t *testing.T) {
	explanations := [][]float64{
		{0.1, -0.9, 0.3},
		{-0.2, 0.8, 0.2},
	}
	order, imp := FeatureImportance(explanations)
	if order[0] != 1 {
		t.Fatalf("top feature %d, want 1 (order %v, imp %v)", order[0], order, imp)
	}
	if math.Abs(imp[1]-0.85) > 1e-12 {
		t.Fatalf("importance[1] = %v", imp[1])
	}
	if o, i := FeatureImportance(nil); o != nil || i != nil {
		t.Fatal("empty input should give nil results")
	}
}

func TestDissimilarityRisesWithExplanationNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, d := 30, 5
	instances := make([][]float64, n)
	clean := make([][]float64, n)
	noisy := make([][]float64, n)
	for i := 0; i < n; i++ {
		instances[i] = make([]float64, d)
		for j := range instances[i] {
			instances[i][j] = rng.NormFloat64()
		}
		// Clean explanations: a smooth function of the instance, so
		// neighbours have similar explanations.
		clean[i] = make([]float64, d)
		noisy[i] = make([]float64, d)
		for j := range clean[i] {
			clean[i][j] = instances[i][j] * 0.5
			noisy[i][j] = rng.NormFloat64() * 2
		}
	}
	dc, err := Dissimilarity(instances, clean, 5)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := Dissimilarity(instances, noisy, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dn <= dc {
		t.Fatalf("noisy dissimilarity %v should exceed clean %v", dn, dc)
	}
}

func TestDissimilarityValidation(t *testing.T) {
	if _, err := Dissimilarity([][]float64{{1}}, [][]float64{{1}, {2}}, 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := Dissimilarity([][]float64{{1}}, [][]float64{{1}}, 1); err == nil {
		t.Fatal("expected too-few-instances error")
	}
	if _, err := Dissimilarity([][]float64{{1}, {2}}, [][]float64{{1}, {2}}, 0); err == nil {
		t.Fatal("expected bad-k error")
	}
}

func TestDissimilarityClampsK(t *testing.T) {
	instances := [][]float64{{0}, {1}, {2}}
	expl := [][]float64{{0}, {0}, {0}}
	v, err := Dissimilarity(instances, expl, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("identical explanations should give 0, got %v", v)
	}
}
