package repro

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gateway"
	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestTracePropagationGatewayToService drives a request with a client
// X-Trace-Id through an in-process gateway→SHAP-service hop and asserts
// that both tiers recorded a correlated span: the gateway span carries
// the client's trace ID, the service span carries the same trace ID with
// the gateway's span as parent, and both are queryable via each tier's
// /traces endpoint.
func TestTracePropagationGatewayToService(t *testing.T) {
	shap := service.NewSHAPService()
	backend := httptest.NewServer(shap)
	defer backend.Close()

	gw := gateway.New(gateway.Config{})
	if err := gw.AddRoute("/shap", gateway.RoundRobin, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(gw)
	defer front.Close()

	traceID := telemetry.NewTraceID()
	req, err := http.NewRequestWithContext(context.Background(),
		http.MethodGet, front.URL+"/shap/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.HeaderTraceID, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.HeaderTraceID); got != traceID {
		t.Errorf("response trace id %q, want %q", got, traceID)
	}

	fetchSpans := func(url string) []telemetry.Span {
		t.Helper()
		resp, err := http.Get(url + "/traces?trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var spans []telemetry.Span
		if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
			t.Fatal(err)
		}
		return spans
	}

	gwSpans := fetchSpans(front.URL)
	if len(gwSpans) != 1 || gwSpans[0].Service != "gateway" {
		t.Fatalf("gateway spans = %+v", gwSpans)
	}
	svcSpans := fetchSpans(backend.URL)
	if len(svcSpans) != 1 || svcSpans[0].Service != "shap" {
		t.Fatalf("service spans = %+v", svcSpans)
	}
	if svcSpans[0].ParentID != gwSpans[0].SpanID {
		t.Errorf("service span parent %q, want gateway span %q",
			svcSpans[0].ParentID, gwSpans[0].SpanID)
	}
	if svcSpans[0].TraceID != traceID || gwSpans[0].TraceID != traceID {
		t.Errorf("trace ids diverged: gw=%q svc=%q want %q",
			gwSpans[0].TraceID, svcSpans[0].TraceID, traceID)
	}
}

// TestMetricsExposedOnEveryTier scrapes /metrics on the gateway, a
// service, and the dashboard after traffic, asserting the Prometheus
// exposition carries request counters, histogram buckets with estimated
// quantiles, and runtime stats on each tier.
func TestMetricsExposedOnEveryTier(t *testing.T) {
	shap := service.NewSHAPService()
	backend := httptest.NewServer(shap)
	defer backend.Close()
	gw := gateway.New(gateway.Config{})
	if err := gw.AddRoute("/shap", gateway.RoundRobin, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(gw)
	defer front.Close()

	if resp, err := http.Get(front.URL + "/shap/healthz"); err != nil {
		t.Fatal(err)
	} else {
		_ = resp.Body.Close()
	}

	scrape := func(url string) string {
		t.Helper()
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s/metrics Content-Type = %q", url, ct)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	gwText := scrape(front.URL)
	for _, want := range []string{
		`spatial_gateway_requests_total{route="/shap"} 1`,
		`spatial_gateway_request_duration_seconds_bucket{route="/shap",le="+Inf"} 1`,
		`spatial_gateway_request_duration_seconds_quantile{route="/shap",quantile="0.95"}`,
		"go_heap_alloc_bytes",
	} {
		if !strings.Contains(gwText, want) {
			t.Errorf("gateway exposition missing %q", want)
		}
	}

	svcText := scrape(backend.URL)
	for _, want := range []string{
		`spatial_http_requests_total{service="shap",route="/healthz",method="GET",code="2xx"} 1`,
		`spatial_http_request_duration_seconds_bucket{service="shap",route="/healthz",le="+Inf"} 1`,
		`quantile="0.99"`,
		"go_goroutines",
	} {
		if !strings.Contains(svcText, want) {
			t.Errorf("service exposition missing %q", want)
		}
	}
}

// TestLoadgenStampsTraceIDs asserts the loadgen satellite: every sample
// carries a fresh X-Trace-Id, the server observes exactly those IDs, and
// the summary surfaces the slowest ones for joining against spans.
func TestLoadgenStampsTraceIDs(t *testing.T) {
	var mu = make(chan struct{}, 1)
	seen := map[string]int{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu <- struct{}{}
		seen[r.Header.Get(telemetry.HeaderTraceID)]++
		<-mu
	}))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(),
		loadgen.ThreadGroup{Threads: 4, Iterations: 5},
		&loadgen.HTTPSampler{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 20 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	for _, s := range res.Samples {
		if len(s.TraceID) != 32 {
			t.Fatalf("sample trace id %q", s.TraceID)
		}
		if seen[s.TraceID] != 1 {
			t.Errorf("trace %s seen %d times on the server", s.TraceID, seen[s.TraceID])
		}
	}
	sum := res.Summarize()
	if len(sum.SlowestTraces) != 5 {
		t.Fatalf("SlowestTraces = %+v", sum.SlowestTraces)
	}
	for i := 1; i < len(sum.SlowestTraces); i++ {
		if sum.SlowestTraces[i].Latency > sum.SlowestTraces[i-1].Latency {
			t.Errorf("slowest traces not sorted: %+v", sum.SlowestTraces)
		}
	}
	if seen[sum.SlowestTraces[0].TraceID] != 1 {
		t.Errorf("slowest trace %s never reached the server", sum.SlowestTraces[0].TraceID)
	}
}
